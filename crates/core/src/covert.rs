//! End-to-end covert-channel runs (paper §V, §VI).

use cache_sim::hierarchy::Inclusion;
use cache_sim::replacement::PolicyKind;
use exec_sim::machine::{Machine, Pid};
use exec_sim::measure::LatencyProbe;
use exec_sim::program::Program;
use exec_sim::sched::{HyperThreaded, SchedulerReport, ThreadHandle, TimeSliced};

use crate::noise::NoiseModel;
use crate::params::{ChannelParams, ParamError, Platform};
use crate::protocol::{LruReceiver, LruSender, Sample};
use crate::setup::{self, Endpoints};

/// Which channel protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Algorithm 1: sender and receiver are separate processes with
    /// a shared page holding `line 0`.
    SharedMemory,
    /// Algorithm 1 between two threads of one address space (the AMD
    /// pthreads configuration of §VI-B — immune to the µtag way
    /// predictor because both parties use the same linear address).
    SharedMemoryThreads,
    /// Algorithm 2: fully separate processes, no shared memory.
    NoSharedMemory,
}

/// How the two parties share the physical core (paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharing {
    /// Two hyper-threads running in parallel (§V-A).
    HyperThreaded,
    /// Two processes time-slicing the core with CFS-like quanta
    /// (§V-B).
    TimeSliced,
}

/// Configuration of one covert-channel run.
#[derive(Debug, Clone)]
pub struct CovertConfig {
    /// The simulated CPU.
    pub platform: Platform,
    /// Channel parameters (`d`, target set, `Ts`, `Tr`).
    pub params: ChannelParams,
    /// Protocol variant.
    pub variant: Variant,
    /// Core-sharing setting.
    pub sharing: Sharing,
    /// Bits the sender transmits (once; repeat the slice yourself to
    /// send a string several times, as the paper's error evaluation
    /// does).
    pub message: Vec<bool>,
    /// Seed for every randomized component of the run.
    pub seed: u64,
}

/// The observable outcome of a covert-channel run.
#[derive(Debug, Clone)]
pub struct CovertRun {
    /// The receiver's timed observations, in order.
    pub samples: Vec<Sample>,
    /// Threshold separating hit from miss readouts on this platform.
    pub hit_threshold: u32,
    /// Nominal transmission rate in bits/second (`freq / Ts`).
    pub rate_bps: f64,
    /// Scheduler accounting for the run.
    pub report: SchedulerReport,
}

impl CovertConfig {
    /// Runs the channel and returns the receiver's trace.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the parameters do not fit the
    /// platform's L1 geometry.
    pub fn run(&self) -> Result<CovertRun, ParamError> {
        let mut machine = Machine::new(self.platform.arch, PolicyKind::TreePlru, self.seed);
        self.run_on(&mut machine)
    }

    /// Like [`CovertConfig::run`] but on a caller-supplied machine
    /// (used by the secure-cache ablations to swap the L1 policy).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the parameters do not fit the
    /// machine's L1 geometry.
    pub fn run_on(&self, machine: &mut Machine) -> Result<CovertRun, ParamError> {
        self.run_on_with_noise(machine, NoiseModel::None)
    }

    /// [`CovertConfig::run_on`] with an environmental [`NoiseModel`]
    /// injected as a third thread next to the sender and receiver.
    /// `NoiseModel::None` takes exactly the two-thread path, so
    /// noise-free runs stay byte-identical to the pre-noise code.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the parameters do not fit the
    /// machine's L1 geometry.
    pub fn run_on_with_noise(
        &self,
        machine: &mut Machine,
        noise: NoiseModel,
    ) -> Result<CovertRun, ParamError> {
        let geom = machine.hierarchy().l1().geometry();
        self.params
            .validate(geom.ways(), geom.num_sets() as usize)?;

        let (endpoints, receiver) = self.wire(machine);
        let mut sender_prog =
            LruSender::new(endpoints.sender_line, self.message.clone(), self.params.ts);
        if self.sharing == Sharing::TimeSliced {
            // Keep multi-second time-sliced runs tractable: the
            // sender touches its line every ~50k cycles instead of
            // every ~30 — still hundreds of touches per quantum, so
            // the channel semantics are unchanged.
            sender_prog = sender_prog.repeating().with_encode_calc(50_000);
        }
        let mut receiver_prog = receiver;

        // The interference party, if any: its own process, its own
        // buffer, its op stream derived only from the run seed.
        let mut noise_prog = noise.spawn(machine, self.params.tr.max(1), self.seed);

        let probe_set = setup::reserved_probe_set(machine, self.params.target_set);
        let probe = LatencyProbe::new(
            machine,
            endpoints.receiver_pid,
            self.platform.tsc,
            probe_set,
        );

        // Warm the channel lines so the steady state (all lines in
        // L1/L2 rather than cold memory) is reached immediately, as
        // in the paper where the attack loops run continuously.
        for &va in &endpoints.receiver_lines {
            machine.access(endpoints.receiver_pid, va);
        }
        machine.access(endpoints.sender_pid, endpoints.sender_line);

        let limit = (self.message.len() as u64 + 1) * self.params.ts;
        let mut threads = vec![
            ThreadHandle::new(endpoints.sender_pid, &mut sender_prog),
            ThreadHandle::with_probe(endpoints.receiver_pid, &mut receiver_prog, probe),
        ];
        if let Some((noise_pid, prog)) = noise_prog.as_mut() {
            threads.push(ThreadHandle::new(*noise_pid, prog));
        }
        let report = match self.sharing {
            Sharing::HyperThreaded => {
                HyperThreaded::new(self.seed ^ 0x5eed).run(machine, &mut threads, limit)
            }
            Sharing::TimeSliced => {
                TimeSliced::new(self.seed ^ 0x5eed).run(machine, &mut threads, limit)
            }
        };

        Ok(CovertRun {
            samples: receiver_prog.into_samples(),
            hit_threshold: self.platform.hit_threshold(),
            rate_bps: self.platform.rate_bps(self.params.ts),
            report,
        })
    }

    fn wire(&self, machine: &mut Machine) -> (Endpoints, LruReceiver) {
        let (sender_pid, receiver_pid) = match self.variant {
            Variant::SharedMemoryThreads => {
                let p = machine.create_process();
                (p, p)
            }
            _ => (machine.create_process(), machine.create_process()),
        };
        let endpoints = match self.variant {
            Variant::SharedMemory | Variant::SharedMemoryThreads => {
                setup::alg1(machine, sender_pid, receiver_pid, self.params.target_set)
            }
            Variant::NoSharedMemory => {
                setup::alg2(machine, sender_pid, receiver_pid, self.params.target_set)
            }
        };
        let receiver = LruReceiver::new(
            endpoints.receiver_lines.clone(),
            self.params.d,
            self.params.tr,
        );
        (endpoints, receiver)
    }
}

/// Shared body of the `percent_ones*` family: wire the time-sliced
/// constant-bit channel, optionally attach one interfering third
/// party (built by `third_party` right after the channel endpoints,
/// so the clean path performs *exactly* the pre-noise allocation and
/// access sequence), run, and tally the fraction of observations
/// read as `1`.
#[allow(clippy::too_many_arguments)]
fn percent_ones_run(
    platform: Platform,
    params: ChannelParams,
    variant: Variant,
    bit: bool,
    n_samples: usize,
    inclusion: Inclusion,
    seed: u64,
    third_party: impl FnOnce(&mut Machine) -> Option<(Pid, Box<dyn Program>)>,
) -> Result<f64, ParamError> {
    let cfg = CovertConfig {
        platform,
        params,
        variant,
        sharing: Sharing::TimeSliced,
        message: vec![bit],
        seed,
    };
    let mut machine = Machine::new(platform.arch, PolicyKind::TreePlru, seed);
    // Swap the inclusion model only when asked, so the default path
    // stays byte-identical to the pre-hierarchy-axis behaviour.
    if inclusion != Inclusion::Inclusive {
        let swapped = machine.hierarchy().clone().with_inclusion(inclusion);
        *machine.hierarchy_mut() = swapped;
    }
    let geom = machine.hierarchy().l1().geometry();
    params.validate(geom.ways(), geom.num_sets() as usize)?;

    let (endpoints, receiver) = cfg.wire(&mut machine);
    let mut sender_prog = LruSender::new(endpoints.sender_line, vec![bit], params.ts)
        .repeating()
        .with_encode_calc(50_000);
    let mut receiver_prog = receiver.with_max_samples(n_samples);

    let noise = third_party(&mut machine);

    let probe_set = setup::reserved_probe_set(&machine, params.target_set);
    let probe = LatencyProbe::new(
        &mut machine,
        endpoints.receiver_pid,
        platform.tsc,
        probe_set,
    );
    for &va in &endpoints.receiver_lines {
        machine.access(endpoints.receiver_pid, va);
    }
    machine.access(endpoints.sender_pid, endpoints.sender_line);

    // Enough wall-clock for n_samples periods plus scheduling slack
    // per party sharing the quanta.
    let parties = 2 + u64::from(noise.is_some());
    let limit = (n_samples as u64 + 8) * (params.tr + 100_000) + parties * 400_000_000;
    let mut threads = vec![
        ThreadHandle::new(endpoints.sender_pid, &mut sender_prog),
        ThreadHandle::with_probe(endpoints.receiver_pid, &mut receiver_prog, probe),
    ];
    let mut noise = noise;
    if let Some((noise_pid, prog)) = noise.as_mut() {
        threads.push(ThreadHandle::new(*noise_pid, &mut **prog));
    }
    TimeSliced::new(seed ^ 0x711c).run(&mut machine, &mut threads, limit);

    let threshold = platform.hit_threshold();
    let samples = receiver_prog.samples();
    if samples.is_empty() {
        return Ok(0.0);
    }
    let ones = samples
        .iter()
        .filter(|s| {
            let hit = s.measured <= threshold;
            match variant {
                Variant::SharedMemory | Variant::SharedMemoryThreads => hit,
                Variant::NoSharedMemory => !hit,
            }
        })
        .count();
    Ok(ones as f64 / samples.len() as f64)
}

/// The time-sliced constant-bit experiment behind Figs. 6, 8, 15:
/// the sender sends only `bit`, the receiver takes `n_samples`
/// measurements at period `tr`, and the result is the fraction of
/// measurements the receiver classifies as `1`.
///
/// # Errors
///
/// Returns [`ParamError`] if the parameters do not fit the
/// platform's L1 geometry.
pub fn percent_ones(
    platform: Platform,
    params: ChannelParams,
    variant: Variant,
    bit: bool,
    n_samples: usize,
    seed: u64,
) -> Result<f64, ParamError> {
    percent_ones_run(
        platform,
        params,
        variant,
        bit,
        n_samples,
        Inclusion::Inclusive,
        seed,
        |_| None,
    )
}

/// [`percent_ones`] with the L1↔L2 inclusion model swapped before
/// the run (the scenario layer's hierarchy axis). Passing
/// [`Inclusion::Inclusive`] is byte-identical to [`percent_ones`];
/// a back-invalidating hierarchy additionally demotes every thread
/// to block execution because the quantum fast-forward soundness
/// condition no longer holds.
///
/// # Errors
///
/// Returns [`ParamError`] if the parameters do not fit the
/// platform's L1 geometry.
pub fn percent_ones_with_hierarchy(
    platform: Platform,
    params: ChannelParams,
    variant: Variant,
    bit: bool,
    n_samples: usize,
    inclusion: Inclusion,
    seed: u64,
) -> Result<f64, ParamError> {
    percent_ones_run(
        platform,
        params,
        variant,
        bit,
        n_samples,
        inclusion,
        seed,
        |_| None,
    )
}

/// One point of a time-sliced percent-of-ones grid (Figs. 6, 8, 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridPoint {
    /// Channel parameters of the point (`d`, target set, `Ts`, `Tr`).
    pub params: ChannelParams,
    /// The constant bit the sender holds.
    pub bit: bool,
    /// Seed of this point's run.
    pub seed: u64,
}

/// Evaluates a whole percent-of-ones grid, one independent
/// [`percent_ones`] run per point, fanned out over the host's cores
/// by [`crate::trials::run_trials`].
///
/// Each point's run is seeded only by its own [`GridPoint::seed`],
/// so the returned fractions (in `points` order) are bit-identical
/// to evaluating the points sequentially — the property the
/// `trial_driver_determinism` suite pins down.
///
/// # Errors
///
/// Returns the first [`ParamError`] in `points` order, if any point
/// has parameters that do not fit the platform's L1 geometry.
pub fn percent_ones_grid(
    platform: Platform,
    variant: Variant,
    points: &[GridPoint],
    n_samples: usize,
) -> Result<Vec<f64>, ParamError> {
    crate::trials::run_trials(points.len(), |i| {
        let p = points[i];
        percent_ones(platform, p.params, variant, p.bit, n_samples, p.seed)
    })
    .into_iter()
    .collect()
}

/// [`percent_ones`] under a parametric [`NoiseModel`]: the
/// interference process time-slices the core as a third party.
/// `NoiseModel::None` delegates to [`percent_ones`] unchanged.
///
/// # Errors
///
/// Returns [`ParamError`] if the parameters do not fit the
/// platform's L1 geometry.
pub fn percent_ones_noisy(
    platform: Platform,
    params: ChannelParams,
    variant: Variant,
    bit: bool,
    n_samples: usize,
    noise: NoiseModel,
    seed: u64,
) -> Result<f64, ParamError> {
    if noise.is_none() {
        return percent_ones(platform, params, variant, bit, n_samples, seed);
    }
    percent_ones_run(
        platform,
        params,
        variant,
        bit,
        n_samples,
        Inclusion::Inclusive,
        seed,
        |machine| {
            let (noise_pid, prog) = noise
                .spawn(machine, params.tr.max(1), seed)
                .expect("non-none noise model spawns");
            Some((noise_pid, Box::new(prog) as Box<dyn Program>))
        },
    )
}

/// [`percent_ones`] with a third, benign process time-slicing the
/// same core (§V-B: "any other processes running during Tr could
/// pollute the target set and introduce much noise" — the reason the
/// paper could not observe time-sliced Algorithm 2 at all).
///
/// The noise program touches random lines of a 256-line buffer,
/// polluting every L1 set including the target.
pub fn percent_ones_with_noise(
    platform: Platform,
    params: ChannelParams,
    variant: Variant,
    bit: bool,
    n_samples: usize,
    seed: u64,
) -> Result<f64, ParamError> {
    use exec_sim::noise::RandomTouches;

    percent_ones_run(
        platform,
        params,
        variant,
        bit,
        n_samples,
        Inclusion::Inclusive,
        seed,
        |machine| {
            let noise_pid = machine.create_process();
            let noise_buf = machine.alloc_pages(noise_pid, 4);
            let touches = RandomTouches::new(noise_buf, 4 * 64, 64, 60_000, seed ^ 0x0153);
            Some((noise_pid, Box::new(touches) as Box<dyn Program>))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{self, BitConvention};
    use crate::edit_distance::error_rate;

    fn alternating(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 2 == 1).collect()
    }

    #[test]
    fn alg1_hyperthreaded_transfers_alternating_bits() {
        let msg = alternating(20);
        let run = CovertConfig {
            platform: Platform::e5_2690(),
            params: ChannelParams::paper_alg1_default(),
            variant: Variant::SharedMemory,
            sharing: Sharing::HyperThreaded,
            message: msg.clone(),
            seed: 1,
        }
        .run()
        .unwrap();
        assert!(run.samples.len() > 100, "receiver must sample densely");
        let bits = decode::bits_by_window(
            &run.samples,
            6_000,
            run.hit_threshold,
            BitConvention::HitIsOne,
        );
        let err = error_rate(&msg, &bits[..msg.len().min(bits.len())]);
        assert!(err < 0.15, "Alg1 HT error rate too high: {err}");
    }

    #[test]
    fn alg2_hyperthreaded_transfers_alternating_bits() {
        let msg = alternating(20);
        let run = CovertConfig {
            platform: Platform::e5_2690(),
            params: ChannelParams::paper_alg2_default(),
            variant: Variant::NoSharedMemory,
            sharing: Sharing::HyperThreaded,
            message: msg.clone(),
            seed: 2,
        }
        .run()
        .unwrap();
        let bits = decode::bits_by_window_ratio(
            &run.samples,
            6_000,
            run.hit_threshold,
            BitConvention::MissIsOne,
            0.25,
        );
        let err = error_rate(&msg, &bits[..msg.len().min(bits.len())]);
        assert!(err < 0.2, "Alg2 HT error rate too high: {err}");
    }

    #[test]
    fn sending_all_zeros_keeps_line0_evicted_alg1() {
        let run = CovertConfig {
            platform: Platform::e5_2690(),
            params: ChannelParams::paper_alg1_default(),
            variant: Variant::SharedMemory,
            sharing: Sharing::HyperThreaded,
            message: vec![false; 8],
            seed: 3,
        }
        .run()
        .unwrap();
        let misses = run
            .samples
            .iter()
            .filter(|s| s.measured > run.hit_threshold)
            .count();
        // m=0: receiver's 9 accesses into the 8-way set evict line 0
        // nearly every iteration (Table I sequential condition).
        assert!(
            misses as f64 / run.samples.len() as f64 > 0.8,
            "expected mostly misses, got {misses}/{}",
            run.samples.len()
        );
    }

    #[test]
    fn sending_all_ones_keeps_line0_hot_alg1() {
        let run = CovertConfig {
            platform: Platform::e5_2690(),
            params: ChannelParams::paper_alg1_default(),
            variant: Variant::SharedMemory,
            sharing: Sharing::HyperThreaded,
            message: vec![true; 8],
            seed: 4,
        }
        .run()
        .unwrap();
        let hits = run
            .samples
            .iter()
            .filter(|s| s.measured <= run.hit_threshold)
            .count();
        assert!(
            hits as f64 / run.samples.len() as f64 > 0.8,
            "expected mostly hits, got {hits}/{}",
            run.samples.len()
        );
    }

    #[test]
    fn invalid_params_surface_as_errors() {
        let mut params = ChannelParams::paper_alg1_default();
        params.d = 0;
        let res = CovertConfig {
            platform: Platform::e5_2690(),
            params,
            variant: Variant::SharedMemory,
            sharing: Sharing::HyperThreaded,
            message: vec![true],
            seed: 0,
        }
        .run();
        assert!(res.is_err());
    }

    #[test]
    fn time_sliced_percent_ones_distinguishes_bits() {
        // A scaled-down Fig. 6 point: d=8, Tr=1e8.
        let platform = Platform::e5_2690();
        let params = ChannelParams {
            d: 8,
            target_set: 0,
            ts: 100_000_000,
            tr: 100_000_000,
        };
        let p0 = percent_ones(platform, params, Variant::SharedMemory, false, 60, 5).unwrap();
        let p1 = percent_ones(platform, params, Variant::SharedMemory, true, 60, 5).unwrap();
        assert!(
            p1 > p0 + 0.1,
            "sending 1 must yield more observed 1s (got p0={p0:.2}, p1={p1:.2})"
        );
        assert!(
            p0 < 0.1,
            "sending 0 should read as almost all 0s, got {p0:.2}"
        );
    }
}

/// Ignored diagnostic dumps used while calibrating the model against
/// the paper (run with `cargo test -- --ignored --nocapture`).
#[cfg(test)]
mod diagnostics_alg2 {
    use super::*;
    use crate::decode::{self, BitConvention};

    #[test]
    #[ignore]
    fn dump_alg2() {
        let msg: Vec<bool> = (0..20).map(|i| i % 2 == 1).collect();
        let run = CovertConfig {
            platform: Platform::e5_2690(),
            params: ChannelParams::paper_alg2_default(),
            variant: Variant::NoSharedMemory,
            sharing: Sharing::HyperThreaded,
            message: msg.clone(),
            seed: 2,
        }
        .run()
        .unwrap();
        println!(
            "threshold={} samples={}",
            run.hit_threshold,
            run.samples.len()
        );
        // per-window fraction of misses
        let ts = 6000u64;
        let mut windows: Vec<Vec<u32>> = vec![];
        for s in &run.samples {
            let w = (s.at / ts) as usize;
            while windows.len() <= w {
                windows.push(vec![]);
            }
            windows[w].push(s.measured);
        }
        for (w, vals) in windows.iter().enumerate() {
            let miss = vals.iter().filter(|&&v| v > run.hit_threshold).count();
            println!(
                "w{:02} sent={} miss_frac={:.2} n={} vals={:?}",
                w,
                msg.get(w).map(|b| *b as u8).unwrap_or(9),
                miss as f64 / vals.len().max(1) as f64,
                vals.len(),
                &vals[..vals.len().min(12)]
            );
        }
        let bits = decode::bits_by_window(
            &run.samples,
            ts,
            run.hit_threshold,
            BitConvention::MissIsOne,
        );
        println!(
            "decoded: {:?}",
            bits.iter().map(|b| *b as u8).collect::<Vec<_>>()
        );
    }
}

#[cfg(test)]
mod diagnostics_alg2_by_d {
    use super::*;

    #[test]
    #[ignore]
    fn alg2_signal_by_d() {
        for d in 1..=8 {
            let params = ChannelParams {
                d,
                target_set: 0,
                ts: 6000,
                tr: 600,
            };
            let mut fracs = (0.0, 0.0);
            for (bit, slot) in [(false, 0), (true, 1)] {
                let run = CovertConfig {
                    platform: Platform::e5_2690(),
                    params,
                    variant: Variant::NoSharedMemory,
                    sharing: Sharing::HyperThreaded,
                    message: vec![bit; 30],
                    seed: 7,
                }
                .run()
                .unwrap();
                let miss = run
                    .samples
                    .iter()
                    .filter(|s| s.measured > run.hit_threshold)
                    .count();
                let f = miss as f64 / run.samples.len() as f64;
                if slot == 0 {
                    fracs.0 = f
                } else {
                    fracs.1 = f
                }
            }
            println!("d={d} miss_frac m=0: {:.2}  m=1: {:.2}", fracs.0, fracs.1);
        }
    }
}

#[cfg(test)]
mod diagnostics_bitplru {
    use super::*;
    use cache_sim::replacement::PolicyKind;

    #[test]
    #[ignore]
    fn bitplru_sweep_d() {
        for d in 1..=8 {
            let params = ChannelParams {
                d,
                target_set: 0,
                ts: 6000,
                tr: 600,
            };
            let mut res = vec![];
            for bit in [false, true] {
                let cfg = CovertConfig {
                    platform: Platform::e5_2690(),
                    params,
                    variant: Variant::SharedMemory,
                    sharing: Sharing::HyperThreaded,
                    message: vec![bit; 30],
                    seed: 7,
                };
                let mut machine =
                    exec_sim::machine::Machine::new(cfg.platform.arch, PolicyKind::BitPlru, 7);
                let run = cfg.run_on(&mut machine).unwrap();
                let hits = run
                    .samples
                    .iter()
                    .filter(|s| s.measured <= run.hit_threshold)
                    .count();
                res.push(hits as f64 / run.samples.len() as f64);
            }
            println!(
                "BitPlru d={d} P(hit|0)={:.2} P(hit|1)={:.2}",
                res[0], res[1]
            );
        }
    }
}
