//! Lockstep batched execution of covert-channel trials.
//!
//! The scalar path ([`crate::covert::CovertConfig::run`]) builds a
//! full [`Machine`] per trial — page tables, performance counters,
//! dynamic `Program` dispatch — although the *observable* output of a
//! covert trial is only the receiver's sample trace (threshold and
//! nominal rate are pure functions of the platform). This module runs
//! **K trials of one scenario shape together** over the lane-major
//! [`BatchCache`] of `cache-sim`: one address layout (the allocator
//! is seed-independent, so every trial of a shape shares its physical
//! addresses), one warmed batch hierarchy, and a monomorphic
//! replication of the reference hyper-threaded interpreter per lane —
//! no virtual dispatch, no page-table walks, no counter bookkeeping.
//!
//! ## Exactness
//!
//! The per-lane loop replicates `exec_sim::sched::reference::
//! run_hyper_threaded` *exactly*: same thread order (sender first),
//! same shared `SmallRng` stream (TSC readout draw inside a timed
//! access, then the scheduler jitter draw), same `SpinUntil`
//! clamping, same per-op cycle accounting (`ACCESS_ISSUE_COST`, chain
//! cost + `rdtscp` overhead). The cache side replicates
//! `CacheHierarchy::access` level by level (each level fills on
//! miss; inclusive, no back-invalidation). Lanes never interact, so
//! stepping a lane to completion over the shared [`BatchCache`] is
//! bit-identical to any interleaving. The in-module equivalence
//! tests and `tests/lockstep_equivalence.rs` pin the samples — and
//! the reports derived from them — byte-for-byte against the scalar
//! path.
//!
//! ## Why it is fast
//!
//! The loop is organized as *turns*, not single ops: while one
//! thread's clock stays at or below the other's it keeps issuing, so
//! the scheduler decision runs once per turn instead of once per op,
//! and the sender's encode loop is monomorphized to a straight-line
//! pace/access alternation (no per-op `next_op` dispatch or bit-index
//! division). Two replays then remove almost every cache step while
//! leaving each lane's RNG draw sequence — which fixes the
//! interleaving — untouched:
//!
//! * **Sender repeated-hit replay.** Within a turn nobody else runs,
//!   and between sender turns only the receiver can have touched the
//!   target set. The first sender access of a turn executes for real;
//!   once it lands a clean L1 hit under an idempotent-touch policy
//!   ([`PolicyKind::touch_is_idempotent`]), the rest of the turn's
//!   accesses provably cannot change cache state and are replayed as
//!   accounting — the exact soundness argument of the scalar block
//!   engine's memo, keyed to turn boundaries instead of blocks.
//! * **Probe-chain replay.** The latency probe's [`CHAIN_LEN`] lines
//!   all live in one reserved L1 set that no channel line maps to.
//!   When they fit the associativity, no fill can ever occur there:
//!   every chain access is an L1 hit forever, and the set's
//!   replacement state is unobservable (no victim choice ever reads
//!   it). The whole chain walk is then one precomputed constant.
//!
//! ## Eligibility
//!
//! Lockstep expresses exactly the two-thread hyper-threaded covert
//! run: no noise third thread (its program would need machine-level
//! allocation mid-wire), no time-sliced quanta, no AMD µtag way
//! predictor (it keys on per-process *virtual* addresses, which the
//! batch world deliberately erases). [`eligible`] gates on the
//! platform/sharing half; callers must additionally check for an
//! attached noise model. Ineligible shapes fall back to the scalar
//! path unchanged.

use cache_sim::addr::PhysAddr;
use cache_sim::batch::BatchCache;
use cache_sim::hierarchy::{HitLevel, Latencies};
use cache_sim::replacement::{Domain, PolicyKind};
use exec_sim::block::ACCESS_ISSUE_COST;
use exec_sim::machine::Machine;
use exec_sim::measure::CHAIN_LEN;
use exec_sim::sched::HyperThreaded;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::covert::{Sharing, Variant};
use crate::params::{ChannelParams, ParamError, Platform};
use crate::protocol::{Sample, DEFAULT_ENCODE_CALC};
use crate::setup;

/// The per-batch shape shared by every lane: platform, L1 policy and
/// channel wiring. Only the message bits and the seed vary per lane.
#[derive(Debug, Clone)]
pub struct BatchSpec {
    /// The simulated CPU.
    pub platform: Platform,
    /// L1D replacement policy (L2/LLC use true LRU, as in
    /// [`Machine::new`]).
    pub policy: PolicyKind,
    /// Channel parameters (`d`, target set, `Ts`, `Tr`).
    pub params: ChannelParams,
    /// Protocol variant.
    pub variant: Variant,
}

/// One lane of a lockstep batch: the bits this trial transmits and
/// the trial seed (the same seed the scalar path would use).
#[derive(Debug, Clone)]
pub struct LaneSpec {
    /// Bits the sender transmits.
    pub message: Vec<bool>,
    /// Seed for every randomized component of the lane.
    pub seed: u64,
}

/// The observable outcome of one lane — exactly the fields of
/// [`crate::covert::CovertRun`] that experiments read (the scheduler
/// report is bookkeeping no metric consumes).
#[derive(Debug, Clone)]
pub struct LockstepRun {
    /// The receiver's timed observations, in order.
    pub samples: Vec<Sample>,
    /// Threshold separating hit from miss readouts on this platform.
    pub hit_threshold: u32,
    /// Nominal transmission rate in bits/second (`freq / Ts`).
    pub rate_bps: f64,
}

/// Whether a covert scenario shape can run on the lockstep path.
///
/// True for the two-thread hyper-threaded configuration on platforms
/// without the AMD µtag way predictor. Callers must separately
/// exclude runs with an attached noise model (noise programs allocate
/// machine pages the batch world does not replicate).
pub fn eligible(platform: &Platform, sharing: Sharing) -> bool {
    sharing == Sharing::HyperThreaded && !platform.arch.has_way_predictor
}

/// How a run driver should use the lockstep path. Plumbed from the
/// `lru-leak --lockstep=off|auto|force` debug flag down to
/// `Scenario::run_reduced_ctrl` so regressions can be bisected
/// against the scalar path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockstepMode {
    /// Never batch — always the scalar per-trial path. Output is
    /// byte-identical to `Auto` (that equivalence is what the
    /// `lockstep_equivalence` suite pins); the mode exists to bisect
    /// a suspected lockstep regression.
    Off,
    /// Batch whenever the scenario shape is eligible, fall back to
    /// scalar otherwise. The default everywhere.
    #[default]
    Auto,
    /// Demand batching. Run drivers treat this like `Auto`; front
    /// ends (CLI, server) are responsible for rejecting ineligible
    /// scenarios up front with a structured error.
    Force,
}

impl LockstepMode {
    /// The flag spellings, in declaration order.
    pub const ALL: [LockstepMode; 3] = [LockstepMode::Off, LockstepMode::Auto, LockstepMode::Force];

    /// The flag spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            LockstepMode::Off => "off",
            LockstepMode::Auto => "auto",
            LockstepMode::Force => "force",
        }
    }
}

impl std::str::FromStr for LockstepMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LockstepMode::ALL
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| format!("unknown lockstep mode `{s}` (expected off|auto|force)"))
    }
}

/// The physical addresses of one channel shape. The machine
/// allocator is deterministic and seed-independent, so one scratch
/// [`Machine`] replaying the scalar wiring sequence yields the
/// layout every lane of the batch shares.
struct Layout {
    sender_pa: PhysAddr,
    receiver_pas: Vec<PhysAddr>,
    chain_pas: Vec<PhysAddr>,
}

/// Replays the scalar path's machine mutations — process creation,
/// Algorithm 1/2 wiring, probe-chain allocation — on a scratch
/// machine and harvests the physical addresses.
fn channel_layout(spec: &BatchSpec) -> Result<Layout, ParamError> {
    let mut machine = Machine::new(spec.platform.arch, spec.policy, 0);
    let geom = machine.hierarchy().l1().geometry();
    spec.params
        .validate(geom.ways(), geom.num_sets() as usize)?;
    let (sender_pid, receiver_pid) = match spec.variant {
        Variant::SharedMemoryThreads => {
            let p = machine.create_process();
            (p, p)
        }
        _ => (machine.create_process(), machine.create_process()),
    };
    let endpoints = match spec.variant {
        Variant::SharedMemory | Variant::SharedMemoryThreads => setup::alg1(
            &mut machine,
            sender_pid,
            receiver_pid,
            spec.params.target_set,
        ),
        Variant::NoSharedMemory => setup::alg2(
            &mut machine,
            sender_pid,
            receiver_pid,
            spec.params.target_set,
        ),
    };
    // The probe chain allocates after the channel lines, exactly as
    // `LatencyProbe::new` does in the scalar wiring order.
    let probe_set = setup::reserved_probe_set(&machine, spec.params.target_set);
    let offset = probe_set as u64 * geom.line_size();
    let chain_pas = (0..CHAIN_LEN)
        .map(|_| {
            let va = machine.alloc_pages(receiver_pid, 1).add(offset);
            machine
                .translate(receiver_pid, va)
                .expect("freshly mapped chain page")
        })
        .collect();
    let sender_pa = machine
        .translate(sender_pid, endpoints.sender_line)
        .expect("sender line mapped");
    let receiver_pas = endpoints
        .receiver_lines
        .iter()
        .map(|&va| {
            machine
                .translate(receiver_pid, va)
                .expect("receiver line mapped")
        })
        .collect();
    Ok(Layout {
        sender_pa,
        receiver_pas,
        chain_pas,
    })
}

/// K lanes of L1/L2/LLC, stepped with the exact level-by-level
/// semantics of `CacheHierarchy::access` (each level fills on miss;
/// an LLC without a configured latency is never consulted).
struct BatchHierarchy {
    l1: BatchCache,
    l2: BatchCache,
    llc: Option<BatchCache>,
    lat: Latencies,
    /// Outer-level replay (see [`BatchHierarchy::enable_l2_replay`]):
    /// after warmup every L1 miss is an L2 hit by construction, so
    /// the L2/LLC walk is a constant.
    l2_replay: bool,
}

impl BatchHierarchy {
    /// Builds the per-lane hierarchies with the same per-level seed
    /// derivation as `MicroArch::build_hierarchy`.
    fn new(spec: &BatchSpec, lane_seeds: &[u64]) -> Self {
        let arch = spec.platform.arch;
        let l2_seeds: Vec<u64> = lane_seeds.iter().map(|&s| s ^ 0xaaaa).collect();
        let llc_seeds: Vec<u64> = lane_seeds.iter().map(|&s| s ^ 0x5555).collect();
        BatchHierarchy {
            l1: BatchCache::new(arch.l1d, spec.policy, lane_seeds),
            l2: BatchCache::new(arch.l2, PolicyKind::Lru, &l2_seeds),
            llc: arch
                .llc
                .map(|g| BatchCache::new(g, PolicyKind::Lru, &llc_seeds)),
            lat: arch.latencies,
            l2_replay: false,
        }
    }

    /// Turns on the constant-L2 replay when the layout proves it
    /// sound. A covert run touches a fixed, tiny line population —
    /// the channel lines plus the probe chain — and every one of them
    /// is warmed through the L2 before the trials start. If no L2 set
    /// holds more of those lines than it has ways, no L2 fill can
    /// ever evict after warmup: every post-warm L1 miss is an L2 hit,
    /// and the L2's replacement state is unobservable (no victim
    /// choice ever reads it). The L2/LLC walk of
    /// [`BatchHierarchy::access`] then collapses to `(L2, lat.l2)` —
    /// which matters, because the channel *deliberately* overflows
    /// the L1 target set (`d + 1` lines), so roughly two-thirds of
    /// all accesses in a run are L1 misses.
    fn enable_l2_replay(&mut self, layout: &Layout) {
        let geom = self.l2.geometry();
        let mut lines: Vec<(usize, u64)> = layout
            .chain_pas
            .iter()
            .chain(layout.receiver_pas.iter())
            .chain(std::iter::once(&layout.sender_pa))
            .map(|&pa| (geom.set_index(pa.raw()), geom.tag(pa.raw())))
            .collect();
        lines.sort_unstable();
        lines.dedup();
        let mut counts = std::collections::HashMap::new();
        for &(set, _) in &lines {
            *counts.entry(set).or_insert(0usize) += 1;
        }
        self.l2_replay = counts.values().all(|&n| n <= geom.ways());
    }

    /// One demand load by `lane`: level of service and its latency.
    #[inline]
    fn access(&mut self, lane: usize, pa: PhysAddr) -> (HitLevel, u32) {
        if self.l1.access_lane(lane, pa).hit {
            return (HitLevel::L1, self.lat.l1);
        }
        if self.l2_replay {
            return (HitLevel::L2, self.lat.l2);
        }
        if self.l2.access_lane(lane, pa).hit {
            return (HitLevel::L2, self.lat.l2);
        }
        match (self.llc.as_mut(), self.lat.llc) {
            (Some(llc), Some(llc_lat)) => {
                if llc.access_lane(lane, pa).hit {
                    (HitLevel::Llc, llc_lat)
                } else {
                    (HitLevel::Mem, self.lat.mem)
                }
            }
            _ => (HitLevel::Mem, self.lat.mem),
        }
    }

    /// The uniform warmup prefix: every lane loads the same address,
    /// so the L1 stage runs lane-innermost over one batched row
    /// ([`BatchCache::access_all`]); lanes that miss walk the outer
    /// levels individually (replacement divergence — e.g. the Random
    /// policy — can make the same warm access hit in one lane and
    /// miss in another).
    fn warm_all(&mut self, pa: PhysAddr) {
        let pas = vec![pa; self.l1.lanes()];
        for (lane, out) in self
            .l1
            .access_all(&pas, Domain::PRIMARY)
            .into_iter()
            .enumerate()
        {
            if out.hit {
                continue;
            }
            if self.l2.access_lane(lane, pa).hit {
                continue;
            }
            if let (Some(llc), Some(_)) = (self.llc.as_mut(), self.lat.llc) {
                llc.access_lane(lane, pa);
            }
        }
    }
}

/// Runs every lane of `lanes` through the covert channel of `spec`
/// and returns their observable outcomes, bit-identical (per lane)
/// to the scalar [`crate::covert::CovertConfig::run_on`] with a fresh
/// machine seeded by that lane's seed.
///
/// # Errors
///
/// Returns [`ParamError`] if the parameters do not fit the
/// platform's L1 geometry — the same validation, in the same place,
/// as the scalar path.
///
/// # Panics
///
/// Panics if a lane's message is empty (as the scalar sender does).
pub fn run_batch(spec: &BatchSpec, lanes: &[LaneSpec]) -> Result<Vec<LockstepRun>, ParamError> {
    let layout = channel_layout(spec)?;
    if lanes.is_empty() {
        return Ok(Vec::new());
    }
    let lane_seeds: Vec<u64> = lanes.iter().map(|l| l.seed).collect();
    let mut hier = BatchHierarchy::new(spec, &lane_seeds);

    // Warmup, in the scalar order: probe chain (LatencyProbe::new),
    // then the receiver's lines, then the sender's line.
    for &pa in &layout.chain_pas {
        hier.warm_all(pa);
    }
    for &pa in &layout.receiver_pas {
        hier.warm_all(pa);
    }
    hier.warm_all(layout.sender_pa);
    hier.enable_l2_replay(&layout);

    Ok(lanes
        .iter()
        .enumerate()
        .map(|(lane, l)| run_lane(spec, &layout, &mut hier, lane, l))
        .collect())
}

/// One per-op scheduler jitter draw, exactly as the reference
/// interpreter makes it (a `u32` range draw widened afterwards).
#[inline]
fn jitter_draw(rng: &mut SmallRng, max: u32) -> u64 {
    if max == 0 {
        0
    } else {
        u64::from(rng.gen_range(0..=max))
    }
}

/// Steps one lane's sender/receiver pair to the scheduler limit —
/// the reference hyper-threaded interpreter, monomorphized and
/// turn-structured (see the module docs).
///
/// The reference picks, per op, the live thread with the smaller
/// local clock (ties to the sender, index 0). Equivalently: the
/// sender keeps issuing while `local[0] <= local[1]`, the receiver
/// while `local[1] < local[0]` — a *turn*. Neither thread's clock or
/// liveness can change during the other's turn, so hoisting the pick
/// to turn boundaries is exact, and the inner loops only re-check
/// their own clock against the opponent's frozen one.
fn run_lane(
    spec: &BatchSpec,
    layout: &Layout,
    hier: &mut BatchHierarchy,
    lane: usize,
    l: &LaneSpec,
) -> LockstepRun {
    // The receiver's op stream (`LruReceiver::next_op`) inlined —
    // init `d` lines → sleep to the `Tr` grid → decode the rest →
    // time line 0 — with its line list resolved straight to the
    // shared physical layout (virtual addresses only matter to the
    // way predictor, which eligibility excludes). Covert receivers
    // have no sample cap, so `Op::Done` cannot occur.
    let r_lines = &layout.receiver_pas;
    let d = spec.params.d;
    let tr = spec.params.tr;
    assert!(d >= 1 && d <= r_lines.len(), "d must be in 1..=lines.len()");
    assert!(tr > 0, "tr must be positive");
    let mut r_phase = Phase::Init;
    let mut r_idx = 0usize;
    let mut r_wake = 0u64;
    // Every receive cycle spans at least one `Tr` grid step, so the
    // sample count is bounded by the run length over `Tr`.
    let cap = (spec.params.ts * (l.message.len() as u64 + 1) / spec.params.tr) as usize + 1;
    let mut samples: Vec<Sample> = Vec::with_capacity(cap);

    // The sender's op stream (`LruSender::next_op`) inlined: per bit
    // period, either a Compute(calc)/Access(line) alternation (bit 1,
    // with `pending_access` carrying a started pair across bit and
    // turn boundaries) or a spin to the period's end (bit 0).
    let message = &l.message;
    assert!(!message.is_empty(), "message must contain at least one bit");
    let msg_len = message.len() as u64;
    let ts = spec.params.ts;
    let calc = u64::from(DEFAULT_ENCODE_CALC);
    let mut pending_access = false;

    let tsc = spec.platform.tsc;
    let sched = HyperThreaded::new(l.seed ^ 0x5eed);
    let mut rng = SmallRng::seed_from_u64(sched.seed);
    let jmax = sched.jitter;
    let limit = (msg_len + 1) * ts;

    let lat = hier.lat;
    let l1_hit_cost = u64::from(lat.l1) + ACCESS_ISSUE_COST;
    // Probe-chain replay (module docs): sound whenever the chain fits
    // its reserved set's associativity, because then that set never
    // sees a fill after warmup.
    let chain_total: Option<u32> =
        (hier.l1.geometry().ways() >= CHAIN_LEN).then(|| CHAIN_LEN as u32 * lat.l1);
    // Sender repeated-hit replay: valid while the last sender access
    // was a clean L1 hit, the touch is idempotent, and no receiver
    // turn has intervened (the receiver is the only other party that
    // can touch the target set).
    let touch_idem = spec.policy.touch_is_idempotent();
    let mut sender_line_hot = false;

    let mut local = [0u64; 2];
    let mut s_done = false;

    loop {
        let s_live = !s_done && local[0] < limit;
        let r_live = local[1] < limit;
        if s_live && (!r_live || local[0] <= local[1]) {
            // --- Sender turn: issue while winning the (tied) pick ---
            let bound = if r_live { local[1] } else { u64::MAX };
            loop {
                let now = local[0];
                if now >= limit || now > bound {
                    break;
                }
                let k = now / ts;
                if k >= msg_len {
                    s_done = true;
                    break;
                }
                if message[k as usize] {
                    // The bit is constant until `bit_end`; the pace/
                    // access alternation needs no further division.
                    let bit_end = (k + 1) * ts;
                    while local[0] < bit_end && local[0] <= bound && local[0] < limit {
                        let cycles = if pending_access {
                            pending_access = false;
                            if sender_line_hot {
                                l1_hit_cost
                            } else {
                                let (level, cyc) = hier.access(lane, layout.sender_pa);
                                sender_line_hot = touch_idem && level == HitLevel::L1;
                                u64::from(cyc) + ACCESS_ISSUE_COST
                            }
                        } else {
                            pending_access = true;
                            calc
                        };
                        local[0] += cycles + jitter_draw(&mut rng, jmax);
                    }
                } else {
                    // Bit 0: spin to the period's end — the
                    // reference's `SpinUntil` clamping verbatim.
                    let t = (k + 1) * ts;
                    local[0] = now.max(t.min(limit));
                    if t >= limit {
                        local[0] = limit;
                    }
                }
            }
        } else if r_live && (!s_live || local[1] < local[0]) {
            // --- Receiver turn: issue while strictly ahead ---
            // The receiver may touch the target set; the sender's
            // repeated-hit memo cannot survive its turn.
            sender_line_hot = false;
            let bound = if s_live { local[0] } else { u64::MAX };
            loop {
                let now = local[1];
                if now >= limit || now >= bound {
                    break;
                }
                match r_phase {
                    Phase::Init => {
                        if r_idx < d {
                            let (_, cyc) = hier.access(lane, r_lines[r_idx]);
                            r_idx += 1;
                            local[1] = now
                                + u64::from(cyc)
                                + ACCESS_ISSUE_COST
                                + jitter_draw(&mut rng, jmax);
                        } else {
                            r_phase = Phase::Wait;
                        }
                    }
                    Phase::Wait => {
                        if now < r_wake {
                            // `SpinUntil(r_wake)`, the reference's
                            // clamping verbatim.
                            local[1] = now.max(r_wake.min(limit));
                            if r_wake >= limit {
                                local[1] = limit;
                            }
                        } else {
                            // Tlast = TSC (Algorithm 3): the next
                            // sample is tr after this wait released.
                            r_wake = now + tr;
                            r_phase = Phase::Decode;
                            r_idx = d;
                        }
                    }
                    Phase::Decode => {
                        if r_idx < r_lines.len() {
                            let (_, cyc) = hier.access(lane, r_lines[r_idx]);
                            r_idx += 1;
                            local[1] = now
                                + u64::from(cyc)
                                + ACCESS_ISSUE_COST
                                + jitter_draw(&mut rng, jmax);
                        } else {
                            r_phase = Phase::Measure;
                        }
                    }
                    Phase::Measure => {
                        // The pointer chase: chain loads (replayed or
                        // real), then the architectural target load;
                        // the TSC readout draws from the shared RNG
                        // *before* the scheduler's jitter draw, as in
                        // the scalar `execute_op`.
                        let mut total = match chain_total {
                            Some(t) => t,
                            None => layout
                                .chain_pas
                                .iter()
                                .map(|&cpa| hier.access(lane, cpa).1)
                                .sum(),
                        };
                        let (level, cyc) = hier.access(lane, r_lines[0]);
                        total += cyc;
                        let measured = tsc.measure_chain(total, &mut rng);
                        let cycles = u64::from(total) + u64::from(tsc.overhead);
                        samples.push(Sample {
                            at: now + cycles,
                            measured,
                            level,
                        });
                        local[1] = now + cycles + jitter_draw(&mut rng, jmax);
                        r_phase = Phase::Init;
                        r_idx = 0;
                    }
                }
            }
        } else {
            break;
        }
    }

    LockstepRun {
        samples,
        hit_threshold: spec.platform.hit_threshold(),
        rate_bps: spec.platform.rate_bps(spec.params.ts),
    }
}

/// The receiver's Algorithm 3 measurement phases, mirroring
/// `LruReceiver`'s internal state machine.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Init,
    Wait,
    Decode,
    Measure,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covert::CovertConfig;

    fn scalar_run(spec: &BatchSpec, message: &[bool], seed: u64) -> crate::covert::CovertRun {
        let cfg = CovertConfig {
            platform: spec.platform,
            params: spec.params,
            variant: spec.variant,
            sharing: Sharing::HyperThreaded,
            message: message.to_vec(),
            seed,
        };
        let mut machine = Machine::new(spec.platform.arch, spec.policy, seed);
        cfg.run_on(&mut machine).unwrap()
    }

    fn assert_batch_matches_scalar(spec: &BatchSpec, lanes: &[LaneSpec]) {
        let batch = run_batch(spec, lanes).unwrap();
        assert_eq!(batch.len(), lanes.len());
        for (l, out) in lanes.iter().zip(&batch) {
            let scalar = scalar_run(spec, &l.message, l.seed);
            assert_eq!(
                out.samples, scalar.samples,
                "lane seed {} diverged ({:?}/{:?} on {})",
                l.seed, spec.variant, spec.policy, spec.platform.arch.model
            );
            assert_eq!(out.hit_threshold, scalar.hit_threshold);
            assert_eq!(out.rate_bps.to_bits(), scalar.rate_bps.to_bits());
        }
    }

    fn message(seed: u64, bits: usize) -> Vec<bool> {
        (0..bits).map(|i| (seed >> (i % 64)) & 1 == 1).collect()
    }

    fn lanes(master: u64, k: usize, bits: usize) -> Vec<LaneSpec> {
        (0..k as u64)
            .map(|i| {
                let seed = crate::trials::derive_seed(master, i);
                LaneSpec {
                    message: message(seed, bits),
                    seed,
                }
            })
            .collect()
    }

    fn spec(variant: Variant, policy: PolicyKind, d: usize) -> BatchSpec {
        BatchSpec {
            platform: Platform::e5_2690(),
            policy,
            params: ChannelParams {
                d,
                target_set: 0,
                ts: 6_000,
                tr: 600,
            },
            variant,
        }
    }

    #[test]
    fn matches_scalar_for_every_variant() {
        for variant in [
            Variant::SharedMemory,
            Variant::SharedMemoryThreads,
            Variant::NoSharedMemory,
        ] {
            assert_batch_matches_scalar(&spec(variant, PolicyKind::TreePlru, 8), &lanes(11, 4, 12));
        }
    }

    #[test]
    fn matches_scalar_for_every_policy() {
        // Random included: its per-set victim streams are seeded per
        // lane, exactly like the scalar per-machine seeding.
        for policy in [
            PolicyKind::Lru,
            PolicyKind::TreePlru,
            PolicyKind::BitPlru,
            PolicyKind::Fifo,
            PolicyKind::Random,
        ] {
            assert_batch_matches_scalar(&spec(Variant::SharedMemory, policy, 8), &lanes(23, 3, 10));
        }
    }

    #[test]
    fn matches_scalar_on_skylake_and_other_params() {
        let spec = BatchSpec {
            platform: Platform::e3_1245v5(),
            policy: PolicyKind::TreePlru,
            params: ChannelParams {
                d: 3,
                target_set: 63,
                ts: 4_500,
                tr: 1_000,
            },
            variant: Variant::NoSharedMemory,
        };
        assert_batch_matches_scalar(&spec, &lanes(37, 4, 16));
    }

    #[test]
    fn single_lane_and_empty_batch() {
        let s = spec(Variant::SharedMemory, PolicyKind::TreePlru, 4);
        assert!(run_batch(&s, &[]).unwrap().is_empty());
        assert_batch_matches_scalar(&s, &lanes(5, 1, 8));
    }

    #[test]
    fn lanes_are_order_independent() {
        // A lane's outcome may not depend on its batch position.
        let s = spec(Variant::SharedMemory, PolicyKind::TreePlru, 8);
        let mut ls = lanes(77, 4, 10);
        let forward = run_batch(&s, &ls).unwrap();
        ls.reverse();
        let backward = run_batch(&s, &ls).unwrap();
        for (f, b) in forward.iter().zip(backward.iter().rev()) {
            assert_eq!(f.samples, b.samples);
        }
    }

    #[test]
    fn invalid_params_error_like_the_scalar_path() {
        let mut s = spec(Variant::SharedMemory, PolicyKind::TreePlru, 8);
        s.params.d = 9;
        assert!(matches!(
            run_batch(&s, &lanes(1, 2, 8)),
            Err(ParamError::BadD { .. })
        ));
    }

    #[test]
    fn eligibility_excludes_time_sliced_and_way_predictor() {
        assert!(eligible(&Platform::e5_2690(), Sharing::HyperThreaded));
        assert!(eligible(&Platform::e3_1245v5(), Sharing::HyperThreaded));
        assert!(!eligible(&Platform::e5_2690(), Sharing::TimeSliced));
        assert!(!eligible(&Platform::epyc_7571(), Sharing::HyperThreaded));
    }
}
