//! The Table I study: probability that `line 0` is evicted by the
//! receiver's access sequence under each replacement policy.
//!
//! PLRU policies keep less state than true LRU, so the victim after
//! a fixed access sequence still depends on history. The paper's
//! in-house simulator measures, over 10,000 trials, how often
//! `line 0` is actually evicted — i.e. how reliable the channels'
//! decode step is — as a function of policy, access sequence, initial
//! condition, and how many times the loop has already run.

use cache_sim::addr::PhysAddr;
use cache_sim::cache::Cache;
use cache_sim::geometry::CacheGeometry;
use cache_sim::replacement::PolicyKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which access sequence the loop body replays (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequenceKind {
    /// Sequence 1: `0 → 1 → … → 7 → 8` — the Algorithm 1 receiver's
    /// pattern when the sender sends `0`.
    Seq1,
    /// Sequence 2: `0 (→x) → 1 (→x) → … → 7`, each `x` inserted with
    /// probability 50%, at least one forced — the Algorithm 2
    /// pattern under hyper-threaded interleaving when the sender
    /// sends `1`.
    Seq2,
}

/// The state of the set before the measured loop starts (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitCond {
    /// Lines 0–7 (and possibly others) touched in random order.
    Random,
    /// Lines 0–7 previously accessed in order (Sequence 2 warm-up) —
    /// the condition the paper recommends the receiver to establish.
    Sequential,
}

/// One cell bundle of Table I: eviction probability of `line 0`
/// after each loop iteration.
#[derive(Debug, Clone)]
pub struct EvictionCurve {
    /// Policy measured.
    pub policy: PolicyKind,
    /// Sequence replayed by the loop.
    pub sequence: SequenceKind,
    /// Warm-up condition.
    pub init: InitCond,
    /// `probabilities[k]` = P(line 0 evicted) observed after loop
    /// iteration `k+1`.
    pub probabilities: Vec<f64>,
}

impl EvictionCurve {
    /// The paper's ">= 8" row: mean probability over iterations 8+.
    pub fn steady_state(&self) -> f64 {
        let tail: Vec<f64> = self.probabilities.iter().skip(7).copied().collect();
        if tail.is_empty() {
            *self.probabilities.last().unwrap_or(&0.0)
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }
}

/// Number of trials the paper uses per configuration.
pub const PAPER_TRIALS: usize = 10_000;

fn one_set_cache(policy: PolicyKind, seed: u64) -> Cache {
    // A single 8-way set; addresses i*64 give tags 0,1,2,…
    let geom = CacheGeometry::new(64, 1, 8).expect("valid single-set geometry");
    Cache::new(geom, policy, seed)
}

fn line(i: u64) -> PhysAddr {
    PhysAddr::new(i * 64)
}

/// Line "x" of Sequence 2: maps to the set, distinct from lines 0–7.
const LINE_X: u64 = 8;

fn run_sequence(cache: &mut Cache, seq: SequenceKind, rng: &mut SmallRng) {
    match seq {
        SequenceKind::Seq1 => {
            for i in 0..=8u64 {
                cache.access(line(i));
            }
        }
        SequenceKind::Seq2 => {
            // Insert x after each of lines 0..=6 with p=0.5; force at
            // least one insertion (the paper assumes x is accessed at
            // least once).
            let mut inserts: Vec<bool> = (0..7).map(|_| rng.gen_bool(0.5)).collect();
            if inserts.iter().all(|&b| !b) {
                let k = rng.gen_range(0..inserts.len());
                inserts[k] = true;
            }
            for i in 0..=7u64 {
                cache.access(line(i));
                if i < 7 && inserts[i as usize] {
                    cache.access(line(LINE_X));
                }
            }
        }
    }
}

fn warm_up(cache: &mut Cache, init: InitCond, rng: &mut SmallRng) {
    match init {
        InitCond::Random => {
            // Lines 0–7 and possibly other lines, random order.
            for _ in 0..64 {
                let i = rng.gen_range(0..10u64); // 0..=7, x, and one stranger
                cache.access(line(i));
            }
            // Make sure every line 0–7 was touched at least once.
            let mut order: Vec<u64> = (0..8).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for i in order {
                cache.access(line(i));
            }
        }
        InitCond::Sequential => {
            // The paper warms up with Sequence 2 runs.
            for _ in 0..3 {
                run_sequence(cache, SequenceKind::Seq2, rng);
            }
        }
    }
}

/// Measures the Table I eviction curve for one configuration.
///
/// Runs `trials` independent experiments; in each, the warm-up
/// establishes `init`, then the sequence is replayed `iterations`
/// times, recording after each iteration whether `line 0` is still
/// resident.
pub fn eviction_curve(
    policy: PolicyKind,
    sequence: SequenceKind,
    init: InitCond,
    iterations: usize,
    trials: usize,
    seed: u64,
) -> EvictionCurve {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut evicted_counts = vec![0u64; iterations];
    for t in 0..trials {
        let mut cache = one_set_cache(policy, seed ^ (t as u64).wrapping_mul(0x9e37_79b9));
        warm_up(&mut cache, init, &mut rng);
        for count in evicted_counts.iter_mut() {
            run_sequence(&mut cache, sequence, &mut rng);
            if !cache.probe(line(0)) {
                *count += 1;
            }
        }
    }
    EvictionCurve {
        policy,
        sequence,
        init,
        probabilities: evicted_counts
            .into_iter()
            .map(|c| c as f64 / trials as f64)
            .collect(),
    }
}

/// Runs the full Table I grid (3 policies × 2 sequences × 2 initial
/// conditions) with the given trial count.
pub fn table1(iterations: usize, trials: usize, seed: u64) -> Vec<EvictionCurve> {
    let mut out = Vec::new();
    for init in [InitCond::Random, InitCond::Sequential] {
        for policy in PolicyKind::TABLE1 {
            for sequence in [SequenceKind::Seq1, SequenceKind::Seq2] {
                out.push(eviction_curve(
                    policy, sequence, init, iterations, trials, seed,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRIALS: usize = 400;

    #[test]
    fn true_lru_always_evicts_line_0() {
        // Table I: the LRU column is 100% everywhere.
        for seq in [SequenceKind::Seq1, SequenceKind::Seq2] {
            for init in [InitCond::Random, InitCond::Sequential] {
                let curve = eviction_curve(PolicyKind::Lru, seq, init, 3, TRIALS, 1);
                for (k, &p) in curve.probabilities.iter().enumerate() {
                    assert!(
                        (p - 1.0).abs() < f64::EPSILON,
                        "LRU {seq:?}/{init:?} iter {k}: {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn tree_plru_seq1_sequential_converges_to_certainty() {
        // Table I sequential/Seq1 for Tree-PLRU: 90.9% at iteration 1,
        // 100% from iteration 2.
        let curve = eviction_curve(
            PolicyKind::TreePlru,
            SequenceKind::Seq1,
            InitCond::Sequential,
            4,
            TRIALS,
            2,
        );
        assert!(
            curve.probabilities[0] > 0.6,
            "iter 1 should usually evict, got {}",
            curve.probabilities[0]
        );
        assert!(
            curve.probabilities[2] > 0.95,
            "by iter 3 eviction should be near-certain, got {}",
            curve.probabilities[2]
        );
    }

    #[test]
    fn tree_plru_random_init_is_unreliable_at_first() {
        // Table I random/Seq1 iteration 1 is ~50% for Tree-PLRU.
        let curve = eviction_curve(
            PolicyKind::TreePlru,
            SequenceKind::Seq1,
            InitCond::Random,
            1,
            TRIALS,
            3,
        );
        let p = curve.probabilities[0];
        assert!(
            (0.2..0.85).contains(&p),
            "random-init first-iteration eviction should be uncertain, got {p}"
        );
    }

    #[test]
    fn tree_plru_seq2_stays_noisy() {
        // Table I: Tree-PLRU Seq2 hovers around ~62% even at >= 8
        // iterations — the Algorithm 2 noise floor.
        let curve = eviction_curve(
            PolicyKind::TreePlru,
            SequenceKind::Seq2,
            InitCond::Sequential,
            12,
            TRIALS,
            4,
        );
        let steady = curve.steady_state();
        assert!(
            (0.35..0.9).contains(&steady),
            "Seq2 steady state should stay noticeably below 100%, got {steady}"
        );
    }

    #[test]
    fn bit_plru_seq1_converges_like_paper() {
        // Table I: Bit-PLRU Seq1 reaches 100% at >= 8 iterations.
        let curve = eviction_curve(
            PolicyKind::BitPlru,
            SequenceKind::Seq1,
            InitCond::Sequential,
            12,
            TRIALS,
            5,
        );
        assert!(
            curve.steady_state() > 0.95,
            "Bit-PLRU Seq1 steady state should approach 100%, got {}",
            curve.steady_state()
        );
    }

    #[test]
    fn table1_grid_has_12_cells() {
        let rows = table1(2, 50, 7);
        assert_eq!(rows.len(), 12);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = eviction_curve(
            PolicyKind::TreePlru,
            SequenceKind::Seq2,
            InitCond::Random,
            3,
            100,
            9,
        );
        let b = eviction_curve(
            PolicyKind::TreePlru,
            SequenceKind::Seq2,
            InitCond::Random,
            3,
            100,
            9,
        );
        assert_eq!(a.probabilities, b.probabilities);
    }
}

/// Ignored diagnostic dump of the full Table I grid (run with
/// `cargo test -- --ignored --nocapture`).
#[cfg(test)]
mod diagnostics {
    use super::*;

    #[test]
    #[ignore]
    fn dump_table1() {
        for curve in table1(12, 2000, 42) {
            let p: Vec<String> = curve
                .probabilities
                .iter()
                .map(|x| format!("{:.1}", x * 100.0))
                .collect();
            println!(
                "{:?} {:?} {:?}: {} steady={:.1}",
                curve.init,
                curve.policy,
                curve.sequence,
                p.join(" "),
                curve.steady_state() * 100.0
            );
        }
    }
}
