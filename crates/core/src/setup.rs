//! Address-space wiring for the two channel variants.
//!
//! The paper's `line 0..N` are `N+1` cache lines with the same set
//! index and different tags (§IV-A). For the paper's VIPT L1 (64
//! sets × 64 B = one page), a line for set `s` is simply *any page*
//! plus offset `s × 64`, so a process conjures lines for a target
//! set from fresh private pages — exactly the §IV-B argument that no
//! physical-address knowledge is needed.

use cache_sim::addr::VirtAddr;
use exec_sim::machine::{Machine, Pid};

/// The wired-up endpoints of a channel instance.
#[derive(Debug, Clone)]
pub struct Endpoints {
    /// Sender process.
    pub sender_pid: Pid,
    /// Receiver process (equal to `sender_pid` in the AMD
    /// shared-address-space configuration, §VI-B).
    pub receiver_pid: Pid,
    /// The line the sender touches to send `1`: the shared `line 0`
    /// (Algorithm 1) or the sender-private `line N` (Algorithm 2),
    /// as a sender-space virtual address.
    pub sender_line: VirtAddr,
    /// The receiver's lines, in protocol order: `line 0` first (the
    /// timed one). Algorithm 1: `N+1` entries with `lines[0]`
    /// aliasing the sender's line. Algorithm 2: `N` entries, all
    /// private.
    pub receiver_lines: Vec<VirtAddr>,
}

/// Allocates `count` lines mapping to `target_set` from fresh private
/// pages of `pid`.
pub fn alloc_set_lines(
    machine: &mut Machine,
    pid: Pid,
    target_set: usize,
    count: usize,
) -> Vec<VirtAddr> {
    let geom = machine.hierarchy().l1().geometry();
    let offset = target_set as u64 * geom.line_size();
    (0..count)
        .map(|_| machine.alloc_pages(pid, 1).add(offset))
        .collect()
}

/// Wires up **Algorithm 1** (shared memory): `line 0` lives in a
/// page shared between the two processes (the "shared library" page
/// of §IV-A); lines `1..=N` are receiver-private.
///
/// When `sender_pid == receiver_pid` the shared page degenerates to
/// one private page used by both threads — the AMD pthreads
/// configuration of §VI-B.
pub fn alg1(
    machine: &mut Machine,
    sender_pid: Pid,
    receiver_pid: Pid,
    target_set: usize,
) -> Endpoints {
    let geom = machine.hierarchy().l1().geometry();
    let ways = geom.ways();
    let offset = target_set as u64 * geom.line_size();
    let (sender_line, receiver_line0) = if sender_pid == receiver_pid {
        let page = machine.alloc_pages(sender_pid, 1);
        (page.add(offset), page.add(offset))
    } else {
        let (va_s, va_r) = machine.map_shared_page(sender_pid, receiver_pid);
        (va_s.add(offset), va_r.add(offset))
    };
    let mut receiver_lines = vec![receiver_line0];
    receiver_lines.extend(alloc_set_lines(machine, receiver_pid, target_set, ways));
    Endpoints {
        sender_pid,
        receiver_pid,
        sender_line,
        receiver_lines,
    }
}

/// Wires up **Algorithm 2** (no shared memory): the receiver owns
/// `N` private lines `0..N-1`; the sender owns its private `line N`
/// in its own address space.
pub fn alg2(
    machine: &mut Machine,
    sender_pid: Pid,
    receiver_pid: Pid,
    target_set: usize,
) -> Endpoints {
    let ways = machine.hierarchy().l1().geometry().ways();
    let receiver_lines = alloc_set_lines(machine, receiver_pid, target_set, ways);
    let sender_line = alloc_set_lines(machine, sender_pid, target_set, 1)[0];
    Endpoints {
        sender_pid,
        receiver_pid,
        sender_line,
        receiver_lines,
    }
}

/// Picks a probe (pointer-chase chain) set different from the target
/// set — the paper reserves one of the 64 sets for the chain
/// (§IV-D, §VIII).
pub fn reserved_probe_set(machine: &Machine, target_set: usize) -> usize {
    let num_sets = machine.hierarchy().l1().geometry().num_sets() as usize;
    if target_set == num_sets - 1 {
        num_sets - 2
    } else {
        num_sets - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::profiles::MicroArch;
    use cache_sim::replacement::PolicyKind;

    fn machine() -> Machine {
        Machine::new(MicroArch::sandy_bridge_e5_2690(), PolicyKind::TreePlru, 5)
    }

    #[test]
    fn set_lines_map_to_target_set_with_distinct_tags() {
        let mut m = machine();
        let p = m.create_process();
        let lines = alloc_set_lines(&mut m, p, 17, 9);
        let geom = m.hierarchy().l1().geometry();
        let mut tags = std::collections::HashSet::new();
        for &va in &lines {
            let pa = m.translate(p, va).unwrap();
            assert_eq!(geom.set_index(pa.raw()), 17);
            assert!(tags.insert(geom.tag(pa.raw())), "tags must be distinct");
        }
    }

    #[test]
    fn alg1_line0_is_shared_physically() {
        let mut m = machine();
        let s = m.create_process();
        let r = m.create_process();
        let ep = alg1(&mut m, s, r, 0);
        assert_eq!(ep.receiver_lines.len(), 9); // N+1 for 8 ways
        let pa_s = m.translate(s, ep.sender_line).unwrap();
        let pa_r = m.translate(r, ep.receiver_lines[0]).unwrap();
        assert_eq!(pa_s, pa_r, "line 0 must be one physical line");
    }

    #[test]
    fn alg1_same_pid_uses_one_va() {
        let mut m = machine();
        let p = m.create_process();
        let ep = alg1(&mut m, p, p, 3);
        assert_eq!(ep.sender_line, ep.receiver_lines[0]);
    }

    #[test]
    fn alg2_has_no_shared_lines() {
        let mut m = machine();
        let s = m.create_process();
        let r = m.create_process();
        let ep = alg2(&mut m, s, r, 5);
        assert_eq!(ep.receiver_lines.len(), 8); // N for 8 ways
        let pa_sender = m.translate(s, ep.sender_line).unwrap();
        for &va in &ep.receiver_lines {
            let pa = m.translate(r, va).unwrap();
            assert_ne!(pa, pa_sender);
        }
        // But everything still collides in the target set.
        let geom = m.hierarchy().l1().geometry();
        assert_eq!(geom.set_index(pa_sender.raw()), 5);
    }

    #[test]
    fn probe_set_avoids_target() {
        let m = machine();
        assert_eq!(reserved_probe_set(&m, 0), 63);
        assert_eq!(reserved_probe_set(&m, 63), 62);
    }
}
