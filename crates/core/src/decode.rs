//! Turning receiver traces back into bits.

use crate::protocol::Sample;

/// How a classified hit/miss maps to a message bit.
///
/// Algorithm 1: the sender's access *protects* `line 0`, so a fast
/// (hit) readout means `1`. Algorithm 2: the sender's access makes
/// the receiver's decode *evict* `line 0`, so a slow (miss) readout
/// means `1` (§IV-A/B — visible as the opposite polarities of the
/// Fig. 5 top and bottom traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitConvention {
    /// Hit ⇒ bit 1 (Algorithm 1).
    HitIsOne,
    /// Miss ⇒ bit 1 (Algorithm 2).
    MissIsOne,
}

/// Classifies one readout against the platform threshold.
pub fn classify(measured: u32, hit_threshold: u32, convention: BitConvention) -> bool {
    let hit = measured <= hit_threshold;
    match convention {
        BitConvention::HitIsOne => hit,
        BitConvention::MissIsOne => !hit,
    }
}

/// Decodes a trace into bits by majority vote over consecutive
/// `ts`-cycle windows (the receiver samples several times per bit;
/// §V-A notes averaging cancels the noise).
///
/// Windows with no samples repeat the previous bit (the decoder
/// cannot do better); the result covers `0..=max(at)/ts`.
pub fn bits_by_window(
    samples: &[Sample],
    ts: u64,
    hit_threshold: u32,
    convention: BitConvention,
) -> Vec<bool> {
    bits_by_window_ratio(samples, ts, hit_threshold, convention, 0.5)
}

/// [`bits_by_window`] with an explicit vote ratio: a window decodes
/// to `1` when strictly more than `ratio` of its samples classify as
/// `1`.
///
/// Algorithm 2's noise is *asymmetric* — PLRU residue makes the
/// sender's access fail to evict `line 0` (a false `0`), while a
/// quiet set almost never produces a spurious miss (§IV-B, Table I
/// Seq 2 ≈ 62%). A receiver therefore decodes Algorithm 2 with a
/// ratio well below one half (≈ 0.25), treating "some misses" as a
/// `1`.
pub fn bits_by_window_ratio(
    samples: &[Sample],
    ts: u64,
    hit_threshold: u32,
    convention: BitConvention,
    ratio: f64,
) -> Vec<bool> {
    if samples.is_empty() {
        return Vec::new();
    }
    let last_window = (samples.iter().map(|s| s.at).max().unwrap() / ts) as usize;
    let mut ones = vec![0u32; last_window + 1];
    let mut totals = vec![0u32; last_window + 1];
    for s in samples {
        let w = (s.at / ts) as usize;
        totals[w] += 1;
        if classify(s.measured, hit_threshold, convention) {
            ones[w] += 1;
        }
    }
    let mut bits = Vec::with_capacity(last_window + 1);
    let mut prev = false;
    for w in 0..=last_window {
        let bit = if totals[w] == 0 {
            prev
        } else {
            ones[w] as f64 > ratio * totals[w] as f64
        };
        bits.push(bit);
        prev = bit;
    }
    bits
}

/// Fraction of samples classified as `1` (the Figs. 6/8/15
/// time-sliced statistic).
pub fn percent_ones(samples: &[Sample], hit_threshold: u32, convention: BitConvention) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let ones = samples
        .iter()
        .filter(|s| classify(s.measured, hit_threshold, convention))
        .count();
    ones as f64 / samples.len() as f64
}

/// Centered moving average of the readouts over a window of `w`
/// samples — the light-blue line of Fig. 7, which makes the AMD
/// channel readable despite the coarse counter (§VI-A: "the receiver
/// needs to take multiple repeated measurements and take the
/// average").
pub fn moving_average(samples: &[Sample], w: usize) -> Vec<f64> {
    if samples.is_empty() || w == 0 {
        return Vec::new();
    }
    let vals: Vec<f64> = samples.iter().map(|s| s.measured as f64).collect();
    let half = w / 2;
    (0..vals.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(vals.len());
            vals[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Decodes bits from a moving-average trace by thresholding at the
/// trace's midrange, majority-voting each `period`-sample stretch
/// (the "best fit period" decoding of Fig. 7).
pub fn bits_from_moving_average(
    avg: &[f64],
    period: usize,
    convention: BitConvention,
) -> Vec<bool> {
    if avg.is_empty() || period == 0 {
        return Vec::new();
    }
    let min = avg.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = avg.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let threshold = (min + max) / 2.0;
    avg.chunks(period)
        .map(|chunk| {
            let slow = chunk.iter().filter(|&&v| v > threshold).count();
            let slow_majority = 2 * slow > chunk.len();
            match convention {
                BitConvention::MissIsOne => slow_majority,
                BitConvention::HitIsOne => !slow_majority,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::hierarchy::HitLevel;

    fn sample(at: u64, measured: u32) -> Sample {
        Sample {
            at,
            measured,
            level: HitLevel::L1,
        }
    }

    #[test]
    fn classify_respects_convention() {
        assert!(classify(30, 40, BitConvention::HitIsOne));
        assert!(!classify(50, 40, BitConvention::HitIsOne));
        assert!(!classify(30, 40, BitConvention::MissIsOne));
        assert!(classify(50, 40, BitConvention::MissIsOne));
    }

    #[test]
    fn windows_majority_vote() {
        // Window 0: 2 hits + 1 miss → 1; window 1: all misses → 0.
        let s = vec![
            sample(10, 30),
            sample(20, 30),
            sample(30, 50),
            sample(110, 50),
            sample(120, 50),
        ];
        let bits = bits_by_window(&s, 100, 40, BitConvention::HitIsOne);
        assert_eq!(bits, vec![true, false]);
    }

    #[test]
    fn empty_windows_repeat_previous_bit() {
        let s = vec![sample(10, 30), sample(310, 50)];
        let bits = bits_by_window(&s, 100, 40, BitConvention::HitIsOne);
        assert_eq!(bits, vec![true, true, true, false]);
    }

    #[test]
    fn empty_trace_decodes_to_nothing() {
        assert!(bits_by_window(&[], 100, 40, BitConvention::HitIsOne).is_empty());
        assert_eq!(percent_ones(&[], 40, BitConvention::HitIsOne), 0.0);
        assert!(moving_average(&[], 3).is_empty());
    }

    #[test]
    fn percent_ones_counts_fraction() {
        let s = vec![sample(0, 30), sample(1, 30), sample(2, 50), sample(3, 50)];
        assert_eq!(percent_ones(&s, 40, BitConvention::HitIsOne), 0.5);
        assert_eq!(percent_ones(&s, 40, BitConvention::MissIsOne), 0.5);
    }

    #[test]
    fn moving_average_smooths() {
        let s: Vec<Sample> = (0..6)
            .map(|i| sample(i, if i % 2 == 0 { 100 } else { 200 }))
            .collect();
        let avg = moving_average(&s, 6);
        // Interior points average out near 150.
        assert!((avg[3] - 150.0).abs() < 20.0);
    }

    #[test]
    fn moving_average_bits_recover_square_wave() {
        // 40 slow then 40 fast readouts, period 40.
        let mut s = Vec::new();
        for i in 0..40 {
            s.push(sample(i, 180));
        }
        for i in 40..80 {
            s.push(sample(i, 100));
        }
        let avg = moving_average(&s, 9);
        let bits = bits_from_moving_average(&avg, 40, BitConvention::MissIsOne);
        assert_eq!(bits, vec![true, false]);
    }
}
