//! # lru-channel — timing channels through cache LRU states
//!
//! The core library of the reproduction of *"Leaking Information
//! Through Cache LRU States"* (Wenjie Xiong & Jakub Szefer, HPCA
//! 2020). Every access to a cache set — **hit or miss** — updates the
//! set's replacement state; a later replacement decision reveals it.
//! This crate implements the paper's two channel protocols and
//! everything needed to run and evaluate them on the simulated
//! platforms of [`cache_sim`]/[`exec_sim`]:
//!
//! * [`params`] — channel parameters (`d`, `Ts`, `Tr`, target set)
//!   and [`params::Platform`] bundles (CPU profile + timer model).
//! * [`setup`] — address-space wiring: building `line 0..N` for a
//!   target set, with ([`setup::alg1`]) and without
//!   ([`setup::alg2`]) shared memory.
//! * [`protocol`] — the sender and receiver [`exec_sim::Program`]s
//!   implementing Algorithms 1/2 inside the Algorithm 3 covert
//!   framing.
//! * [`covert`] — end-to-end covert-channel runs under
//!   hyper-threaded and time-sliced sharing, returning the
//!   receiver's observation trace.
//! * [`decode`] — turning latency traces back into bits: threshold
//!   classification, per-window majority vote, moving averages
//!   (AMD), percent-of-ones (time-sliced).
//! * [`edit_distance`] — Wagner–Fischer edit distance, the paper's
//!   error metric (§V-A).
//! * [`multiset`] — several target sets driven in parallel (§IV:
//!   "several sets can be used in parallel to increase the
//!   transmission rate").
//! * [`noise`] — deterministic environmental interference: the
//!   [`noise::NoiseModel`] spec (random eviction, periodic co-runner
//!   bursts, Bernoulli per-observation touches) with a scheduled
//!   [`exec_sim::program::Program`] face for covert runs and an
//!   access-stream face for [`cache_sim::stream`].
//! * [`plru_study`] — the Table I eviction-probability study of
//!   Tree-PLRU / Bit-PLRU vs true LRU.
//! * [`analysis`] — histograms and trace summaries (Figs. 3, 5, 13).
//! * [`trials`] — deterministic parallel trial driver: independent
//!   simulator runs fan out over all host cores with per-trial seeds,
//!   bit-identical to sequential execution.
//! * [`lockstep`] — batched execution of eligible covert trials: K
//!   seeds of one scenario shape step together over the lane-major
//!   [`cache_sim::batch::BatchCache`], bit-identical to the scalar
//!   path but without per-trial machine construction or dynamic
//!   dispatch.
//!
//! ## Quickstart
//!
//! ```
//! use lru_channel::covert::{CovertConfig, Sharing, Variant};
//! use lru_channel::params::{ChannelParams, Platform};
//! use lru_channel::decode;
//!
//! // Send 0-1-0-1... over the shared-memory LRU channel on the
//! // simulated Xeon E5-2690, hyper-threaded (paper Fig. 5 top).
//! let platform = Platform::e5_2690();
//! let params = ChannelParams { d: 8, target_set: 0, ts: 6_000, tr: 600 };
//! let message: Vec<bool> = (0..16).map(|i| i % 2 == 1).collect();
//! let run = CovertConfig {
//!     platform,
//!     params,
//!     variant: Variant::SharedMemory,
//!     sharing: Sharing::HyperThreaded,
//!     message: message.clone(),
//!     seed: 42,
//! }
//! .run()?;
//! let bits = decode::bits_by_window(
//!     &run.samples,
//!     params.ts,
//!     run.hit_threshold,
//!     decode::BitConvention::HitIsOne,
//! );
//! let err = lru_channel::edit_distance::error_rate(&message, &bits[..message.len()]);
//! assert!(err < 0.2, "channel should mostly work, got error rate {err}");
//! # Ok::<(), lru_channel::params::ParamError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod covert;
pub mod decode;
pub mod edit_distance;
pub mod lockstep;
pub mod multiset;
pub mod noise;
pub mod params;
pub mod plru_study;
pub mod protocol;
pub mod setup;
pub mod trials;

pub use covert::{CovertConfig, CovertRun, Sharing, Variant};
pub use noise::{NoiseError, NoiseModel};
pub use params::{ChannelParams, ParamError, Platform};
pub use protocol::{LruReceiver, LruSender, Sample};
