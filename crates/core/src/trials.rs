//! Deterministic parallel trial driver.
//!
//! Every figure and table of the paper is an aggregate over many
//! *independent* simulator runs — percent-of-ones grids (Figs. 6, 8,
//! 15), error-rate sweeps (Fig. 4), eviction-probability studies
//! (Table I). Each trial builds its own [`exec_sim::machine::Machine`]
//! from an explicit seed, so trials share no state and can run on as
//! many cores as the host offers — *provided the results do not
//! depend on execution order*.
//!
//! [`run_trials`] guarantees exactly that: trial `i` always receives
//! index `i` (derive its seed with [`derive_seed`]), and the result
//! vector is ordered by index regardless of which worker finished
//! first. Parallel and sequential execution are therefore
//! bit-identical — the `trial_driver_determinism` suite asserts it —
//! and the two-phase "compute independently, then combine in a fixed
//! order" shape keeps it so even when callers fold the results.
//!
//! The worker count defaults to the host's available parallelism,
//! clamped by the `LRU_LEAK_THREADS` environment variable
//! (`LRU_LEAK_THREADS=1` forces sequential execution, e.g. for
//! debugging or timing baselines). The environment is consulted once
//! and cached; embedders such as the `lru-leak` CLI can override the
//! count explicitly with [`set_worker_count`] instead of mutating
//! the environment.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// Derives the seed of trial `index` from the experiment's master
/// seed (SplitMix64 finalizer over the pair — consecutive indices
/// yield statistically independent streams).
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Explicit worker-count override (0 = none). Takes precedence over
/// both the environment and the hardware default.
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached parse of `LRU_LEAK_THREADS`, read from the environment at
/// most once per process.
static ENV_WORKERS: OnceLock<Option<usize>> = OnceLock::new();

/// Explicitly pins the worker count used by [`run_trials`]
/// (`1` = sequential). Passing `0` clears the override, falling back
/// to `LRU_LEAK_THREADS` / the hardware default. This is how the
/// `lru-leak` CLI implements `--threads` — no environment mutation.
pub fn set_worker_count(workers: usize) {
    WORKER_OVERRIDE.store(workers, Ordering::SeqCst);
}

/// Worker count used by [`run_trials`]: an explicit
/// [`set_worker_count`] override if one is set, else available
/// parallelism clamped by `LRU_LEAK_THREADS` (parsed once, then
/// cached — later changes to the environment are not observed).
pub fn worker_count() -> usize {
    let forced = WORKER_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    let env = ENV_WORKERS.get_or_init(|| {
        std::env::var("LRU_LEAK_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    });
    env.unwrap_or_else(|| {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs `n` independent trials of `f` and returns their results in
/// index order.
///
/// `f(i)` must depend only on `i` (derive randomness via
/// [`derive_seed`]); then the output is identical whether the trials
/// run on one thread or many. Workers take indices round-robin, so
/// long and short trials interleave evenly.
pub fn run_trials<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_trials_on(worker_count(), n, f)
}

/// [`run_trials`] on exactly `workers` threads (1 = fully
/// sequential, no threads spawned).
pub fn run_trials_on<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let f = &f;
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                let mut i = w;
                while i < n {
                    out.push((i, f(i)));
                    i += workers;
                }
                out
            }));
        }
        for h in handles {
            for (i, v) in h.join().expect("trial worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = run_trials_on(4, 37, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = |i: usize| derive_seed(0xabcd, i as u64);
        let seq = run_trials_on(1, 100, f);
        let par = run_trials_on(8, 100, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_and_one_trials() {
        assert!(run_trials_on(4, 0, |i| i).is_empty());
        assert_eq!(run_trials_on(4, 1, |i| i), vec![0]);
    }

    #[test]
    fn derive_seed_spreads_indices() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // A flipped master bit changes every trial's seed.
        assert_ne!(derive_seed(1, 7), derive_seed(3, 7));
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn explicit_override_beats_environment() {
        // Tests share the process: restore the default afterwards.
        set_worker_count(3);
        assert_eq!(worker_count(), 3);
        set_worker_count(0);
        assert!(worker_count() >= 1);
    }
}
