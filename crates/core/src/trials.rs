//! Deterministic parallel trial driver.
//!
//! Every figure and table of the paper is an aggregate over many
//! *independent* simulator runs — percent-of-ones grids (Figs. 6, 8,
//! 15), error-rate sweeps (Fig. 4), eviction-probability studies
//! (Table I). Each trial builds its own [`exec_sim::machine::Machine`]
//! from an explicit seed, so trials share no state and can run on as
//! many cores as the host offers — *provided the results do not
//! depend on execution order*.
//!
//! Two entry points share one scheduler:
//!
//! * [`run_trials`] maps `f` over `0..n` and returns the results in
//!   index order (memory `O(n)` — you asked for every result).
//! * [`run_trials_fold`] *streams*: trial results are folded into
//!   per-chunk accumulators as they are produced and the chunk
//!   accumulators are combined **in fixed chunk order**, so live
//!   memory stays `O(workers × chunk)` no matter how many trials run.
//!   Million-trial sweeps reduce to a few counters.
//!
//! The scheduler claims *chunks* of consecutive indices from a shared
//! atomic counter — work-stealing in its simplest form. A worker that
//! drew a long trial simply claims fewer chunks; nothing piles up on
//! a statically chosen thread the way it did under the old
//! round-robin split. Determinism survives because scheduling only
//! decides *who* computes a chunk, never *how* results combine: the
//! chunk layout is a function of `n` alone ([`fold_chunk_size`]), each
//! chunk folds its indices in ascending order, and chunk accumulators
//! merge in ascending chunk order. Sequential execution uses the
//! *same* chunk/merge structure, so parallel and sequential runs are
//! bit-identical even for non-associative (floating-point)
//! reductions — the `trial_driver_determinism` suite asserts it.
//!
//! The worker count defaults to the host's available parallelism,
//! clamped by the `LRU_LEAK_THREADS` environment variable
//! (`LRU_LEAK_THREADS=1` forces sequential execution, e.g. for
//! debugging or timing baselines). The environment is consulted once
//! and cached; embedders such as the `lru-leak` CLI can override the
//! count explicitly with [`set_worker_count`] instead of mutating
//! the environment (`--threads` therefore beats `LRU_LEAK_THREADS`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

/// Derives the seed of trial `index` from the experiment's master
/// seed (SplitMix64 finalizer over the pair — consecutive indices
/// yield statistically independent streams).
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Explicit worker-count override (0 = none). Takes precedence over
/// both the environment and the hardware default.
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached parse of `LRU_LEAK_THREADS`, read from the environment at
/// most once per process.
static ENV_WORKERS: OnceLock<Option<usize>> = OnceLock::new();

/// Explicitly pins the worker count used by [`run_trials`]
/// (`1` = sequential). Passing `0` clears the override, falling back
/// to `LRU_LEAK_THREADS` / the hardware default. This is how the
/// `lru-leak` CLI implements `--threads` — no environment mutation.
pub fn set_worker_count(workers: usize) {
    WORKER_OVERRIDE.store(workers, Ordering::SeqCst);
}

/// Worker count used by [`run_trials`]: an explicit
/// [`set_worker_count`] override if one is set, else available
/// parallelism clamped by `LRU_LEAK_THREADS` (parsed once, then
/// cached — later changes to the environment are not observed).
pub fn worker_count() -> usize {
    let forced = WORKER_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    let env = ENV_WORKERS.get_or_init(|| {
        std::env::var("LRU_LEAK_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    });
    env.unwrap_or_else(|| {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Chunk size the schedulers use for `n` trials.
///
/// A function of `n` **only** — never the worker count — so the
/// chunk/merge structure (and with it the floating-point combination
/// order of [`run_trials_fold`]) is identical for any `--threads`
/// value. Small sweeps get chunk 1 (every index steals
/// independently); large sweeps cap at 64 indices per chunk so the
/// claim counter is touched ~once per 64 trials while plenty of
/// chunks remain for balancing.
pub fn fold_chunk_size(n: usize) -> usize {
    (n / 64).clamp(1, 64)
}

/// How many completed-but-unmerged chunk accumulators may exist
/// before workers pause claiming (per worker). Bounds live memory at
/// `(PENDING_PER_WORKER + 1) × workers` accumulators plus one
/// in-flight chunk per worker.
const PENDING_PER_WORKER: usize = 2;

/// Runs `n` independent trials of `f` and returns their results in
/// index order.
///
/// `f(i)` must depend only on `i` (derive randomness via
/// [`derive_seed`]); then the output is identical whether the trials
/// run on one thread or many. Workers claim chunks of indices from a
/// shared counter, so long and short trials balance dynamically.
pub fn run_trials<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_trials_on(worker_count(), n, f)
}

/// [`run_trials`] on exactly `workers` threads (1 = fully
/// sequential, no threads spawned).
pub fn run_trials_on<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // Collecting materializes all n results anyway, so the streaming
    // path's pending-buffer backpressure would cap nothing — run
    // unbounded and let workers race past a slow frontier chunk.
    fold_impl(
        workers,
        n,
        usize::MAX,
        f,
        Vec::new,
        |acc, _i, v| acc.push(v),
        |acc, mut part| acc.append(&mut part),
    )
}

/// Streams `n` independent trials through a chunked fold:
/// [`run_trials_fold_on`] with the default [`worker_count`].
pub fn run_trials_fold<T, A, F, I, Fo, M>(n: usize, trial: F, init: I, fold: Fo, merge: M) -> A
where
    T: Send,
    A: Send,
    F: Fn(usize) -> T + Sync,
    I: Fn() -> A + Sync,
    Fo: Fn(&mut A, usize, T) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    run_trials_fold_on(worker_count(), n, trial, init, fold, merge)
}

/// The streaming reduce pipeline: runs `trial(i)` for `i in 0..n` on
/// `workers` threads and folds the results into one accumulator
/// without ever materializing all `n` of them.
///
/// The index range is cut into chunks of [`fold_chunk_size`]`(n)`
/// consecutive indices. Workers claim chunks from an atomic counter;
/// each claimed chunk folds its trials **in ascending index order**
/// into a fresh `init()` accumulator, and finished chunk accumulators
/// are `merge`d into the global one **in ascending chunk order**
/// (out-of-order chunks wait in a bounded buffer; claiming pauses
/// when the buffer is full). Live memory is therefore
/// `O(workers × chunk)` trial results plus `O(workers)` accumulators,
/// regardless of `n`.
///
/// Sequential execution (`workers == 1`) walks the *same*
/// chunk/merge structure, so the result is bit-identical for every
/// worker count even when `merge` is only left-to-right deterministic
/// (floating-point sums), not truly associative.
pub fn run_trials_fold_on<T, A, F, I, Fo, M>(
    workers: usize,
    n: usize,
    trial: F,
    init: I,
    fold: Fo,
    merge: M,
) -> A
where
    T: Send,
    A: Send,
    F: Fn(usize) -> T + Sync,
    I: Fn() -> A + Sync,
    Fo: Fn(&mut A, usize, T) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    let cap = PENDING_PER_WORKER * workers.max(1);
    fold_impl(workers, n, cap, trial, init, fold, merge)
}

/// Shared scheduler body: `pending_cap` bounds the
/// completed-but-unmerged buffer (streaming callers) or is
/// `usize::MAX` to let workers race past a slow frontier chunk
/// (collecting callers, whose output is `O(n)` regardless).
fn fold_impl<T, A, F, I, Fo, M>(
    workers: usize,
    n: usize,
    pending_cap: usize,
    trial: F,
    init: I,
    fold: Fo,
    merge: M,
) -> A
where
    T: Send,
    A: Send,
    F: Fn(usize) -> T + Sync,
    I: Fn() -> A + Sync,
    Fo: Fn(&mut A, usize, T) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    let chunk = fold_chunk_size(n);
    let chunks = n.div_ceil(chunk);
    let workers = workers.max(1).min(chunks.max(1));
    let run_chunk = |c: usize| {
        let mut part = init();
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        for i in lo..hi {
            fold(&mut part, i, trial(i));
        }
        part
    };
    if workers <= 1 || chunks <= 1 {
        let mut acc = init();
        for c in 0..chunks {
            merge(&mut acc, run_chunk(c));
        }
        return acc;
    }

    /// In-order merge frontier shared by the workers.
    struct FoldState<A> {
        /// Next chunk index the global accumulator is waiting for.
        next_merge: usize,
        /// Finished chunks that ran ahead of the frontier.
        pending: BTreeMap<usize, A>,
        /// The global accumulator (`None` only while a worker merges).
        acc: Option<A>,
    }

    let claim = AtomicUsize::new(0);
    let state = Mutex::new(FoldState {
        next_merge: 0,
        pending: BTreeMap::new(),
        acc: Some(init()),
    });
    let drained = Condvar::new();
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                // Backpressure: don't run further ahead of the merge
                // frontier than the pending buffer allows.
                {
                    let mut st = state.lock().expect("fold state poisoned");
                    while st.pending.len() >= pending_cap {
                        st = drained.wait(st).expect("fold state poisoned");
                    }
                }
                let c = claim.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    return;
                }
                let part = run_chunk(c);
                let mut st = state.lock().expect("fold state poisoned");
                st.pending.insert(c, part);
                // Merge the ready in-order prefix; strictly ascending
                // chunk order keeps the reduction deterministic.
                let mut acc = st.acc.take().expect("accumulator present");
                loop {
                    let frontier = st.next_merge;
                    let Some(ready) = st.pending.remove(&frontier) else {
                        break;
                    };
                    merge(&mut acc, ready);
                    st.next_merge += 1;
                }
                st.acc = Some(acc);
                drop(st);
                drained.notify_all();
            }));
        }
        for h in handles {
            h.join().expect("trial worker panicked");
        }
    });
    let mut st = state.into_inner().expect("fold state poisoned");
    debug_assert_eq!(st.next_merge, chunks, "every chunk merged");
    st.acc.take().expect("accumulator present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = run_trials_on(4, 37, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = |i: usize| derive_seed(0xabcd, i as u64);
        let seq = run_trials_on(1, 100, f);
        let par = run_trials_on(8, 100, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_and_one_trials() {
        assert!(run_trials_on(4, 0, |i| i).is_empty());
        assert_eq!(run_trials_on(4, 1, |i| i), vec![0]);
    }

    #[test]
    fn derive_seed_spreads_indices() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // A flipped master bit changes every trial's seed.
        assert_ne!(derive_seed(1, 7), derive_seed(3, 7));
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn chunk_size_depends_on_n_only() {
        assert_eq!(fold_chunk_size(0), 1);
        assert_eq!(fold_chunk_size(63), 1);
        assert_eq!(fold_chunk_size(256), 4);
        assert_eq!(fold_chunk_size(1_000_000), 64);
    }

    #[test]
    fn fold_streams_a_float_sum_identically_on_any_worker_count() {
        // A deliberately non-associative reduction: floating-point
        // sums only reproduce if the combination order is fixed.
        let sum_on = |workers: usize| {
            run_trials_fold_on(
                workers,
                10_000,
                |i| (derive_seed(0xf0, i as u64) % 1_000) as f64 / 7.0,
                || 0.0f64,
                |acc, _i, x| *acc += x,
                |acc, part| *acc += part,
            )
        };
        let seq = sum_on(1);
        for workers in [2, 3, 4, 8] {
            assert_eq!(
                seq.to_bits(),
                sum_on(workers).to_bits(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn fold_handles_zero_and_one_trials() {
        let count = |n: usize| {
            run_trials_fold_on(
                4,
                n,
                |i| i,
                || 0usize,
                |acc, _i, _v| *acc += 1,
                |acc, part| *acc += part,
            )
        };
        assert_eq!(count(0), 0);
        assert_eq!(count(1), 1);
    }

    #[test]
    fn fold_live_accumulators_stay_bounded() {
        use std::sync::atomic::AtomicIsize;
        // init() births an accumulator, merge() consumes one: the
        // difference is how many are alive. The backpressured
        // scheduler must keep that number O(workers), far below the
        // chunk count of a large sweep.
        let live = AtomicIsize::new(0);
        let max_live = AtomicIsize::new(0);
        let workers = 4;
        let n = 40_000; // chunk 64 → 625 chunks
        let total: u64 = run_trials_fold_on(
            workers,
            n,
            |i| i as u64,
            || {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                max_live.fetch_max(now, Ordering::SeqCst);
                0u64
            },
            |acc, _i, v| *acc += v,
            |acc, part| {
                live.fetch_sub(1, Ordering::SeqCst);
                *acc += part;
            },
        );
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
        let bound = (1 + PENDING_PER_WORKER * workers + 2 * workers) as isize;
        let seen = max_live.load(Ordering::SeqCst);
        assert!(
            seen <= bound,
            "live accumulators {seen} exceed the O(workers) bound {bound}"
        );
    }

    #[test]
    fn skewed_trial_lengths_still_give_index_ordered_results() {
        // Trial 0 is ~1000× the others: under the old round-robin
        // split one worker owned it plus every 4th index; chunked
        // claiming lets the other workers drain the rest. Either way
        // the output must stay index-ordered and bit-identical.
        let f = |i: usize| {
            let spins = if i == 0 { 200_000 } else { 200 };
            let mut acc = derive_seed(0xbeef, i as u64);
            for _ in 0..spins {
                acc = acc.rotate_left(9) ^ acc.wrapping_mul(0x2545_f491_4f6c_dd1d);
            }
            (i, acc)
        };
        let seq = run_trials_on(1, 200, f);
        let par = run_trials_on(4, 200, f);
        assert_eq!(seq, par);
        assert!(par.iter().enumerate().all(|(i, &(j, _))| i == j));
    }

    #[test]
    fn explicit_override_beats_environment() {
        // Tests share the process: restore the default afterwards.
        set_worker_count(3);
        assert_eq!(worker_count(), 3);
        set_worker_count(0);
        assert!(worker_count() >= 1);
    }
}
