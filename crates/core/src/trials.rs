//! Deterministic parallel trial driver.
//!
//! Every figure and table of the paper is an aggregate over many
//! *independent* simulator runs — percent-of-ones grids (Figs. 6, 8,
//! 15), error-rate sweeps (Fig. 4), eviction-probability studies
//! (Table I). Each trial builds its own [`exec_sim::machine::Machine`]
//! from an explicit seed, so trials share no state and can run on as
//! many cores as the host offers — *provided the results do not
//! depend on execution order*.
//!
//! Two entry points share one scheduler:
//!
//! * [`run_trials`] maps `f` over `0..n` and returns the results in
//!   index order (memory `O(n)` — you asked for every result).
//! * [`run_trials_fold`] *streams*: trial results are folded into
//!   per-chunk accumulators as they are produced and the chunk
//!   accumulators are combined **in fixed chunk order**, so live
//!   memory stays `O(workers × chunk)` no matter how many trials run.
//!   Million-trial sweeps reduce to a few counters.
//!
//! The scheduler claims *chunks* of consecutive indices and hands
//! finished chunk accumulators over through a **two-phase wave**: in
//! the compute phase, workers claim the chunks of the current wave (a
//! window of consecutive chunks) and fill one pre-allocated slot per
//! chunk; when the wave's last chunk lands, that worker runs the merge
//! phase — draining the slots in ascending chunk order into the global
//! accumulator — then opens the next wave. There is no queueing and no
//! bounded-buffer backpressure: a wave *is* the buffer, its slots are
//! written exactly once, and the wave width caps live memory at
//! `O(workers × chunk)` regardless of `n`. Work-stealing survives
//! inside each wave (a worker that drew a long trial simply claims
//! fewer of the wave's chunks). Determinism survives because
//! scheduling only decides *who* computes a chunk, never *how* results
//! combine: the chunk layout is a function of `n` alone
//! ([`fold_chunk_size`]), each chunk folds its indices in ascending
//! order, and the merge phase drains slots in ascending chunk order.
//! Sequential execution uses the *same* chunk/merge structure, so
//! parallel and sequential runs are bit-identical even for
//! non-associative (floating-point) reductions — the
//! `trial_driver_determinism` suite asserts it.
//!
//! The worker count defaults to the host's available parallelism,
//! clamped by the `LRU_LEAK_THREADS` environment variable
//! (`LRU_LEAK_THREADS=1` forces sequential execution, e.g. for
//! debugging or timing baselines). The environment is consulted once
//! and cached; embedders such as the `lru-leak` CLI can override the
//! count explicitly with [`set_worker_count`] instead of mutating
//! the environment (`--threads` therefore beats `LRU_LEAK_THREADS`).
//!
//! ## Resilience
//!
//! The scheduler is *panic-isolated* and *cancellable* at chunk
//! granularity. Every claimed chunk runs inside
//! [`std::panic::catch_unwind`]; a chunk that panics is deterministically
//! re-run **once** from a fresh accumulator (the chunk/merge structure
//! makes the re-run bit-identical, so a transient fault leaves no trace
//! in the result), and a chunk that panics twice surfaces as a
//! structured [`FoldError::ChunkPanicked`] instead of aborting the
//! process. A dying worker can never deadlock the wave handoff:
//! failure is recorded in the shared fold state, every condvar waiter is
//! woken, and the remaining workers drain (drop their in-flight
//! accumulators) instead of waiting on a wave that will never
//! complete. Mutex poisoning is likewise drained (`PoisonError::into_inner`)
//! rather than cascaded.
//!
//! Cancellation is cooperative: a [`CancelToken`] (optionally carrying a
//! deadline) is checked **at chunk boundaries** — between chunks, never
//! inside one — so a cancelled run stops within one chunk's worth of
//! work and returns [`FoldError::Cancelled`]. The control surface is
//! bundled in a [`RunCtrl`] passed to [`run_trials_fold_ctrl`]; the
//! legacy entry points ([`run_trials`], [`run_trials_fold`]) use a
//! default `RunCtrl` (never cancelled) and re-raise a persistent chunk
//! panic, preserving their historical panicking contract.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Derives the seed of trial `index` from the experiment's master
/// seed (SplitMix64 finalizer over the pair — consecutive indices
/// yield statistically independent streams).
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Explicit worker-count override (0 = none). Takes precedence over
/// both the environment and the hardware default.
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached parse of `LRU_LEAK_THREADS`, read from the environment at
/// most once per process.
static ENV_WORKERS: OnceLock<Option<usize>> = OnceLock::new();

/// Explicitly pins the worker count used by [`run_trials`]
/// (`1` = sequential). Passing `0` clears the override, falling back
/// to `LRU_LEAK_THREADS` / the hardware default. This is how the
/// `lru-leak` CLI implements `--threads` — no environment mutation.
pub fn set_worker_count(workers: usize) {
    WORKER_OVERRIDE.store(workers, Ordering::SeqCst);
}

/// Worker count used by [`run_trials`]: an explicit
/// [`set_worker_count`] override if one is set, else available
/// parallelism clamped by `LRU_LEAK_THREADS` (parsed once, then
/// cached — later changes to the environment are not observed).
pub fn worker_count() -> usize {
    let forced = WORKER_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    let env = ENV_WORKERS.get_or_init(|| {
        std::env::var("LRU_LEAK_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    });
    env.unwrap_or_else(|| {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Chunk size the schedulers use for `n` trials.
///
/// A function of `n` **only** — never the worker count — so the
/// chunk/merge structure (and with it the floating-point combination
/// order of [`run_trials_fold`]) is identical for any `--threads`
/// value. Small sweeps get chunk 1 (every index steals
/// independently); large sweeps cap at 64 indices per chunk so the
/// claim counter is touched ~once per 64 trials while plenty of
/// chunks remain for balancing.
pub fn fold_chunk_size(n: usize) -> usize {
    (n / 64).clamp(1, 64)
}

/// Wave width per worker: how many chunk slots one two-phase wave
/// holds for each worker. Bounds live memory at
/// `PENDING_PER_WORKER × workers` slot accumulators plus one
/// in-flight chunk per worker plus the global accumulator.
const PENDING_PER_WORKER: usize = 2;

/// Shared cancellation state. A token is cancelled when its own flag
/// is set, its own deadline has passed, or any ancestor token is
/// cancelled.
#[derive(Debug, Default)]
struct CancelInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<CancelInner>>,
}

impl CancelInner {
    fn cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
            || self.parent.as_ref().is_some_and(|p| p.cancelled())
    }

    fn timed_out(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
            || self.parent.as_ref().is_some_and(|p| p.timed_out())
    }
}

/// A cooperative cancellation handle, checked by the schedulers at
/// chunk boundaries (never inside a chunk, so a fired token stops a
/// run within one chunk's worth of work).
///
/// Tokens are cheap `Arc` handles: clone one into whoever should be
/// able to [`CancelToken::cancel`] the run. A token can carry a
/// deadline ([`CancelToken::with_timeout`]), after which it reports
/// cancelled on its own; [`CancelToken::child_with_timeout`] derives
/// a deadline-bearing child that also honours its parent, which is
/// how a batch applies one external cancel handle *and* a per-job
/// timeout.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A fresh token, never cancelled until someone calls
    /// [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that auto-cancels once `timeout` has elapsed.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                deadline: Instant::now().checked_add(timeout),
                ..CancelInner::default()
            }),
        }
    }

    /// A child token that auto-cancels once `timeout` has elapsed
    /// *and* reports cancelled whenever `self` does. Cancelling the
    /// child does not cancel the parent.
    pub fn child_with_timeout(&self, timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                deadline: Instant::now().checked_add(timeout),
                parent: Some(Arc::clone(&self.inner)),
                ..CancelInner::default()
            }),
        }
    }

    /// Requests cancellation. Idempotent; takes effect at the next
    /// chunk boundary of any run holding this token (or a child).
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the token has fired (explicit cancel, own deadline, or
    /// a cancelled ancestor).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled()
    }

    /// Whether a deadline (own or ancestral) has expired —
    /// distinguishes a timeout from an explicit cancel.
    pub fn timed_out(&self) -> bool {
        self.inner.timed_out()
    }
}

/// Control surface for one scheduled run: the [`CancelToken`] the
/// workers poll at chunk boundaries, an optional per-run worker-count
/// override, plus a retry counter the driver increments every time a
/// panicked chunk is deterministically re-run.
#[derive(Debug, Default)]
pub struct RunCtrl {
    cancel: CancelToken,
    workers: Option<usize>,
    retried: AtomicUsize,
}

impl RunCtrl {
    /// A control block that never cancels.
    pub fn new() -> RunCtrl {
        RunCtrl::default()
    }

    /// A control block driven by an existing token.
    pub fn with_cancel(cancel: CancelToken) -> RunCtrl {
        RunCtrl {
            cancel,
            ..RunCtrl::default()
        }
    }

    /// Pins this run (and only this run) to `workers` threads,
    /// overriding the process-global [`worker_count`] without
    /// touching it. This is how a long-lived process (the `lru-leak`
    /// server) sizes worker pools per job: the global
    /// [`set_worker_count`] override sticks for the life of the
    /// process, so the first request's `--threads` would otherwise
    /// leak into every later job. `0` clears the override. Results
    /// are bit-identical for any value — the chunk/merge structure
    /// is a function of the trial count alone.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> RunCtrl {
        self.workers = (workers > 0).then_some(workers);
        self
    }

    /// The worker count this run uses: the per-run override if one
    /// is set, else the process-global [`worker_count`].
    pub fn workers(&self) -> usize {
        self.workers.unwrap_or_else(worker_count)
    }

    /// The token workers poll.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// How many chunk retries the run performed so far (a retry is a
    /// caught panic followed by a deterministic re-run; a fault-free
    /// run reports 0).
    pub fn retried_chunks(&self) -> usize {
        self.retried.load(Ordering::Relaxed)
    }

    fn note_retry(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed);
    }
}

/// Why a controlled fold stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FoldError {
    /// The [`CancelToken`] fired (explicit cancel or deadline) and a
    /// worker observed it at a chunk boundary before every chunk had
    /// merged.
    Cancelled,
    /// A chunk panicked on its first run **and** on its deterministic
    /// retry; the run was drained without deadlocking and the panic
    /// surfaced here instead of aborting the process.
    ChunkPanicked {
        /// Index of the failed chunk (chunks are
        /// [`fold_chunk_size`]`(n)` consecutive trial indices).
        chunk: usize,
        /// Half-open `[lo, hi)` range of trial indices the chunk
        /// covers.
        trial_range: (usize, usize),
        /// The panic payload, stringified (`&str`/`String` payloads
        /// verbatim, anything else a placeholder).
        payload: String,
    },
}

impl std::fmt::Display for FoldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoldError::Cancelled => write!(f, "cancelled at a chunk boundary"),
            FoldError::ChunkPanicked {
                chunk,
                trial_range: (lo, hi),
                payload,
            } => write!(
                f,
                "chunk {chunk} (trials {lo}..{hi}) panicked twice (original + retry): {payload}"
            ),
        }
    }
}

impl std::error::Error for FoldError {}

/// Stringifies a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Re-raises a [`FoldError`] for the legacy (panicking) entry points:
/// a persistent chunk panic becomes a plain panic again, carrying the
/// stringified payload. The default [`RunCtrl`] never cancels, so
/// [`FoldError::Cancelled`] cannot reach here.
fn resurface(e: FoldError) -> ! {
    match e {
        FoldError::Cancelled => unreachable!("default RunCtrl never cancels"),
        FoldError::ChunkPanicked { payload, .. } => panic::panic_any(payload),
    }
}

/// Drains a possibly-poisoned lock: a panic elsewhere must not
/// cascade into every thread that later touches the mutex (the fold
/// state stays consistent because chunk panics are caught *before*
/// the lock is taken and merge panics are caught while the
/// accumulator is checked out).
fn drain_lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `n` independent trials of `f` and returns their results in
/// index order.
///
/// `f(i)` must depend only on `i` (derive randomness via
/// [`derive_seed`]); then the output is identical whether the trials
/// run on one thread or many. Workers claim chunks of indices from a
/// shared counter, so long and short trials balance dynamically.
pub fn run_trials<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_trials_on(worker_count(), n, f)
}

/// [`run_trials`] on exactly `workers` threads (1 = fully
/// sequential, no threads spawned).
pub fn run_trials_on<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // Collecting materializes all n results anyway, so a narrow wave
    // would cap nothing — run one wave over every chunk and let
    // workers race past a slow chunk freely.
    let cfg = FoldCfg {
        workers,
        n,
        pending_cap: usize::MAX,
    };
    fold_impl(
        cfg,
        &RunCtrl::new(),
        f,
        Vec::new,
        |acc, _i, v| acc.push(v),
        |acc, mut part| acc.append(&mut part),
    )
    .unwrap_or_else(|e| resurface(e))
}

/// Streams `n` independent trials through a chunked fold:
/// [`run_trials_fold_on`] with the default [`worker_count`].
pub fn run_trials_fold<T, A, F, I, Fo, M>(n: usize, trial: F, init: I, fold: Fo, merge: M) -> A
where
    T: Send,
    A: Send,
    F: Fn(usize) -> T + Sync,
    I: Fn() -> A + Sync,
    Fo: Fn(&mut A, usize, T) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    run_trials_fold_on(worker_count(), n, trial, init, fold, merge)
}

/// The streaming reduce pipeline: runs `trial(i)` for `i in 0..n` on
/// `workers` threads and folds the results into one accumulator
/// without ever materializing all `n` of them.
///
/// The index range is cut into chunks of [`fold_chunk_size`]`(n)`
/// consecutive indices and processed in two-phase *waves*: workers
/// claim the current wave's chunks, fold each chunk's trials **in
/// ascending index order** into a fresh `init()` accumulator, and park
/// it in the chunk's pre-assigned slot (compute phase); the worker
/// that fills the wave's last slot drains every slot **in ascending
/// chunk order** into the global accumulator and opens the next wave
/// (merge phase). No queue, no backpressure waits — the wave is the
/// buffer. Live memory is therefore `O(workers × chunk)` trial
/// results plus `O(workers)` accumulators, regardless of `n`.
///
/// Sequential execution (`workers == 1`) walks the *same*
/// chunk/merge structure, so the result is bit-identical for every
/// worker count even when `merge` is only left-to-right deterministic
/// (floating-point sums), not truly associative.
pub fn run_trials_fold_on<T, A, F, I, Fo, M>(
    workers: usize,
    n: usize,
    trial: F,
    init: I,
    fold: Fo,
    merge: M,
) -> A
where
    T: Send,
    A: Send,
    F: Fn(usize) -> T + Sync,
    I: Fn() -> A + Sync,
    Fo: Fn(&mut A, usize, T) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    let cfg = FoldCfg {
        workers,
        n,
        pending_cap: PENDING_PER_WORKER * workers.max(1),
    };
    fold_impl(cfg, &RunCtrl::new(), trial, init, fold, merge).unwrap_or_else(|e| resurface(e))
}

/// [`run_trials_fold_on`] under an explicit [`RunCtrl`]: the
/// resilient entry point the job engine uses.
///
/// Identical chunk/merge structure (and therefore bit-identical
/// results on success), but instead of panicking the driver
///
/// * checks `ctrl`'s [`CancelToken`] at every chunk boundary and
///   returns [`FoldError::Cancelled`] once it fires;
/// * catches a panicking chunk, re-runs it **once** from a fresh
///   accumulator (`ctrl` counts the retry), and only if it panics
///   again returns [`FoldError::ChunkPanicked`] — after draining the
///   other workers, so the bounded merge buffer never deadlocks on a
///   dead worker.
///
/// # Errors
///
/// [`FoldError::Cancelled`] on cooperative cancellation,
/// [`FoldError::ChunkPanicked`] when a chunk fails twice.
pub fn run_trials_fold_ctrl<T, A, F, I, Fo, M>(
    workers: usize,
    n: usize,
    ctrl: &RunCtrl,
    trial: F,
    init: I,
    fold: Fo,
    merge: M,
) -> Result<A, FoldError>
where
    T: Send,
    A: Send,
    F: Fn(usize) -> T + Sync,
    I: Fn() -> A + Sync,
    Fo: Fn(&mut A, usize, T) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    let cfg = FoldCfg {
        workers,
        n,
        pending_cap: PENDING_PER_WORKER * workers.max(1),
    };
    fold_impl(cfg, ctrl, trial, init, fold, merge)
}

/// The lockstep fold driver: [`run_trials_fold_ctrl`] with the
/// per-index trial function replaced by a **per-chunk batch
/// function** — `batch(lo, hi)` produces the results of trials
/// `lo..hi` in one call, in ascending index order.
///
/// This is the scheduling half of lockstep batched simulation: the
/// chunk layout ([`fold_chunk_size`]), fold order and merge order are
/// *identical* to [`run_trials_fold_ctrl`], so as long as
/// `batch(lo, hi)` returns exactly `[trial(lo), …, trial(hi-1)]`, the
/// accumulated result is bit-identical to the per-index driver for
/// any worker count — while the batch implementation amortizes setup
/// (one allocation, one warmup) across the whole chunk.
///
/// Resilience is inherited unchanged, at the same granularity: the
/// whole `batch` call runs inside the chunk's `catch_unwind`, so a
/// panicking lane takes down one chunk attempt, which is retried
/// deterministically once before surfacing as
/// [`FoldError::ChunkPanicked`]; the [`CancelToken`] is polled at
/// chunk — here, batch — boundaries.
///
/// # Panics
///
/// Panics if `batch` returns a result slice of the wrong length.
///
/// # Errors
///
/// [`FoldError::Cancelled`] on cooperative cancellation,
/// [`FoldError::ChunkPanicked`] when a batch fails twice.
pub fn run_trials_lockstep<T, A, B, I, Fo, M>(
    workers: usize,
    n: usize,
    ctrl: &RunCtrl,
    batch: B,
    init: I,
    fold: Fo,
    merge: M,
) -> Result<A, FoldError>
where
    T: Send,
    A: Send,
    B: Fn(usize, usize) -> Vec<T> + Sync,
    I: Fn() -> A + Sync,
    Fo: Fn(&mut A, usize, T) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    let cfg = FoldCfg {
        workers,
        n,
        pending_cap: PENDING_PER_WORKER * workers.max(1),
    };
    fold_chunked_impl(
        cfg,
        ctrl,
        |lo, hi, part: &mut A| {
            let results = batch(lo, hi);
            assert_eq!(
                results.len(),
                hi - lo,
                "batch(lo, hi) must yield hi-lo results"
            );
            for (k, v) in results.into_iter().enumerate() {
                fold(part, lo + k, v);
            }
        },
        init,
        merge,
    )
}

/// Scheduler geometry: `pending_cap` is the wave width in chunks —
/// how many chunk slots one compute phase fills before the merge
/// phase drains them — or `usize::MAX` to run a single wave over
/// every chunk (collecting callers, whose output is `O(n)`
/// regardless).
struct FoldCfg {
    workers: usize,
    n: usize,
    pending_cap: usize,
}

/// Per-index scheduler body: wraps the trial/fold pair into the
/// chunk-filling shape of [`fold_chunked_impl`].
fn fold_impl<T, A, F, I, Fo, M>(
    cfg: FoldCfg,
    ctrl: &RunCtrl,
    trial: F,
    init: I,
    fold: Fo,
    merge: M,
) -> Result<A, FoldError>
where
    T: Send,
    A: Send,
    F: Fn(usize) -> T + Sync,
    I: Fn() -> A + Sync,
    Fo: Fn(&mut A, usize, T) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    fold_chunked_impl(
        cfg,
        ctrl,
        |lo, hi, part: &mut A| {
            for i in lo..hi {
                fold(part, i, trial(i));
            }
        },
        init,
        merge,
    )
}

/// Shared scheduler body. `fill` computes one chunk: it folds the
/// results of trials `lo..hi` (in ascending index order) into the
/// fresh accumulator it is handed. See [`run_trials_fold_ctrl`] for
/// the resilience contract.
fn fold_chunked_impl<A, Fill, I, M>(
    cfg: FoldCfg,
    ctrl: &RunCtrl,
    fill: Fill,
    init: I,
    merge: M,
) -> Result<A, FoldError>
where
    A: Send,
    Fill: Fn(usize, usize, &mut A) + Sync,
    I: Fn() -> A + Sync,
    M: Fn(&mut A, A) + Sync,
{
    let FoldCfg {
        workers,
        n,
        pending_cap,
    } = cfg;
    let chunk = fold_chunk_size(n);
    let chunks = n.div_ceil(chunk);
    let workers = workers.max(1).min(chunks.max(1));
    let cancel = ctrl.cancel_token();
    let chunk_range = |c: usize| (c * chunk, ((c + 1) * chunk).min(n));
    // One guarded attempt at chunk `c`: fill a fresh accumulator with
    // the chunk's trials, catching unwinds so a panicking trial takes
    // down this chunk attempt, not the process.
    let attempt_chunk = |c: usize| {
        panic::catch_unwind(AssertUnwindSafe(|| {
            let mut part = init();
            let (lo, hi) = chunk_range(c);
            fill(lo, hi, &mut part);
            part
        }))
    };
    // Panic isolation with one deterministic retry: the chunk/merge
    // structure is a function of `n` alone, so re-running a chunk
    // from a fresh accumulator is bit-identical — a transient fault
    // (caught once, clean on retry) leaves no trace in the result.
    let run_chunk = |c: usize| -> Result<A, FoldError> {
        match attempt_chunk(c) {
            Ok(part) => Ok(part),
            Err(_first) => {
                ctrl.note_retry();
                match attempt_chunk(c) {
                    Ok(part) => Ok(part),
                    Err(second) => Err(FoldError::ChunkPanicked {
                        chunk: c,
                        trial_range: chunk_range(c),
                        payload: panic_message(second.as_ref()),
                    }),
                }
            }
        }
    };
    if workers <= 1 || chunks <= 1 {
        let mut acc = init();
        for c in 0..chunks {
            if cancel.is_cancelled() {
                return Err(FoldError::Cancelled);
            }
            let part = run_chunk(c)?;
            panic::catch_unwind(AssertUnwindSafe(|| merge(&mut acc, part))).map_err(|p| {
                FoldError::ChunkPanicked {
                    chunk: c,
                    trial_range: chunk_range(c),
                    payload: panic_message(p.as_ref()),
                }
            })?;
        }
        return Ok(acc);
    }

    // ---- Two-phase wave handoff (SwapChannel-style) ----
    //
    // The chunk range is processed in waves of `wave_cap` consecutive
    // chunks. Compute phase: workers claim the current wave's chunks
    // and park each finished accumulator in the chunk's pre-assigned
    // slot (`slots[c % wave_cap]` — wave starts are multiples of
    // `wave_cap`, so slots never collide within a wave). Merge phase:
    // the worker that fills the wave's *last* slot drains every slot
    // in ascending chunk order into the global accumulator, then
    // advances the wave and wakes the others. There is no queue and
    // no backpressure wait; the only blocking is a worker arriving at
    // an exhausted wave while a sibling still computes.
    let wave_cap = pending_cap.min(chunks).max(1);

    /// Shared wave state.
    struct FoldState<A> {
        /// First chunk of the current wave (a multiple of the wave
        /// width; `== chunks` once every wave has merged).
        wave_start: usize,
        /// Next chunk to hand out (claims never pass the wave end).
        next_claim: usize,
        /// Slots of the current wave already filled.
        filled: usize,
        /// The global accumulator (taken only during a merge phase).
        acc: Option<A>,
        /// First terminal failure (cancellation or a twice-panicked
        /// chunk). Once set, every worker drains and exits instead of
        /// waiting on a wave that will never complete.
        failed: Option<FoldError>,
    }

    let slots: Vec<Mutex<Option<A>>> = (0..wave_cap).map(|_| Mutex::new(None)).collect();
    let state = Mutex::new(FoldState {
        wave_start: 0,
        next_claim: 0,
        filled: 0,
        acc: Some(init()),
        failed: None,
    });
    let wave_open = Condvar::new();
    let fail_with = |e: FoldError| {
        let mut st = drain_lock(&state);
        st.failed.get_or_insert(e);
        drop(st);
        // Wake every wave waiter so nobody blocks on a wave that will
        // never complete.
        wave_open.notify_all();
    };
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Claim a chunk of the current wave, or wait for the
                // next wave to open. A recorded failure releases the
                // wait — drop-aware draining.
                let c = {
                    let mut st = drain_lock(&state);
                    loop {
                        if st.failed.is_some() || st.next_claim >= chunks {
                            return;
                        }
                        let wave_end = (st.wave_start + wave_cap).min(chunks);
                        if st.next_claim < wave_end {
                            st.next_claim += 1;
                            break st.next_claim - 1;
                        }
                        st = wave_open.wait(st).unwrap_or_else(PoisonError::into_inner);
                    }
                };
                // Chunk boundary: the only cancellation point.
                if cancel.is_cancelled() {
                    fail_with(FoldError::Cancelled);
                    return;
                }
                let part = match run_chunk(c) {
                    Ok(part) => part,
                    Err(e) => {
                        fail_with(e);
                        return;
                    }
                };
                *drain_lock(&slots[c % wave_cap]) = Some(part);
                let mut st = drain_lock(&state);
                if st.failed.is_some() {
                    // A sibling already failed: the parked slot will
                    // never merge; exit (slots drop with the scope).
                    return;
                }
                st.filled += 1;
                let wave_end = (st.wave_start + wave_cap).min(chunks);
                if st.wave_start + st.filled < wave_end {
                    continue;
                }
                // Merge phase: this worker filled the wave's last
                // slot. Every sibling is computing a claimed chunk of
                // *this* wave (all are filled) or waiting for the
                // next, so draining under the lock races nobody.
                // Strictly ascending chunk order keeps the reduction
                // deterministic; a panicking merge is caught with the
                // accumulator checked out, so the lock is never
                // poisoned mid-merge.
                let mut acc = st.acc.take().expect("accumulator present");
                let mut merge_err = None;
                for chunk in st.wave_start..wave_end {
                    let ready = drain_lock(&slots[chunk % wave_cap])
                        .take()
                        .expect("wave slot filled");
                    match panic::catch_unwind(AssertUnwindSafe(|| merge(&mut acc, ready))) {
                        Ok(()) => {}
                        Err(p) => {
                            merge_err = Some(FoldError::ChunkPanicked {
                                chunk,
                                trial_range: chunk_range(chunk),
                                payload: panic_message(p.as_ref()),
                            });
                            break;
                        }
                    }
                }
                st.acc = Some(acc);
                if let Some(e) = merge_err {
                    st.failed.get_or_insert(e);
                    drop(st);
                    wave_open.notify_all();
                    return;
                }
                st.wave_start = wave_end;
                st.filled = 0;
                drop(st);
                wave_open.notify_all();
            });
        }
    });
    let mut st = state.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(e) = st.failed.take() {
        return Err(e);
    }
    debug_assert_eq!(st.wave_start, chunks, "every wave merged");
    Ok(st.acc.take().expect("accumulator present"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = run_trials_on(4, 37, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = |i: usize| derive_seed(0xabcd, i as u64);
        let seq = run_trials_on(1, 100, f);
        let par = run_trials_on(8, 100, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_and_one_trials() {
        assert!(run_trials_on(4, 0, |i| i).is_empty());
        assert_eq!(run_trials_on(4, 1, |i| i), vec![0]);
    }

    #[test]
    fn derive_seed_spreads_indices() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // A flipped master bit changes every trial's seed.
        assert_ne!(derive_seed(1, 7), derive_seed(3, 7));
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn chunk_size_depends_on_n_only() {
        assert_eq!(fold_chunk_size(0), 1);
        assert_eq!(fold_chunk_size(63), 1);
        assert_eq!(fold_chunk_size(256), 4);
        assert_eq!(fold_chunk_size(1_000_000), 64);
    }

    #[test]
    fn fold_streams_a_float_sum_identically_on_any_worker_count() {
        // A deliberately non-associative reduction: floating-point
        // sums only reproduce if the combination order is fixed.
        let sum_on = |workers: usize| {
            run_trials_fold_on(
                workers,
                10_000,
                |i| (derive_seed(0xf0, i as u64) % 1_000) as f64 / 7.0,
                || 0.0f64,
                |acc, _i, x| *acc += x,
                |acc, part| *acc += part,
            )
        };
        let seq = sum_on(1);
        for workers in [2, 3, 4, 8] {
            assert_eq!(
                seq.to_bits(),
                sum_on(workers).to_bits(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn fold_handles_zero_and_one_trials() {
        let count = |n: usize| {
            run_trials_fold_on(
                4,
                n,
                |i| i,
                || 0usize,
                |acc, _i, _v| *acc += 1,
                |acc, part| *acc += part,
            )
        };
        assert_eq!(count(0), 0);
        assert_eq!(count(1), 1);
    }

    #[test]
    fn fold_live_accumulators_stay_bounded() {
        use std::sync::atomic::AtomicIsize;
        // init() births an accumulator, merge() consumes one: the
        // difference is how many are alive. The backpressured
        // scheduler must keep that number O(workers), far below the
        // chunk count of a large sweep.
        let live = AtomicIsize::new(0);
        let max_live = AtomicIsize::new(0);
        let workers = 4;
        let n = 40_000; // chunk 64 → 625 chunks
        let total: u64 = run_trials_fold_on(
            workers,
            n,
            |i| i as u64,
            || {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                max_live.fetch_max(now, Ordering::SeqCst);
                0u64
            },
            |acc, _i, v| *acc += v,
            |acc, part| {
                live.fetch_sub(1, Ordering::SeqCst);
                *acc += part;
            },
        );
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
        let bound = (1 + PENDING_PER_WORKER * workers + 2 * workers) as isize;
        let seen = max_live.load(Ordering::SeqCst);
        assert!(
            seen <= bound,
            "live accumulators {seen} exceed the O(workers) bound {bound}"
        );
    }

    #[test]
    fn skewed_trial_lengths_still_give_index_ordered_results() {
        // Trial 0 is ~1000× the others: under the old round-robin
        // split one worker owned it plus every 4th index; chunked
        // claiming lets the other workers drain the rest. Either way
        // the output must stay index-ordered and bit-identical.
        let f = |i: usize| {
            let spins = if i == 0 { 200_000 } else { 200 };
            let mut acc = derive_seed(0xbeef, i as u64);
            for _ in 0..spins {
                acc = acc.rotate_left(9) ^ acc.wrapping_mul(0x2545_f491_4f6c_dd1d);
            }
            (i, acc)
        };
        let seq = run_trials_on(1, 200, f);
        let par = run_trials_on(4, 200, f);
        assert_eq!(seq, par);
        assert!(par.iter().enumerate().all(|(i, &(j, _))| i == j));
    }

    #[test]
    fn explicit_override_beats_environment() {
        // Tests share the process: restore the default afterwards.
        set_worker_count(3);
        assert_eq!(worker_count(), 3);
        set_worker_count(0);
        assert!(worker_count() >= 1);
    }

    #[test]
    fn per_run_worker_override_does_not_touch_the_global() {
        let before = worker_count();
        let ctrl = RunCtrl::new().with_workers(2);
        assert_eq!(ctrl.workers(), 2);
        // The override is scoped to the RunCtrl, not the process.
        assert_eq!(worker_count(), before);
        assert_eq!(RunCtrl::new().workers(), before);
        // Zero clears the override back to the global default.
        assert_eq!(
            RunCtrl::new().with_workers(2).with_workers(0).workers(),
            before
        );
        // And the run itself is bit-identical either way.
        let sum = |ctrl: &RunCtrl| {
            run_trials_fold_ctrl(
                ctrl.workers(),
                1000,
                ctrl,
                |i| (derive_seed(0xaa, i as u64) % 97) as f64 / 3.0,
                || 0.0f64,
                |acc, _i, v| *acc += v,
                |acc, part| *acc += part,
            )
            .unwrap()
        };
        let pinned = sum(&RunCtrl::new().with_workers(2));
        let global = sum(&RunCtrl::new());
        assert_eq!(pinned.to_bits(), global.to_bits());
    }

    /// Sums 0..n with an optional injected one-shot panic.
    fn sum_ctrl(
        workers: usize,
        n: usize,
        ctrl: &RunCtrl,
        boom: &AtomicUsize,
    ) -> Result<u64, FoldError> {
        run_trials_fold_ctrl(
            workers,
            n,
            ctrl,
            |i| {
                if i == 7
                    && boom
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
                        .is_ok()
                {
                    panic!("injected trial panic at {i}");
                }
                i as u64
            },
            || 0u64,
            |acc, _i, v| *acc += v,
            |acc, part| *acc += part,
        )
    }

    #[test]
    fn one_shot_panic_is_retried_to_an_identical_result() {
        let expected = (0..1000u64).sum::<u64>();
        for workers in [1, 4] {
            let ctrl = RunCtrl::new();
            let boom = AtomicUsize::new(1); // fire once
            assert_eq!(sum_ctrl(workers, 1000, &ctrl, &boom), Ok(expected));
            assert_eq!(ctrl.retried_chunks(), 1, "workers={workers}");
            assert_eq!(boom.load(Ordering::SeqCst), 0, "fault consumed");
        }
    }

    #[test]
    fn persistent_panic_surfaces_a_structured_error() {
        for workers in [1, 4] {
            let ctrl = RunCtrl::new();
            let boom = AtomicUsize::new(usize::MAX); // fire every time
            let err = sum_ctrl(workers, 1000, &ctrl, &boom).unwrap_err();
            let FoldError::ChunkPanicked {
                chunk,
                trial_range: (lo, hi),
                payload,
            } = err
            else {
                panic!("expected ChunkPanicked, got {err:?}");
            };
            // n=1000 → chunk size 15; trial 7 lives in chunk 0.
            assert_eq!(chunk, 0, "workers={workers}");
            assert!(lo <= 7 && 7 < hi, "{lo}..{hi} must contain trial 7");
            assert!(payload.contains("injected trial panic at 7"), "{payload}");
            assert!(ctrl.retried_chunks() >= 1);
        }
    }

    #[test]
    fn persistent_panic_under_backpressure_does_not_deadlock() {
        // Chunk 0 always fails while later chunks are slow enough to
        // fill the bounded pending buffer behind the dead frontier;
        // the drain logic must wake and release every worker.
        let ctrl = RunCtrl::new();
        let err = run_trials_fold_ctrl(
            4,
            40_000, // chunk 64 → 625 chunks, plenty of backpressure
            &ctrl,
            |i| {
                if i == 0 {
                    panic!("frontier chunk dies");
                }
                std::hint::black_box(i as u64)
            },
            || 0u64,
            |acc, _i, v| *acc += v,
            |acc, part| *acc += part,
        )
        .unwrap_err();
        assert!(
            matches!(err, FoldError::ChunkPanicked { chunk: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_trial() {
        let token = CancelToken::new();
        token.cancel();
        let ran = AtomicUsize::new(0);
        let ctrl = RunCtrl::with_cancel(token);
        let out = run_trials_fold_ctrl(
            4,
            10_000,
            &ctrl,
            |i| {
                ran.fetch_add(1, Ordering::SeqCst);
                i
            },
            || 0usize,
            |acc, _i, _v| *acc += 1,
            |acc, part| *acc += part,
        );
        assert_eq!(out, Err(FoldError::Cancelled));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "no chunk may start");
    }

    #[test]
    fn mid_run_cancel_stops_at_a_chunk_boundary() {
        let token = CancelToken::new();
        let ctrl = RunCtrl::with_cancel(token.clone());
        let ran = AtomicUsize::new(0);
        let out = run_trials_fold_ctrl(
            2,
            100_000,
            &ctrl,
            |i| {
                if ran.fetch_add(1, Ordering::SeqCst) == 500 {
                    token.cancel();
                }
                i as u64
            },
            || 0u64,
            |acc, _i, v| *acc += v,
            |acc, part| *acc += part,
        );
        assert_eq!(out, Err(FoldError::Cancelled));
        // Cooperative: the run stopped well short of the sweep.
        assert!(ran.load(Ordering::SeqCst) < 100_000);
    }

    #[test]
    fn deadline_token_reports_timed_out() {
        let token = CancelToken::with_timeout(Duration::ZERO);
        assert!(token.is_cancelled());
        assert!(token.timed_out());
        let fresh = CancelToken::new();
        assert!(!fresh.is_cancelled());
        assert!(!fresh.timed_out());
        // An explicit cancel is not a timeout.
        fresh.cancel();
        assert!(fresh.is_cancelled() && !fresh.timed_out());
        // Children honour the parent flag and own deadline alike.
        let parent = CancelToken::new();
        let child = parent.child_with_timeout(Duration::from_secs(3600));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled() && !child.timed_out());
        assert!(!parent.timed_out());
        let expired = parent.child_with_timeout(Duration::ZERO);
        assert!(expired.timed_out());
    }

    #[test]
    fn merge_panic_is_terminal_but_structured() {
        for workers in [1, 4] {
            let ctrl = RunCtrl::new();
            let out = run_trials_fold_ctrl(
                workers,
                1000,
                &ctrl,
                |i| i as u64,
                || 0u64,
                |acc, _i, v| *acc += v,
                |_acc, _part| panic!("merge dies"),
            );
            let err = out.unwrap_err();
            assert!(
                matches!(err, FoldError::ChunkPanicked { ref payload, .. } if payload.contains("merge dies")),
                "workers={workers}: {err:?}"
            );
        }
    }

    #[test]
    fn lockstep_driver_matches_per_index_fold_bit_exactly() {
        // Same non-associative float reduction as the per-index test:
        // the chunk/fold/merge structure must line up exactly.
        let trial = |i: usize| (derive_seed(0xf0, i as u64) % 1_000) as f64 / 7.0;
        let per_index = run_trials_fold_on(
            3,
            10_000,
            trial,
            || 0.0f64,
            |acc, _i, x| *acc += x,
            |acc, part| *acc += part,
        );
        for workers in [1, 4, 8] {
            let batched = run_trials_lockstep(
                workers,
                10_000,
                &RunCtrl::new(),
                |lo, hi| (lo..hi).map(trial).collect::<Vec<_>>(),
                || 0.0f64,
                |acc, _i, x| *acc += x,
                |acc, part| *acc += part,
            )
            .unwrap();
            assert_eq!(per_index.to_bits(), batched.to_bits(), "workers={workers}");
        }
    }

    #[test]
    fn lockstep_batch_panic_is_retried_once_then_structured() {
        // One-shot fault: the whole batch is retried and the result
        // is indistinguishable from a fault-free run.
        let expected = (0..1000u64).sum::<u64>();
        let boom = AtomicUsize::new(1);
        let ctrl = RunCtrl::new();
        let batch = |lo: usize, hi: usize| {
            if lo <= 7
                && 7 < hi
                && boom
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
                    .is_ok()
            {
                panic!("injected batch panic");
            }
            (lo..hi).map(|i| i as u64).collect::<Vec<_>>()
        };
        let sum = run_trials_lockstep(
            4,
            1000,
            &ctrl,
            batch,
            || 0u64,
            |acc, _i, v| *acc += v,
            |acc, part| *acc += part,
        )
        .unwrap();
        assert_eq!(sum, expected);
        assert_eq!(ctrl.retried_chunks(), 1);
        // Persistent fault: surfaces as the chunk's structured error.
        let err = run_trials_lockstep(
            4,
            1000,
            &RunCtrl::new(),
            |lo: usize, hi: usize| {
                if lo <= 7 && 7 < hi {
                    panic!("persistent batch panic");
                }
                (lo..hi).map(|i| i as u64).collect::<Vec<_>>()
            },
            || 0u64,
            |acc, _i, v| *acc += v,
            |acc, part| *acc += part,
        )
        .unwrap_err();
        assert!(
            matches!(err, FoldError::ChunkPanicked { ref payload, .. }
                if payload.contains("persistent batch panic")),
            "{err:?}"
        );
    }

    #[test]
    fn lockstep_driver_honours_cancellation_at_batch_boundaries() {
        let token = CancelToken::new();
        token.cancel();
        let ran = AtomicUsize::new(0);
        let out = run_trials_lockstep(
            4,
            10_000,
            &RunCtrl::with_cancel(token),
            |lo, hi| {
                ran.fetch_add(hi - lo, Ordering::SeqCst);
                (lo..hi).collect::<Vec<_>>()
            },
            || 0usize,
            |acc, _i, _v| *acc += 1,
            |acc, part| *acc += part,
        );
        assert_eq!(out, Err(FoldError::Cancelled));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "no batch may start");
    }

    #[test]
    fn legacy_entry_points_still_panic_on_persistent_faults() {
        let caught = std::panic::catch_unwind(|| {
            run_trials_on(2, 100, |i| {
                if i == 3 {
                    panic!("persistent");
                }
                i
            })
        });
        let payload = caught.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("persistent"), "{msg}");
    }
}
