//! The sender and receiver programs (Algorithms 1–3).
//!
//! Both channel variants share one receiver shape: *initialize* `d`
//! lines, *sleep* until the next sampling instant (`Tr`), *decode*
//! by touching the remaining lines, then *time* an access to
//! `line 0` — and one sender shape: for each message bit, spend `Ts`
//! cycles either repeatedly touching one line (bit 1) or idling
//! (bit 0). The only difference between Algorithm 1 and Algorithm 2
//! is **which** lines those are, which [`crate::setup`] decides.

use cache_sim::addr::VirtAddr;
use cache_sim::hierarchy::HitLevel;
use exec_sim::block::BlockCtx;
use exec_sim::program::{Footprint, Op, OpResult, Program};

/// Default cycles the sender spends computing the target address
/// before each encode access (the "calculate the victim address"
/// component of the paper's Table V encoding latencies).
pub const DEFAULT_ENCODE_CALC: u32 = 27;

/// One receiver observation: the timed access of `line 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Thread-local completion time of the measurement.
    pub at: u64,
    /// The latency readout (what a real receiver sees).
    pub measured: u32,
    /// Ground truth level that served the load (for validation).
    pub level: HitLevel,
}

/// The Algorithm 3 sender: repeats each message bit for `Ts` cycles.
///
/// For a `1` bit, it alternates address calculation with an access
/// to its line (`line 0` of Algorithm 1 or `line N` of Algorithm 2);
/// for a `0` bit it stays off the target set entirely. Note the
/// sender's accesses are expected to be cache *hits* — the property
/// that makes the LRU channel stealthier and faster to encode than
/// Flush+Reload (§VII).
#[derive(Debug, Clone)]
pub struct LruSender {
    line: VirtAddr,
    message: Vec<bool>,
    ts: u64,
    encode_calc: u32,
    repeat: bool,
    pending_access: bool,
}

impl LruSender {
    /// A sender transmitting `message` once, one bit per `ts` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `message` is empty or `ts == 0`.
    pub fn new(line: VirtAddr, message: Vec<bool>, ts: u64) -> Self {
        assert!(!message.is_empty(), "message must contain at least one bit");
        assert!(ts > 0, "ts must be positive");
        Self {
            line,
            message,
            ts,
            encode_calc: DEFAULT_ENCODE_CALC,
            repeat: false,
            pending_access: false,
        }
    }

    /// Keeps re-sending the message until the scheduler limit (used
    /// by the constant-bit time-sliced experiments and long traces).
    #[must_use]
    pub fn repeating(mut self) -> Self {
        self.repeat = true;
        self
    }

    /// Overrides the per-access pacing (cycles of compute between
    /// encode accesses). Large values thin out the sender's access
    /// stream — used to keep the very long time-sliced runs
    /// tractable without changing the channel semantics.
    #[must_use]
    pub fn with_encode_calc(mut self, cycles: u32) -> Self {
        self.encode_calc = cycles;
        self
    }

    /// Bit index live at time `now`.
    fn bit_index(&self, now: u64) -> u64 {
        now / self.ts
    }
}

impl Program for LruSender {
    fn next_op(&mut self, now: u64) -> Op {
        let k = self.bit_index(now);
        if !self.repeat && k >= self.message.len() as u64 {
            return Op::Done;
        }
        let bit = self.message[(k % self.message.len() as u64) as usize];
        if bit {
            if self.pending_access {
                self.pending_access = false;
                Op::Access(self.line)
            } else {
                self.pending_access = true;
                Op::Compute(self.encode_calc)
            }
        } else {
            // Bit 0: no access to the target set for the rest of
            // this bit period.
            Op::SpinUntil((k + 1) * self.ts)
        }
    }

    fn run_block(&mut self, ctx: &mut BlockCtx<'_>) {
        // The 1-bit inner loop — alternating address calculation and
        // an access to the same line — is the hot path of every
        // time-sliced run: thousands of identical L1 hits per
        // quantum. The first access executes for real; once the
        // context holds its memo, the rest of the bit period (up to
        // the slice end) advances in closed form. 0-bits (spins) and
        // the end of the message return control to the scheduler's
        // op path.
        while ctx.can_issue() {
            let k = self.bit_index(ctx.now());
            if !self.repeat && k >= self.message.len() as u64 {
                return;
            }
            if !self.message[(k % self.message.len() as u64) as usize] {
                return;
            }
            // The bit is constant until this boundary; no op may
            // start past it (the reference re-derives the bit before
            // every op).
            let bit_end = (k + 1) * self.ts;
            while ctx.now() < bit_end && ctx.can_issue() {
                if self.pending_access {
                    self.pending_access = false;
                    ctx.access(self.line);
                } else {
                    if let Some(adv) = ctx.repeat_paced(self.line, self.encode_calc, bit_end) {
                        // Ended mid-pair (after the compute) iff the
                        // access is still owed.
                        self.pending_access = adv.computes > adv.accesses;
                        continue;
                    }
                    self.pending_access = true;
                    ctx.compute(self.encode_calc);
                }
            }
        }
    }

    fn uses_blocks(&self) -> bool {
        true
    }

    fn footprint(&self) -> Footprint {
        Footprint::Lines(vec![(self.line, 1)])
    }
}

/// The Algorithm 3 receiver running the Algorithm 1/2 measurement
/// loop: init `d` lines → sleep to the `Tr` grid → decode the rest
/// → time `line 0`.
#[derive(Debug, Clone)]
pub struct LruReceiver {
    lines: Vec<VirtAddr>,
    d: usize,
    tr: u64,
    phase: Phase,
    idx: usize,
    wake_at: u64,
    max_samples: Option<usize>,
    samples: Vec<Sample>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Init,
    Wait,
    Decode,
    Measure,
}

impl LruReceiver {
    /// A receiver over `lines` (ordered `line 0..`, as produced by
    /// [`crate::setup`]) with init depth `d`, sampling every `tr`
    /// cycles, until the scheduler stops it.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`, `d > lines.len()`, or `tr == 0`.
    pub fn new(lines: Vec<VirtAddr>, d: usize, tr: u64) -> Self {
        assert!(d >= 1 && d <= lines.len(), "d must be in 1..=lines.len()");
        assert!(tr > 0, "tr must be positive");
        Self {
            lines,
            d,
            tr,
            phase: Phase::Init,
            idx: 0,
            wake_at: 0,
            max_samples: None,
            samples: Vec::new(),
        }
    }

    /// Stops after collecting `n` samples (the time-sliced
    /// percent-of-ones experiments take a fixed number of
    /// measurements).
    #[must_use]
    pub fn with_max_samples(mut self, n: usize) -> Self {
        self.max_samples = Some(n);
        self
    }

    /// The observations collected so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Consumes the receiver, returning its observations.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }
}

impl Program for LruReceiver {
    fn next_op(&mut self, now: u64) -> Op {
        loop {
            match self.phase {
                Phase::Init => {
                    if self.max_samples.is_some_and(|n| self.samples.len() >= n) {
                        return Op::Done;
                    }
                    if self.idx < self.d {
                        self.idx += 1;
                        return Op::Access(self.lines[self.idx - 1]);
                    }
                    self.phase = Phase::Wait;
                }
                Phase::Wait => {
                    if now < self.wake_at {
                        return Op::SpinUntil(self.wake_at);
                    }
                    // Tlast = TSC (Algorithm 3): the next sample is
                    // tr after the moment this wait released.
                    self.wake_at = now + self.tr;
                    self.phase = Phase::Decode;
                    self.idx = self.d;
                }
                Phase::Decode => {
                    if self.idx < self.lines.len() {
                        self.idx += 1;
                        return Op::Access(self.lines[self.idx - 1]);
                    }
                    self.phase = Phase::Measure;
                }
                Phase::Measure => {
                    self.phase = Phase::Init;
                    self.idx = 0;
                    return Op::TimedAccess(self.lines[0]);
                }
            }
        }
    }

    fn on_result(&mut self, result: &OpResult) {
        if let (Some(measured), Some(level)) = (result.measured, result.level) {
            self.samples.push(Sample {
                at: result.completed_at,
                measured,
                level,
            });
        }
    }

    fn run_block(&mut self, ctx: &mut BlockCtx<'_>) {
        // Init and decode are plain access runs; waiting and the
        // timed measurement go back to the scheduler (spins and
        // `TimedAccess` are not block ops).
        while ctx.can_issue() {
            match self.phase {
                Phase::Init => {
                    if self.max_samples.is_some_and(|n| self.samples.len() >= n) {
                        return;
                    }
                    if self.idx < self.d {
                        self.idx += 1;
                        ctx.access(self.lines[self.idx - 1]);
                    } else {
                        self.phase = Phase::Wait;
                    }
                }
                Phase::Wait => {
                    if ctx.now() < self.wake_at {
                        return;
                    }
                    // Tlast = TSC (Algorithm 3): the next sample is
                    // tr after the moment this wait released.
                    self.wake_at = ctx.now() + self.tr;
                    self.phase = Phase::Decode;
                    self.idx = self.d;
                }
                Phase::Decode => {
                    if self.idx < self.lines.len() {
                        self.idx += 1;
                        ctx.access(self.lines[self.idx - 1]);
                    } else {
                        self.phase = Phase::Measure;
                    }
                }
                Phase::Measure => return,
            }
        }
    }

    fn uses_blocks(&self) -> bool {
        true
    }

    fn footprint(&self) -> Footprint {
        Footprint::Lines(self.lines.iter().map(|&va| (va, 1)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(i: u64) -> VirtAddr {
        VirtAddr::new(i * 4096)
    }

    #[test]
    fn sender_encodes_one_with_paced_accesses() {
        let mut s = LruSender::new(va(0), vec![true], 1000);
        assert_eq!(s.next_op(0), Op::Compute(DEFAULT_ENCODE_CALC));
        assert_eq!(s.next_op(27), Op::Access(va(0)));
        assert_eq!(s.next_op(32), Op::Compute(DEFAULT_ENCODE_CALC));
        assert_eq!(s.next_op(1000), Op::Done);
    }

    #[test]
    fn sender_encodes_zero_by_idling() {
        let mut s = LruSender::new(va(0), vec![false, true], 1000);
        assert_eq!(s.next_op(0), Op::SpinUntil(1000));
        // At the bit boundary the 1-bit starts.
        assert_eq!(s.next_op(1000), Op::Compute(DEFAULT_ENCODE_CALC));
    }

    #[test]
    fn repeating_sender_wraps() {
        let mut s = LruSender::new(va(0), vec![false], 100).repeating();
        assert_eq!(s.next_op(1_000_000), Op::SpinUntil(1_000_100));
    }

    #[test]
    fn sender_is_reentrant_for_spins() {
        let mut s = LruSender::new(va(0), vec![false; 4], 100);
        assert_eq!(s.next_op(10), Op::SpinUntil(100));
        // Re-asked mid-spin (time-sliced interruption).
        assert_eq!(s.next_op(50), Op::SpinUntil(100));
        assert_eq!(s.next_op(250), Op::SpinUntil(300));
    }

    #[test]
    fn receiver_phases_follow_algorithm_3() {
        // d=2, 4 lines: init 0,1 → wait → decode 2,3 → measure 0.
        let lines: Vec<VirtAddr> = (0..4).map(va).collect();
        let mut r = LruReceiver::new(lines.clone(), 2, 500);
        assert_eq!(r.next_op(0), Op::Access(lines[0]));
        assert_eq!(r.next_op(6), Op::Access(lines[1]));
        // First wait releases immediately (wake_at starts at 0).
        assert_eq!(r.next_op(12), Op::Access(lines[2]));
        assert_eq!(r.next_op(18), Op::Access(lines[3]));
        assert_eq!(r.next_op(24), Op::TimedAccess(lines[0]));
        // Next iteration: init again, then spin until 12 + 500.
        assert_eq!(r.next_op(90), Op::Access(lines[0]));
        assert_eq!(r.next_op(96), Op::Access(lines[1]));
        assert_eq!(r.next_op(102), Op::SpinUntil(512));
    }

    #[test]
    fn receiver_records_samples_and_stops_at_max() {
        let lines: Vec<VirtAddr> = (0..2).map(va).collect();
        let mut r = LruReceiver::new(lines, 1, 100).with_max_samples(1);
        // Drive one full iteration manually.
        loop {
            match r.next_op(0) {
                Op::TimedAccess(_) => {
                    r.on_result(&OpResult {
                        cycles: 70,
                        level: Some(HitLevel::L1),
                        measured: Some(39),
                        completed_at: 70,
                    });
                    break;
                }
                Op::Done => panic!("finished too early"),
                _ => {}
            }
        }
        assert_eq!(r.samples().len(), 1);
        assert_eq!(r.samples()[0].measured, 39);
        assert_eq!(r.next_op(100), Op::Done);
    }

    #[test]
    fn untimed_results_are_not_recorded() {
        let lines: Vec<VirtAddr> = (0..2).map(va).collect();
        let mut r = LruReceiver::new(lines, 1, 100);
        r.on_result(&OpResult {
            cycles: 5,
            level: Some(HitLevel::L1),
            measured: None,
            completed_at: 5,
        });
        assert!(r.samples().is_empty());
    }

    #[test]
    #[should_panic(expected = "d must be in")]
    fn receiver_rejects_zero_d() {
        let _ = LruReceiver::new(vec![va(0)], 0, 100);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn sender_rejects_empty_message() {
        let _ = LruSender::new(va(0), vec![], 100);
    }
}
