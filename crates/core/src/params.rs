//! Channel parameters and platform bundles.

use std::error::Error;
use std::fmt;

use cache_sim::profiles::MicroArch;
use exec_sim::tsc::TscModel;

/// The tunables of an LRU channel (paper Algorithms 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelParams {
    /// How many lines the receiver touches in the initialization
    /// phase (`d` in Algorithms 1/2; `1..=ways`).
    pub d: usize,
    /// The L1 set carrying the channel.
    pub target_set: usize,
    /// Sender period: cycles spent encoding each bit (Algorithm 3).
    pub ts: u64,
    /// Receiver sampling period in cycles (Algorithm 3). The paper
    /// notes the receiver's operations take ~560 cycles, so
    /// `tr > 560`.
    pub tr: u64,
}

/// Invalid [`ChannelParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// `d` outside `1..=ways`.
    BadD {
        /// Rejected value.
        d: usize,
        /// Associativity of the target cache.
        ways: usize,
    },
    /// Target set outside the cache.
    BadTargetSet {
        /// Rejected value.
        set: usize,
        /// Number of sets in the target cache.
        num_sets: usize,
    },
    /// `ts` or `tr` is zero, or `ts < tr` (the receiver could never
    /// sample each bit).
    BadTiming {
        /// Sender period.
        ts: u64,
        /// Receiver period.
        tr: u64,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::BadD { d, ways } => {
                write!(f, "d must be in 1..={ways}, got {d}")
            }
            ParamError::BadTargetSet { set, num_sets } => {
                write!(
                    f,
                    "target set {set} out of range (cache has {num_sets} sets)"
                )
            }
            ParamError::BadTiming { ts, tr } => {
                write!(f, "need ts >= tr > 0, got ts={ts}, tr={tr}")
            }
        }
    }
}

impl Error for ParamError {}

impl ChannelParams {
    /// Validates the parameters against a cache shape.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ParamError`].
    pub fn validate(&self, ways: usize, num_sets: usize) -> Result<(), ParamError> {
        if self.d == 0 || self.d > ways {
            return Err(ParamError::BadD { d: self.d, ways });
        }
        if self.target_set >= num_sets {
            return Err(ParamError::BadTargetSet {
                set: self.target_set,
                num_sets,
            });
        }
        if self.ts == 0 || self.tr == 0 || self.ts < self.tr {
            return Err(ParamError::BadTiming {
                ts: self.ts,
                tr: self.tr,
            });
        }
        Ok(())
    }

    /// The paper's headline Intel configuration (Fig. 5 top):
    /// `d = 8`, `Ts = 6000`, `Tr = 600`, set 0.
    pub fn paper_alg1_default() -> Self {
        ChannelParams {
            d: 8,
            target_set: 0,
            ts: 6_000,
            tr: 600,
        }
    }

    /// The paper's Algorithm 2 configuration (Fig. 5 bottom):
    /// `d = 4`, `Ts = 6000`, `Tr = 600`, set 0.
    pub fn paper_alg2_default() -> Self {
        ChannelParams {
            d: 4,
            target_set: 0,
            ts: 6_000,
            tr: 600,
        }
    }
}

/// A platform bundle: micro-architecture profile plus timer model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    /// Cache/latency/frequency profile (paper Tables II/III).
    pub arch: MicroArch,
    /// Timestamp-counter model (fine on Intel, coarse on AMD).
    pub tsc: TscModel,
}

impl Platform {
    /// Intel Xeon E5-2690 (Sandy Bridge).
    pub fn e5_2690() -> Self {
        let arch = MicroArch::sandy_bridge_e5_2690();
        Platform {
            arch,
            tsc: TscModel::from_arch(&arch),
        }
    }

    /// Intel Xeon E3-1245 v5 (Skylake).
    pub fn e3_1245v5() -> Self {
        let arch = MicroArch::skylake_e3_1245v5();
        Platform {
            arch,
            tsc: TscModel::from_arch(&arch),
        }
    }

    /// AMD EPYC 7571 (Zen, EC2).
    pub fn epyc_7571() -> Self {
        let arch = MicroArch::zen_epyc_7571();
        Platform {
            arch,
            tsc: TscModel::from_arch(&arch),
        }
    }

    /// The three platforms of the paper's evaluation.
    pub fn all() -> [Platform; 3] {
        [Self::e5_2690(), Self::e3_1245v5(), Self::epyc_7571()]
    }

    /// Expected pointer-chase readout for a target that hits in L1
    /// (the center of the left mode in Fig. 3).
    pub fn chain_hit_center(&self) -> u32 {
        self.tsc.overhead / 4 + 8 * self.arch.latencies.l1
    }

    /// Expected pointer-chase readout for a target that misses to L2.
    pub fn chain_miss_center(&self) -> u32 {
        self.tsc.overhead / 4 + 7 * self.arch.latencies.l1 + self.arch.latencies.l2
    }

    /// Threshold separating "L1 hit" from "L1 miss" pointer-chase
    /// readouts (the red dotted line of Fig. 5). Midpoint of the two
    /// modes; on AMD this threshold is only meaningful on *averaged*
    /// traces (§VI-A).
    pub fn hit_threshold(&self) -> u32 {
        (self.chain_hit_center() + self.chain_miss_center()).div_ceil(2)
    }

    /// Transmission rate in bits/second for a sender period `ts`.
    pub fn rate_bps(&self, ts: u64) -> f64 {
        self.arch.freq_ghz * 1e9 / ts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        for p in [
            ChannelParams::paper_alg1_default(),
            ChannelParams::paper_alg2_default(),
        ] {
            assert_eq!(p.validate(8, 64), Ok(()));
        }
    }

    #[test]
    fn rejects_bad_d() {
        let mut p = ChannelParams::paper_alg1_default();
        p.d = 0;
        assert!(matches!(p.validate(8, 64), Err(ParamError::BadD { .. })));
        p.d = 9;
        assert!(p.validate(8, 64).is_err());
    }

    #[test]
    fn rejects_bad_target_set() {
        let mut p = ChannelParams::paper_alg1_default();
        p.target_set = 64;
        assert!(matches!(
            p.validate(8, 64),
            Err(ParamError::BadTargetSet { .. })
        ));
    }

    #[test]
    fn rejects_bad_timing() {
        let mut p = ChannelParams::paper_alg1_default();
        p.tr = 10_000; // tr > ts
        let err = p.validate(8, 64).unwrap_err();
        assert!(err.to_string().contains("ts"));
    }

    #[test]
    fn intel_threshold_sits_between_modes() {
        let p = Platform::e5_2690();
        assert!(p.chain_hit_center() < p.hit_threshold());
        assert!(p.hit_threshold() <= p.chain_miss_center());
    }

    #[test]
    fn rate_matches_frequency_over_ts() {
        let p = Platform::e5_2690();
        let bps = p.rate_bps(6_000);
        assert!((bps - 3.8e9 / 6000.0).abs() < 1.0);
        // ~633 Kbps nominal for the Fig. 5 parameters (the paper
        // reports 480 Kbps wall-clock on this machine).
        assert!(bps > 400_000.0 && bps < 700_000.0);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ParamError::BadD { d: 0, ways: 8 };
        assert_eq!(e.to_string(), "d must be in 1..=8, got 0");
    }
}
