//! Histograms and trace summaries used by the figure harnesses.

use std::collections::BTreeMap;
use std::fmt;

use crate::protocol::Sample;

/// A latency histogram over integer cycle readouts (Figs. 3 and 13).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u32, u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn add(&mut self, value: u32) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Relative frequency of `value` (0.0 when empty).
    pub fn frequency(&self, value: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts.get(&value).copied().unwrap_or(0) as f64 / self.total as f64
        }
    }

    /// `(value, frequency)` pairs in ascending value order.
    pub fn rows(&self) -> Vec<(u32, f64)> {
        self.counts
            .iter()
            .map(|(&v, &c)| (v, c as f64 / self.total.max(1) as f64))
            .collect()
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .map(|(&v, &c)| v as f64 * c as f64)
            .sum::<f64>()
            / self.total as f64
    }

    /// Smallest and largest observed values, if any.
    pub fn range(&self) -> Option<(u32, u32)> {
        let min = self.counts.keys().next()?;
        let max = self.counts.keys().next_back()?;
        Some((*min, *max))
    }

    /// Fraction of observations overlapping another histogram
    /// (shared values weighted by the smaller frequency) — used to
    /// assert Fig. 13's "same distribution" claim.
    pub fn overlap(&self, other: &Histogram) -> f64 {
        let mut acc = 0.0;
        for &v in self.counts.keys() {
            acc += self.frequency(v).min(other.frequency(v));
        }
        acc
    }
}

impl FromIterator<u32> for Histogram {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

impl Extend<u32> for Histogram {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (v, freq) in self.rows() {
            writeln!(
                f,
                "{v:>6}  {:>6.2}%  {}",
                freq * 100.0,
                "#".repeat((freq * 60.0) as usize)
            )?;
        }
        Ok(())
    }
}

/// Summary statistics of a receiver trace (used by the Fig. 5/7/14
/// harnesses and EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Number of samples.
    pub samples: usize,
    /// Mean readout.
    pub mean: f64,
    /// Fraction of samples at or below the hit threshold.
    pub hit_fraction: f64,
    /// Smallest readout.
    pub min: u32,
    /// Largest readout.
    pub max: u32,
}

/// Summarizes a trace against a hit threshold.
pub fn summarize(samples: &[Sample], hit_threshold: u32) -> TraceSummary {
    if samples.is_empty() {
        return TraceSummary {
            samples: 0,
            mean: 0.0,
            hit_fraction: 0.0,
            min: 0,
            max: 0,
        };
    }
    let mean = samples.iter().map(|s| s.measured as f64).sum::<f64>() / samples.len() as f64;
    let hits = samples
        .iter()
        .filter(|s| s.measured <= hit_threshold)
        .count();
    TraceSummary {
        samples: samples.len(),
        mean,
        hit_fraction: hits as f64 / samples.len() as f64,
        min: samples.iter().map(|s| s.measured).min().unwrap(),
        max: samples.iter().map(|s| s.measured).max().unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::hierarchy::HitLevel;

    #[test]
    fn histogram_counts_and_mean() {
        let h: Histogram = [10u32, 10, 20, 20, 20, 30].into_iter().collect();
        assert_eq!(h.total(), 6);
        assert!((h.frequency(20) - 0.5).abs() < 1e-12);
        assert!((h.mean() - 18.333).abs() < 0.01);
        assert_eq!(h.range(), Some((10, 30)));
    }

    #[test]
    fn identical_histograms_fully_overlap() {
        let a: Histogram = [1u32, 2, 2, 3].into_iter().collect();
        let b = a.clone();
        assert!((a.overlap(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_histograms_do_not_overlap() {
        let a: Histogram = [1u32, 2].into_iter().collect();
        let b: Histogram = [10u32, 11].into_iter().collect();
        assert_eq!(a.overlap(&b), 0.0);
    }

    #[test]
    fn display_renders_rows() {
        let h: Histogram = [5u32, 5].into_iter().collect();
        let text = h.to_string();
        assert!(text.contains("100.00%"));
    }

    #[test]
    fn summary_of_mixed_trace() {
        let samples: Vec<Sample> = [35u32, 36, 48, 49]
            .iter()
            .enumerate()
            .map(|(i, &m)| Sample {
                at: i as u64 * 100,
                measured: m,
                level: HitLevel::L1,
            })
            .collect();
        let s = summarize(&samples, 40);
        assert_eq!(s.samples, 4);
        assert!((s.hit_fraction - 0.5).abs() < 1e-12);
        assert_eq!((s.min, s.max), (35, 49));
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = summarize(&[], 40);
        assert_eq!(s.samples, 0);
        assert_eq!(s.mean, 0.0);
    }
}
