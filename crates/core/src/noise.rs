//! Environmental noise: deterministic, seed-derived cache
//! interference for any experiment.
//!
//! The paper reports its channels under clean single-tenant
//! conditions; real machines are not clean. Co-running workloads
//! evict lines, schedulers jitter, and probabilistic contention
//! flips replacement state between a sender's encode and a
//! receiver's decode. This module models that environment as three
//! parametric interference processes behind one spec type,
//! [`NoiseModel`]:
//!
//! * [`NoiseModel::RandomEviction`] — a steady co-runner touching
//!   uniformly random lines of its own buffer every `gap_cycles`
//!   (the §V-B pollution process with a controllable rate).
//! * [`NoiseModel::PeriodicBurst`] — a phase-structured co-runner
//!   that sleeps most of each `period_cycles` window, then streams
//!   `burst_lines` consecutive lines (a timer-tick / GC-pause
//!   shape).
//! * [`NoiseModel::Bernoulli`] — memoryless per-observation
//!   interference: each receiver period, an independent coin with
//!   probability `p` decides whether a random line gets touched.
//!
//! Every model is a pure function of its parameters and a seed, so
//! noisy experiments stay bit-identical across worker counts like
//! everything else in the workspace. Each model has two faces:
//!
//! 1. **A scheduled program** ([`NoiseModel::program`]) — an
//!    [`exec_sim::program::Program`] run as a third thread next to
//!    the sender and receiver. This is how the covert-channel
//!    experiments inject noise.
//! 2. **An access-stream gate** ([`NoiseModel::injector`]) — the
//!    deterministic decision process mapped into the access-index
//!    domain, pluggable into
//!    [`cache_sim::stream::Interleave`] to perturb *any* address
//!    stream feeding a bare cache.

use cache_sim::addr::{PhysAddr, VirtAddr};
use cache_sim::stream::AccessStream;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use exec_sim::block::BlockCtx;
use exec_sim::program::{Footprint, Op, Program};

use std::error::Error;
use std::fmt;

/// Cache-line stride the noise buffers assume (all simulated L1s use
/// 64-byte lines).
pub const LINE: u64 = 64;

/// Nominal cost of one base-stream access, used to map the
/// cycle-domain models ([`NoiseModel::RandomEviction`],
/// [`NoiseModel::PeriodicBurst`]) into the access-index domain of
/// [`NoiseModel::injector`]. Matches the simulated L1 hit latency.
pub const STREAM_CYCLES_PER_ACCESS: u64 = 4;

/// A parametric cache-interference process. `None` is the default
/// everywhere; scenarios omit it when serializing, which keeps
/// pre-noise JSON encodings byte-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseModel {
    /// No injected interference.
    None,
    /// A co-runner touching one uniformly random line of a
    /// `lines`-line buffer every `gap_cycles` of compute.
    RandomEviction {
        /// Buffer size in cache lines (64 lines span all 64 L1 sets
        /// once; 512 puts 8-way pressure on every set).
        lines: u32,
        /// Compute cycles between touches — smaller is noisier.
        gap_cycles: u32,
    },
    /// A co-runner that sleeps until the next multiple of
    /// `period_cycles`, then streams `burst_lines` consecutive
    /// lines.
    PeriodicBurst {
        /// Burst period in cycles.
        period_cycles: u64,
        /// Lines touched per burst.
        burst_lines: u32,
    },
    /// Memoryless interference: once per receiver period, touch one
    /// uniformly random line of a `lines`-line buffer with
    /// probability `p`.
    Bernoulli {
        /// Per-period touch probability in `[0, 1]`.
        p: f64,
        /// Buffer size in cache lines.
        lines: u32,
    },
}

/// Largest buffer a noise model may span, in cache lines (4 MiB —
/// two orders of magnitude beyond any simulated L1+L2, and small
/// enough that a hostile `adhoc` scenario cannot stall the process
/// allocating page-table entries).
pub const MAX_NOISE_LINES: u32 = 65_536;

/// Why a [`NoiseModel`] is not usable.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseError {
    /// A line count of zero (no buffer to touch).
    ZeroLines,
    /// A line count beyond [`MAX_NOISE_LINES`] (the buffer would
    /// dwarf every simulated cache and stall allocation).
    TooManyLines(u32),
    /// A zero cycle period or gap (the process would never yield).
    ZeroPeriod,
    /// A Bernoulli probability outside `[0, 1]` (or NaN).
    BadProbability(f64),
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::ZeroLines => write!(f, "noise model needs lines >= 1"),
            NoiseError::TooManyLines(lines) => write!(
                f,
                "noise model needs lines <= {MAX_NOISE_LINES}, got {lines}"
            ),
            NoiseError::ZeroPeriod => {
                write!(f, "noise model needs a positive period/gap in cycles")
            }
            NoiseError::BadProbability(p) => {
                write!(f, "bernoulli noise needs p in [0, 1], got {p}")
            }
        }
    }
}

impl Error for NoiseError {}

impl NoiseModel {
    /// `true` for [`NoiseModel::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, NoiseModel::None)
    }

    /// Checks the parameters.
    ///
    /// # Errors
    ///
    /// See [`NoiseError`].
    pub fn validate(&self) -> Result<(), NoiseError> {
        let lines_in_range = |lines: u32| match lines {
            0 => Err(NoiseError::ZeroLines),
            l if l > MAX_NOISE_LINES => Err(NoiseError::TooManyLines(l)),
            _ => Ok(()),
        };
        match *self {
            NoiseModel::None => Ok(()),
            NoiseModel::RandomEviction { lines, gap_cycles } => {
                lines_in_range(lines)?;
                if gap_cycles == 0 {
                    Err(NoiseError::ZeroPeriod)
                } else {
                    Ok(())
                }
            }
            NoiseModel::PeriodicBurst {
                period_cycles,
                burst_lines,
            } => {
                lines_in_range(burst_lines)?;
                if period_cycles == 0 {
                    Err(NoiseError::ZeroPeriod)
                } else {
                    Ok(())
                }
            }
            NoiseModel::Bernoulli { p, lines } => {
                lines_in_range(lines)?;
                if !(0.0..=1.0).contains(&p) {
                    Err(NoiseError::BadProbability(p))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Lines the model's buffer needs (0 for `None`; bursts stream
    /// their burst length).
    pub fn buffer_lines(&self) -> u64 {
        match *self {
            NoiseModel::None => 0,
            NoiseModel::RandomEviction { lines, .. } => u64::from(lines),
            NoiseModel::PeriodicBurst { burst_lines, .. } => u64::from(burst_lines),
            NoiseModel::Bernoulli { lines, .. } => u64::from(lines),
        }
    }

    /// A compact human label (`bernoulli(p=0.25, lines=256)`), used
    /// by report renderers and `lru-leak show`.
    pub fn label(&self) -> String {
        match *self {
            NoiseModel::None => "none".to_string(),
            NoiseModel::RandomEviction { lines, gap_cycles } => {
                format!("random-eviction(lines={lines}, gap={gap_cycles})")
            }
            NoiseModel::PeriodicBurst {
                period_cycles,
                burst_lines,
            } => format!("periodic-burst(period={period_cycles}, burst={burst_lines})"),
            NoiseModel::Bernoulli { p, lines } => format!("bernoulli(p={p}, lines={lines})"),
        }
    }

    /// The scheduled face: a [`Program`] injecting this model's
    /// interference from a third thread.
    ///
    /// `buffer` must point at [`NoiseModel::buffer_lines`] allocated
    /// lines. `cadence_cycles` is the Bernoulli model's per-trial
    /// period (pass the receiver period `Tr` so "per observation"
    /// means per receiver measurement); the other models ignore it.
    /// Returns `None` for [`NoiseModel::None`].
    ///
    /// Degenerate parameters (zero lines, zero periods, `p` outside
    /// `[0, 1]`) are clamped to the nearest usable value rather than
    /// panicking mid-run — call [`NoiseModel::validate`] first to
    /// reject them outright, as the scenario builder does.
    pub fn program(
        &self,
        buffer: VirtAddr,
        cadence_cycles: u64,
        seed: u64,
    ) -> Option<NoiseProgram> {
        if self.is_none() {
            return None;
        }
        Some(NoiseProgram {
            model: *self,
            buffer,
            cadence_cycles: cadence_cycles.max(1),
            rng: SmallRng::seed_from_u64(seed ^ 0x6e01_5e5e),
            phase: Phase::Idle,
            next_slot: 0,
        })
    }

    /// Spawns this model as a ready-to-schedule third party on
    /// `machine`: creates the interference process, allocates its
    /// buffer (capped at [`MAX_NOISE_LINES`] even for unvalidated
    /// models), and builds the [`NoiseProgram`] with the canonical
    /// seed derivation. Both the covert and percent-ones faces go
    /// through here, so they model identical interference. Returns
    /// `None` for [`NoiseModel::None`] (no process is created).
    pub fn spawn(
        &self,
        machine: &mut exec_sim::machine::Machine,
        cadence_cycles: u64,
        seed: u64,
    ) -> Option<(exec_sim::machine::Pid, NoiseProgram)> {
        if self.is_none() {
            return None;
        }
        let pid = machine.create_process();
        let lines = self.buffer_lines().min(u64::from(MAX_NOISE_LINES));
        let buffer = machine.alloc_pages(pid, lines.div_ceil(64).max(1));
        self.program(buffer, cadence_cycles, seed ^ 0x0153)
            .map(|prog| (pid, prog))
    }

    /// The stream face: a gate + address source for
    /// [`cache_sim::stream::Interleave`], with the cycle-domain
    /// models mapped into the access-index domain at
    /// [`STREAM_CYCLES_PER_ACCESS`] cycles per base access.
    ///
    /// Interference addresses start at physical address `base_pa`
    /// and span [`NoiseModel::buffer_lines`] lines.
    pub fn injector(&self, base_pa: u64, seed: u64) -> Injector {
        Injector {
            model: *self,
            base_pa,
            rng: SmallRng::seed_from_u64(seed ^ 0x6e01_5e5e),
            carry_cycles: 0,
            burst_cursor: 0,
        }
    }
}

/// Internal phase of a [`NoiseProgram`].
#[derive(Debug, Clone)]
enum Phase {
    /// Waiting for the next decision point.
    Idle,
    /// `n` burst accesses still to issue.
    Bursting(u32),
}

/// The scheduled face of a [`NoiseModel`]: run it as one more
/// [`ThreadHandle`](exec_sim::sched::ThreadHandle) next to the
/// channel parties. All randomness comes from the construction seed,
/// so a noisy run reproduces exactly.
#[derive(Debug, Clone)]
pub struct NoiseProgram {
    model: NoiseModel,
    buffer: VirtAddr,
    cadence_cycles: u64,
    rng: SmallRng,
    phase: Phase,
    next_slot: u64,
}

impl NoiseProgram {
    fn random_line(&mut self, lines: u32) -> VirtAddr {
        let line = self.rng.gen_range(0..u64::from(lines.max(1)));
        self.buffer.add(line * LINE)
    }
}

impl Program for NoiseProgram {
    fn next_op(&mut self, now: u64) -> Op {
        if let Phase::Bursting(left) = self.phase {
            // Stream the remaining burst lines back to back.
            let idx = match self.model {
                NoiseModel::PeriodicBurst { burst_lines, .. } => burst_lines - left,
                _ => 0,
            };
            self.phase = if left > 1 {
                Phase::Bursting(left - 1)
            } else {
                Phase::Idle
            };
            return Op::Access(self.buffer.add(u64::from(idx) * LINE));
        }
        match self.model {
            NoiseModel::None => Op::Done,
            NoiseModel::RandomEviction { lines, gap_cycles } => {
                if now < self.next_slot {
                    return Op::Compute(gap_cycles);
                }
                self.next_slot = now + u64::from(gap_cycles);
                Op::Access(self.random_line(lines))
            }
            NoiseModel::PeriodicBurst {
                period_cycles,
                burst_lines,
            } => {
                if now < self.next_slot {
                    return Op::SpinUntil(self.next_slot);
                }
                // Sleep to the *next* boundary after the burst, even
                // if the scheduler delivered us late.
                let period = period_cycles.max(1);
                self.next_slot = (now / period + 1) * period;
                self.phase = if burst_lines > 1 {
                    Phase::Bursting(burst_lines - 1)
                } else {
                    Phase::Idle
                };
                Op::Access(self.buffer)
            }
            NoiseModel::Bernoulli { p, lines } => {
                if now < self.next_slot {
                    return Op::SpinUntil(self.next_slot);
                }
                self.next_slot = now + self.cadence_cycles;
                if self.rng.gen_bool(p.clamp(0.0, 1.0)) {
                    Op::Access(self.random_line(lines))
                } else {
                    // The coin came up quiet: burn a token cycle so
                    // the scheduler can interleave us fairly.
                    Op::Compute(1)
                }
            }
        }
    }

    fn run_block(&mut self, ctx: &mut BlockCtx<'_>) {
        while ctx.can_issue() {
            if let Phase::Bursting(left) = self.phase {
                // Stream the remaining burst lines back to back.
                let idx = match self.model {
                    NoiseModel::PeriodicBurst { burst_lines, .. } => burst_lines - left,
                    _ => 0,
                };
                self.phase = if left > 1 {
                    Phase::Bursting(left - 1)
                } else {
                    Phase::Idle
                };
                ctx.access(self.buffer.add(u64::from(idx) * LINE));
                continue;
            }
            match self.model {
                NoiseModel::None => return,
                NoiseModel::RandomEviction { lines, gap_cycles } => {
                    if ctx.now() < self.next_slot {
                        ctx.compute(gap_cycles);
                        continue;
                    }
                    // Fast-forward: with a grant, every touch of the
                    // private (disjoint, L1-resident) buffer is a hit
                    // and the access/compute alternation advances in
                    // closed form. The alternation only holds while a
                    // hit is cheaper than the gap (otherwise the next
                    // slot is already due after the access), and the
                    // line draws are unobservable and intentionally
                    // not replayed.
                    let alternates = ctx
                        .analytic_access_cycles()
                        .is_some_and(|c| c < u64::from(gap_cycles));
                    if alternates {
                        if let Some(adv) = ctx.advance_paced(gap_cycles) {
                            if adv.accesses > 0 {
                                self.next_slot = adv.last_access_at + u64::from(gap_cycles);
                            }
                            continue;
                        }
                    }
                    self.next_slot = ctx.now() + u64::from(gap_cycles);
                    let va = self.random_line(lines);
                    ctx.access(va);
                }
                NoiseModel::PeriodicBurst {
                    period_cycles,
                    burst_lines,
                } => {
                    if ctx.now() < self.next_slot {
                        // Sleep: back to the scheduler's spin path.
                        return;
                    }
                    let period = period_cycles.max(1);
                    self.next_slot = (ctx.now() / period + 1) * period;
                    self.phase = if burst_lines > 1 {
                        Phase::Bursting(burst_lines - 1)
                    } else {
                        Phase::Idle
                    };
                    ctx.access(self.buffer);
                }
                NoiseModel::Bernoulli { p, lines } => {
                    if ctx.now() < self.next_slot {
                        return;
                    }
                    self.next_slot = ctx.now() + self.cadence_cycles;
                    if self.rng.gen_bool(p.clamp(0.0, 1.0)) {
                        let va = self.random_line(lines);
                        ctx.access(va);
                    } else {
                        ctx.compute(1);
                    }
                }
            }
        }
    }

    fn uses_blocks(&self) -> bool {
        true
    }

    fn footprint(&self) -> Footprint {
        let lines = self.model.buffer_lines();
        if lines > 0 {
            Footprint::Lines(vec![(self.buffer, lines)])
        } else {
            Footprint::Unknown
        }
    }
}

/// The stream face of a [`NoiseModel`]: a deterministic gate
/// (interference touches to inject after base access `i`) plus the
/// seed-derived interference addresses themselves. Feed both sides
/// to [`cache_sim::stream::Interleave`] via
/// [`Injector::into_stream_parts`].
#[derive(Debug, Clone)]
pub struct Injector {
    model: NoiseModel,
    base_pa: u64,
    rng: SmallRng,
    carry_cycles: u64,
    burst_cursor: u64,
}

impl Injector {
    /// How many interference accesses to inject after base access
    /// `index` (the [`cache_sim::stream::Interleave`] gate).
    pub fn decide(&mut self, _index: u64) -> u32 {
        match self.model {
            NoiseModel::None => 0,
            NoiseModel::RandomEviction { gap_cycles, .. } => {
                self.carry_cycles += STREAM_CYCLES_PER_ACCESS;
                let n = self.carry_cycles / u64::from(gap_cycles.max(1));
                self.carry_cycles %= u64::from(gap_cycles.max(1));
                n.min(u64::from(u32::MAX)) as u32
            }
            NoiseModel::PeriodicBurst {
                period_cycles,
                burst_lines,
            } => {
                let before = self.carry_cycles / period_cycles.max(1);
                self.carry_cycles += STREAM_CYCLES_PER_ACCESS;
                let after = self.carry_cycles / period_cycles.max(1);
                ((after - before) as u32).saturating_mul(burst_lines)
            }
            NoiseModel::Bernoulli { p, .. } => u32::from(self.rng.gen_bool(p.clamp(0.0, 1.0))),
        }
    }

    /// The next interference address.
    pub fn next_line(&mut self) -> PhysAddr {
        let lines = self.model.buffer_lines().max(1);
        let line = match self.model {
            // Bursts stream sequentially: a cursor advances on every
            // injected access, so one burst touches `burst_lines`
            // *distinct* consecutive lines like the program face.
            NoiseModel::PeriodicBurst { .. } => {
                let line = self.burst_cursor % lines;
                self.burst_cursor += 1;
                line
            }
            _ => self.rng.gen_range(0..lines),
        };
        PhysAddr::new(self.base_pa + line * LINE)
    }

    /// Splits the injector into the `(noise_stream, gate)` pair
    /// [`cache_sim::stream::Interleave::new`] wants. Both halves
    /// share the injector's RNG state through a single owner, so the
    /// composition stays deterministic.
    pub fn into_stream_parts(
        self,
    ) -> (
        impl AccessStream + 'static,
        impl FnMut(u64) -> u32 + 'static,
    ) {
        use std::cell::RefCell;
        use std::rc::Rc;
        let shared = Rc::new(RefCell::new(self));
        let gate_half = Rc::clone(&shared);
        let stream = InjectorStream { inner: shared };
        let gate = move |i: u64| gate_half.borrow_mut().decide(i);
        (stream, gate)
    }
}

/// Infinite [`AccessStream`] of one injector's interference lines.
struct InjectorStream {
    inner: std::rc::Rc<std::cell::RefCell<Injector>>,
}

impl AccessStream for InjectorStream {
    fn next_access(&mut self) -> Option<PhysAddr> {
        Some(self.inner.borrow_mut().next_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::cache::Cache;
    use cache_sim::geometry::CacheGeometry;
    use cache_sim::replacement::PolicyKind;
    use cache_sim::stream::{drain, Interleave};
    use exec_sim::machine::Machine;
    use exec_sim::sched::{HyperThreaded, ThreadHandle};

    #[test]
    fn validation_catches_degenerate_parameters() {
        assert!(NoiseModel::None.validate().is_ok());
        assert_eq!(
            NoiseModel::RandomEviction {
                lines: 0,
                gap_cycles: 10
            }
            .validate(),
            Err(NoiseError::ZeroLines)
        );
        assert_eq!(
            NoiseModel::PeriodicBurst {
                period_cycles: 0,
                burst_lines: 4
            }
            .validate(),
            Err(NoiseError::ZeroPeriod)
        );
        assert_eq!(
            NoiseModel::Bernoulli { p: 1.5, lines: 64 }.validate(),
            Err(NoiseError::BadProbability(1.5))
        );
        assert!(NoiseModel::Bernoulli { p: 0.5, lines: 64 }
            .validate()
            .is_ok());
        // A hostile line count is rejected before it can stall
        // allocation (one adhoc scenario could otherwise demand
        // tens of millions of page-table entries).
        assert_eq!(
            NoiseModel::RandomEviction {
                lines: u32::MAX,
                gap_cycles: 1
            }
            .validate(),
            Err(NoiseError::TooManyLines(u32::MAX))
        );
        assert!(NoiseModel::RandomEviction {
            lines: MAX_NOISE_LINES,
            gap_cycles: 1
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn none_has_no_program() {
        assert!(NoiseModel::None.program(VirtAddr::new(0), 100, 1).is_none());
    }

    #[test]
    fn programs_are_deterministic_per_seed() {
        let model = NoiseModel::RandomEviction {
            lines: 64,
            gap_cycles: 50,
        };
        let run = |seed| {
            let mut p = model.program(VirtAddr::new(0), 100, seed).unwrap();
            let mut ops = Vec::new();
            let mut now = 0;
            for _ in 0..64 {
                let op = p.next_op(now);
                if let Op::Compute(c) = op {
                    now += u64::from(c);
                }
                ops.push(format!("{op:?}"));
            }
            ops
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn periodic_burst_streams_then_sleeps() {
        let model = NoiseModel::PeriodicBurst {
            period_cycles: 10_000,
            burst_lines: 3,
        };
        let mut p = model.program(VirtAddr::new(0), 100, 1).unwrap();
        // Burst of 3 consecutive lines...
        for want in [0u64, 64, 128] {
            match p.next_op(0) {
                Op::Access(va) => assert_eq!(va.raw(), want),
                other => panic!("expected access, got {other:?}"),
            }
        }
        // ...then sleep to the next period boundary.
        assert_eq!(p.next_op(1), Op::SpinUntil(10_000));
        assert!(matches!(p.next_op(10_000), Op::Access(_)));
    }

    #[test]
    fn bernoulli_touch_rate_tracks_p() {
        let model = NoiseModel::Bernoulli { p: 0.3, lines: 64 };
        let mut p = model.program(VirtAddr::new(0), 100, 3).unwrap();
        let mut touches = 0;
        let mut slots = 0;
        let mut now = 0u64;
        while slots < 2_000 {
            match p.next_op(now) {
                Op::Access(_) => touches += 1,
                Op::SpinUntil(t) => {
                    now = t;
                    slots += 1;
                    continue;
                }
                _ => {}
            }
        }
        let rate = f64::from(touches) / 2_000.0;
        assert!(
            (rate - 0.3).abs() < 0.05,
            "touch rate {rate} far from p=0.3"
        );
    }

    #[test]
    fn noise_program_pollutes_a_machine() {
        let model = NoiseModel::RandomEviction {
            lines: 256,
            gap_cycles: 100,
        };
        let mut m = Machine::new(
            cache_sim::profiles::MicroArch::sandy_bridge_e5_2690(),
            PolicyKind::TreePlru,
            2,
        );
        let pid = m.create_process();
        let buf = m.alloc_pages(pid, model.buffer_lines().div_ceil(64));
        let mut prog = model.program(buf, 100, 9).unwrap();
        HyperThreaded::new(4).run(&mut m, &mut [ThreadHandle::new(pid, &mut prog)], 400_000);
        assert!(
            m.counters(pid).l1d_accesses > 100,
            "noise must keep touching"
        );
    }

    #[test]
    fn injector_gate_composes_with_interleave() {
        let geom = CacheGeometry::new(64, 64, 8).unwrap();
        let model = NoiseModel::Bernoulli { p: 1.0, lines: 512 };
        let (noise, gate) = model.injector(1 << 20, 11).into_stream_parts();
        let base: Vec<PhysAddr> = (0..200u64).map(|i| PhysAddr::new((i % 4) * 64)).collect();
        let mut cache = Cache::new(geom, PolicyKind::TreePlru, 1);
        let mut s = Interleave::new(base.into_iter(), noise, gate);
        let stats = drain(&mut cache, &mut s);
        // p = 1: one interference touch per base access.
        assert_eq!(stats.accesses, 400);
        // The injected lines come from a disjoint region, so the
        // base working set still fits — but pressure is visible.
        assert!(stats.misses > 4, "interference must add misses");
    }

    #[test]
    fn injector_is_deterministic() {
        let model = NoiseModel::Bernoulli { p: 0.4, lines: 64 };
        let gates = |seed| {
            let mut inj = model.injector(0, seed);
            (0..512).map(|i| inj.decide(i)).collect::<Vec<_>>()
        };
        assert_eq!(gates(5), gates(5));
        assert_ne!(gates(5), gates(6));
    }

    #[test]
    fn cycle_domain_models_map_into_the_index_domain() {
        // gap = 2 × STREAM_CYCLES_PER_ACCESS → one touch every two
        // base accesses.
        let model = NoiseModel::RandomEviction {
            lines: 64,
            gap_cycles: 2 * STREAM_CYCLES_PER_ACCESS as u32,
        };
        let mut inj = model.injector(0, 1);
        let total: u32 = (0..1_000).map(|i| inj.decide(i)).sum();
        assert_eq!(total, 500);
        // One 4-line burst every 40 cycles → 4 lines per 10 accesses.
        let model = NoiseModel::PeriodicBurst {
            period_cycles: 40,
            burst_lines: 4,
        };
        let mut inj = model.injector(0, 1);
        let total: u32 = (0..1_000).map(|i| inj.decide(i)).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn burst_injector_streams_distinct_consecutive_lines() {
        // period a multiple of burst_lines — the regression shape
        // where a carry-derived line index would repeat line 0.
        let model = NoiseModel::PeriodicBurst {
            period_cycles: 40,
            burst_lines: 4,
        };
        let mut inj = model.injector(1 << 20, 1);
        let mut bursts = Vec::new();
        for i in 0..64 {
            let n = inj.decide(i);
            if n > 0 {
                let lines: Vec<u64> = (0..n)
                    .map(|_| (inj.next_line().raw() - (1 << 20)) / LINE)
                    .collect();
                bursts.push(lines);
            }
        }
        assert!(!bursts.is_empty(), "bursts must fire");
        for burst in &bursts {
            assert_eq!(burst.len(), 4);
            let mut sorted = burst.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                4,
                "a burst must touch distinct lines, got {burst:?}"
            );
        }
    }

    #[test]
    fn labels_are_compact_and_distinct() {
        let labels = [
            NoiseModel::None.label(),
            NoiseModel::RandomEviction {
                lines: 64,
                gap_cycles: 100,
            }
            .label(),
            NoiseModel::PeriodicBurst {
                period_cycles: 1_000,
                burst_lines: 8,
            }
            .label(),
            NoiseModel::Bernoulli { p: 0.25, lines: 64 }.label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in labels.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert_eq!(labels[0], "none");
    }
}
