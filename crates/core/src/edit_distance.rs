//! Wagner–Fischer edit distance — the paper's channel-error metric.
//!
//! The channel has three error modes: bit flips, insertions, and
//! losses (§V-A), so plain Hamming distance under-reports fidelity.
//! The paper computes the edit distance between the sent and the
//! received strings with the Wagner–Fischer algorithm and divides by
//! the message length.

/// Edit (Levenshtein) distance between two sequences, computed with
/// the Wagner–Fischer dynamic program in `O(|a|·|b|)` time and
/// `O(min(|a|,|b|))` space.
///
/// ```
/// use lru_channel::edit_distance::edit_distance;
/// assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
/// ```
pub fn edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    // Keep the shorter sequence as the DP row.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost_subst = prev_diag + usize::from(lc != sc);
            let cost_del = row[j] + 1;
            let cost_ins = row[j + 1] + 1;
            prev_diag = row[j + 1];
            row[j + 1] = cost_subst.min(cost_del).min(cost_ins);
        }
    }
    row[short.len()]
}

/// The paper's error rate: edit distance divided by the length of
/// the *sent* string.
///
/// Returns 0 for an empty sent string (nothing to get wrong).
pub fn error_rate<T: PartialEq>(sent: &[T], received: &[T]) -> f64 {
    if sent.is_empty() {
        return 0.0;
    }
    edit_distance(sent, received) as f64 / sent.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_strings_have_zero_distance() {
        assert_eq!(edit_distance(b"abc", b"abc"), 0);
        assert_eq!(edit_distance::<u8>(&[], &[]), 0);
    }

    #[test]
    fn known_distances() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"flaw", b"lawn"), 2);
        assert_eq!(edit_distance(b"", b"abc"), 3);
        assert_eq!(edit_distance(b"abc", b""), 3);
    }

    #[test]
    fn detects_single_errors_of_each_kind() {
        let sent = [true, false, true, true, false];
        // Flip.
        assert_eq!(edit_distance(&sent, &[true, true, true, true, false]), 1);
        // Loss.
        assert_eq!(edit_distance(&sent, &[true, false, true, false]), 1);
        // Insertion.
        assert_eq!(
            edit_distance(&sent, &[true, false, false, true, true, false]),
            1
        );
    }

    #[test]
    fn error_rate_normalizes_by_sent_length() {
        let sent = [true; 10];
        let mut recv = sent;
        recv[0] = false;
        assert!((error_rate(&sent, &recv) - 0.1).abs() < 1e-12);
        assert_eq!(error_rate::<bool>(&[], &[true]), 0.0);
    }

    proptest! {
        /// Metric axioms over random bit strings.
        #[test]
        fn is_a_metric(
            a in proptest::collection::vec(any::<bool>(), 0..40),
            b in proptest::collection::vec(any::<bool>(), 0..40),
            c in proptest::collection::vec(any::<bool>(), 0..40),
        ) {
            let dab = edit_distance(&a, &b);
            let dba = edit_distance(&b, &a);
            prop_assert_eq!(dab, dba, "symmetry");
            prop_assert_eq!(edit_distance(&a, &a), 0, "identity");
            let dac = edit_distance(&a, &c);
            let dbc = edit_distance(&b, &c);
            prop_assert!(dac <= dab + dbc, "triangle inequality");
            // Bounds.
            prop_assert!(dab <= a.len().max(b.len()));
            prop_assert!(dab >= a.len().abs_diff(b.len()));
        }

        /// Appending the same symbol to both strings never changes
        /// the distance.
        #[test]
        fn common_suffix_invariance(
            a in proptest::collection::vec(any::<bool>(), 0..30),
            b in proptest::collection::vec(any::<bool>(), 0..30),
            s in any::<bool>(),
        ) {
            let mut a2 = a.clone();
            let mut b2 = b.clone();
            a2.push(s);
            b2.push(s);
            prop_assert_eq!(edit_distance(&a2, &b2), edit_distance(&a, &b));
        }
    }
}
