//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of the criterion API its micro-benchmarks use:
//! [`Criterion`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! benchmark groups, and the [`criterion_group!`]/
//! [`criterion_main!`] macros. Timing is a straightforward
//! wall-clock mean over `sample_size` samples of an adaptively sized
//! inner loop — no statistics engine, plots or HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; batches are always per-iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup values.
    SmallInput,
    /// Large setup values.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Drives one benchmark's measured closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// (mean nanoseconds per iteration, iterations measured)
    result: Option<(f64, u64)>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            result: None,
        }
    }

    /// Measures `routine` (mean wall-clock time per call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate an inner-loop count targeting ~2 ms per sample.
        let mut inner = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..inner {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || inner >= 1 << 20 {
                break;
            }
            inner *= 4;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..inner {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iters += inner;
        }
        self.result = Some((total.as_nanos() as f64 / iters.max(1) as f64, iters));
    }

    /// Measures `routine` over values produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.result = Some((total.as_nanos() as f64 / iters.max(1) as f64, iters));
    }
}

fn humanize(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        match b.result {
            Some((ns, iters)) => {
                println!(
                    "{:<44} {:>12} /iter   ({iters} iters)",
                    name.as_ref(),
                    humanize(ns)
                );
            }
            None => println!("{:<44} (no measurement)", name.as_ref()),
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.as_ref());
        BenchmarkGroup { c: self }
    }
}

/// A group of related benchmarks (printed under a shared heading).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, f: F) {
        self.c.bench_function(format!("  {}", name.as_ref()), f);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_result() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.bench_function("batched", |b| {
            b.iter_batched(|| 41, |x| x + 1, BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn humanize_scales() {
        assert!(humanize(12.0).ends_with("ns"));
        assert!(humanize(12_000.0).ends_with("µs"));
        assert!(humanize(12_000_000.0).ends_with("ms"));
    }
}
