//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the (small) slice of the `rand` 0.8 API it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen_range`, `gen_bool` and `gen`. The generator
//! is xoshiro256++ seeded through SplitMix64 — high quality, fast,
//! and fully deterministic for a given seed, which is all the
//! simulator requires. The exact stream differs from upstream `rand`,
//! which is fine: every consumer in this workspace treats the stream
//! as an opaque reproducible sequence.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53 uniform mantissa bits, the standard [0, 1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types producible by [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `0..n` without modulo bias (Lemire's
/// multiply-shift rejection method).
fn bounded(rng: &mut impl RngCore, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let low = m as u64;
        if low < n && low < n.wrapping_neg() % n {
            continue; // rejection zone: retry with fresh bits
        }
        return (m >> 64) as u64;
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeTo<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                (0 as $t..self.end).sample(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=7);
            assert!(y <= 7);
        }
    }

    #[test]
    fn small_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(9);
        let trues = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&trues));
    }
}
