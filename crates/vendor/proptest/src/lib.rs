//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of the proptest API its test suites use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`, integer-range and tuple strategies,
//! [`collection::vec`], [`any`], and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from upstream, all acceptable for this workspace:
//!
//! * no shrinking — a failing case panics with the generated inputs
//!   in the message instead of a minimized counterexample;
//! * cases are generated from a deterministic per-test seed (hash of
//!   the test name), so failures always reproduce;
//! * the default case count is 64 (upstream: 256) to keep
//!   `cargo test` fast on the heavier hierarchy properties.

#![forbid(unsafe_code)]

/// Strategy trait and built-in strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Value` from random bits.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy_impl {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.bits() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_strategy_impl!(u8, u16, u32, u64, usize);

    /// Strategy for `bool` ([`crate::any::<bool>()`]).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.bits() & 1 == 1
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: an exact `usize` or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, with length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and deterministic RNG.
pub mod test_runner {
    /// Runner configuration (subset: number of cases).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic per-test random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded from a test's name, so each property gets a
        /// stable, reproducible stream.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn bits(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample an empty range");
            loop {
                let x = self.bits();
                let m = (x as u128).wrapping_mul(n as u128);
                let low = m as u64;
                if low < n && low < n.wrapping_neg() % n {
                    continue;
                }
                return (m >> 64) as u64;
            }
        }
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary {
    /// The canonical strategy of the type.
    type Strategy: strategy::Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = strategy::BoolStrategy;
    fn arbitrary() -> Self::Strategy {
        strategy::BoolStrategy
    }
}

/// The canonical strategy for `T` (subset: `bool`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Everything a proptest-using test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics with the message on
/// failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( cfg = ($cfg:expr); ) => {};
    ( cfg = ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respected(
            v in collection::vec(0u32..10, 2..6),
            exact in collection::vec(any::<bool>(), 5),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(exact.len(), 5);
        }

        #[test]
        fn tuples_generate(pair in (0u64..100, 1u32..5)) {
            prop_assert!(pair.0 < 100);
            prop_assert_ne!(pair.1, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_case_count_applies(_x in 0u64..10) {
            // Just exercising the config path.
        }
    }
}
