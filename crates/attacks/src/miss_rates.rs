//! Tables VI and VII: the performance-counter footprint of the
//! channels.
//!
//! The paper's stealth argument (§VII): an LRU-channel *sender* runs
//! almost entirely from cache hits, so miss-based detectors cannot
//! tell it from a process sharing the core with any benign workload;
//! Flush+Reload's sender, by contrast, must miss in the target level
//! on every encode (F+R (mem): ~60% L2 / ~90% LLC miss rates).

use cache_sim::counters::{MissRates, PerfCounters};
use cache_sim::replacement::PolicyKind;
use exec_sim::machine::Machine;
use exec_sim::measure::LatencyProbe;
use exec_sim::sched::{HyperThreaded, ThreadHandle};
use exec_sim::speculation::build_victim;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use workloads::background::BenignCoRunner;

use lru_channel::params::{ChannelParams, Platform};
use lru_channel::protocol::{LruReceiver, LruSender};
use lru_channel::setup;

use crate::flush_reload::{EvictionMethod, FlushReloadReceiver};
use crate::primitive::{FlushReloadPrimitive, LruAlg1Primitive, LruAlg2Primitive};
use crate::spectre::{encode_symbols, SpectreAttack};

/// One row of Table VI or VII.
#[derive(Debug, Clone)]
pub struct MissRateRow {
    /// Configuration label (as in the paper's table).
    pub label: &'static str,
    /// Miss rates at the three levels.
    pub rates: MissRates,
    /// Raw counters behind the rates.
    pub counters: PerfCounters,
}

/// The Table VI configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderScenario {
    /// Sender + Flush+Reload(mem) receiver.
    FlushReloadMem,
    /// Sender + Flush+Reload(L1) receiver.
    FlushReloadL1,
    /// Sender + LRU Algorithm 1 receiver.
    LruAlg1,
    /// Sender + LRU Algorithm 2 receiver.
    LruAlg2,
    /// Sender sharing the core with a benign gcc-like workload.
    SenderAndGcc,
    /// Sender alone on the core.
    SenderOnly,
}

impl SenderScenario {
    /// All rows of Table VI, in paper order.
    pub const ALL: [SenderScenario; 6] = [
        SenderScenario::FlushReloadMem,
        SenderScenario::FlushReloadL1,
        SenderScenario::LruAlg1,
        SenderScenario::LruAlg2,
        SenderScenario::SenderAndGcc,
        SenderScenario::SenderOnly,
    ];

    /// Table row label.
    pub fn label(&self) -> &'static str {
        match self {
            SenderScenario::FlushReloadMem => "F+R (mem)",
            SenderScenario::FlushReloadL1 => "F+R (L1)",
            SenderScenario::LruAlg1 => "L1 LRU Alg.1",
            SenderScenario::LruAlg2 => "L1 LRU Alg.2",
            SenderScenario::SenderAndGcc => "sender & gcc",
            SenderScenario::SenderOnly => "sender only",
        }
    }
}

/// Measures the *sender process's* miss rates in one Table VI
/// scenario: the sender transmits random bits for `bits` periods of
/// `Ts = 6000` cycles while the scenario's co-runner does its thing.
pub fn sender_miss_rates(
    platform: Platform,
    scenario: SenderScenario,
    bits: usize,
    seed: u64,
) -> MissRateRow {
    let mut machine = Machine::new(platform.arch, PolicyKind::TreePlru, seed);
    let sender_pid = machine.create_process();
    let receiver_pid = machine.create_process();
    let params = ChannelParams::paper_alg1_default();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xb175);
    let message: Vec<bool> = (0..bits).map(|_| rng.gen_bool(0.5)).collect();

    let endpoints = match scenario {
        SenderScenario::LruAlg2 => {
            setup::alg2(&mut machine, sender_pid, receiver_pid, params.target_set)
        }
        _ => setup::alg1(&mut machine, sender_pid, receiver_pid, params.target_set),
    };
    let mut sender = LruSender::new(endpoints.sender_line, message.clone(), params.ts);
    machine.access(sender_pid, endpoints.sender_line);
    // Steady-state measurement, as `perf` over a long-running
    // sender: don't let the one cold compulsory miss dominate.
    machine.reset_counters();
    let limit = (bits as u64 + 1) * params.ts;

    // Build the co-runner and run. Each arm keeps its program alive
    // on the stack for the scheduler borrow.
    match scenario {
        SenderScenario::FlushReloadMem | SenderScenario::FlushReloadL1 => {
            let eviction = if scenario == SenderScenario::FlushReloadMem {
                EvictionMethod::Clflush
            } else {
                EvictionMethod::L1EvictionSet(endpoints.receiver_lines[1..9].to_vec())
            };
            let mut recv =
                FlushReloadReceiver::new(endpoints.receiver_lines[0], eviction, params.tr);
            let probe = LatencyProbe::new(&mut machine, receiver_pid, platform.tsc, 63);
            HyperThreaded::new(seed).run(
                &mut machine,
                &mut [
                    ThreadHandle::new(sender_pid, &mut sender),
                    ThreadHandle::with_probe(receiver_pid, &mut recv, probe),
                ],
                limit,
            );
        }
        SenderScenario::LruAlg1 | SenderScenario::LruAlg2 => {
            let mut recv = LruReceiver::new(endpoints.receiver_lines.clone(), params.d, params.tr);
            let probe = LatencyProbe::new(&mut machine, receiver_pid, platform.tsc, 63);
            HyperThreaded::new(seed).run(
                &mut machine,
                &mut [
                    ThreadHandle::new(sender_pid, &mut sender),
                    ThreadHandle::with_probe(receiver_pid, &mut recv, probe),
                ],
                limit,
            );
        }
        SenderScenario::SenderAndGcc => {
            let mut gcc = BenignCoRunner::gcc(&mut machine, receiver_pid, seed ^ 0x6cc);
            HyperThreaded::new(seed).run(
                &mut machine,
                &mut [
                    ThreadHandle::new(sender_pid, &mut sender),
                    ThreadHandle::new(receiver_pid, &mut gcc),
                ],
                limit,
            );
        }
        SenderScenario::SenderOnly => {
            HyperThreaded::new(seed).run(
                &mut machine,
                &mut [ThreadHandle::new(sender_pid, &mut sender)],
                limit,
            );
        }
    }

    let counters = *machine.counters(sender_pid);
    MissRateRow {
        label: scenario.label(),
        rates: counters.miss_rates(),
        counters,
    }
}

/// The full Table VI for one platform.
pub fn table6(platform: Platform, bits: usize, seed: u64) -> Vec<MissRateRow> {
    SenderScenario::ALL
        .iter()
        .map(|&s| sender_miss_rates(platform, s, bits, seed))
        .collect()
}

/// The Spectre channels compared by Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpectreChannel {
    /// Flush+Reload disclosure.
    FlushReloadMem,
    /// LRU Algorithm 1 disclosure.
    LruAlg1,
    /// LRU Algorithm 2 disclosure.
    LruAlg2,
}

impl SpectreChannel {
    /// All rows of Table VII.
    pub const ALL: [SpectreChannel; 3] = [
        SpectreChannel::FlushReloadMem,
        SpectreChannel::LruAlg1,
        SpectreChannel::LruAlg2,
    ];
}

/// Measures the combined (victim + attacker) miss rates during a
/// Spectre-v1 run recovering `secret` via the given channel
/// (Table VII).
pub fn spectre_miss_rates(
    platform: Platform,
    channel: SpectreChannel,
    secret: &str,
    seed: u64,
) -> MissRateRow {
    let mut machine = Machine::new(platform.arch, PolicyKind::TreePlru, seed);
    let symbols = encode_symbols(secret);
    let (mut victim, off) = build_victim(&mut machine, &symbols, 8);
    let pid = victim.pid;
    let attack = SpectreAttack {
        seed,
        ..SpectreAttack::default()
    };

    // Warm-up: recover the first symbol once untimed so compulsory
    // misses of the attack's own data structures don't dominate the
    // rates, then measure the full run.
    let label = match channel {
        SpectreChannel::FlushReloadMem => {
            let mut prim = FlushReloadPrimitive::new(pid, victim.array2, platform);
            attack.recover(&mut machine, &mut victim, &mut prim, off, 1);
            machine.reset_counters();
            attack.recover(&mut machine, &mut victim, &mut prim, off, symbols.len());
            "F+R (mem)"
        }
        SpectreChannel::LruAlg1 => {
            let mut prim = LruAlg1Primitive::new(&mut machine, pid, victim.array2, platform);
            attack.recover(&mut machine, &mut victim, &mut prim, off, 1);
            machine.reset_counters();
            attack.recover(&mut machine, &mut victim, &mut prim, off, symbols.len());
            "L1 LRU Alg.1"
        }
        SpectreChannel::LruAlg2 => {
            let mut prim = LruAlg2Primitive::new(&mut machine, pid, victim.array2, platform);
            attack.recover(&mut machine, &mut victim, &mut prim, off, 1);
            machine.reset_counters();
            attack.recover(&mut machine, &mut victim, &mut prim, off, symbols.len());
            "L1 LRU Alg.2"
        }
    };

    let counters = *machine.counters(pid);
    MissRateRow {
        label,
        rates: counters.miss_rates(),
        counters,
    }
}

/// The full Table VII for one platform.
pub fn table7(platform: Platform, secret: &str, seed: u64) -> Vec<MissRateRow> {
    SpectreChannel::ALL
        .iter()
        .map(|&c| spectre_miss_rates(platform, c, secret, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const BITS: usize = 200;

    #[test]
    fn lru_sender_l1_miss_rate_is_tiny() {
        let row = sender_miss_rates(Platform::e5_2690(), SenderScenario::LruAlg1, BITS, 1);
        assert!(
            row.rates.l1d < 0.02,
            "LRU Alg.1 sender must mostly hit L1, got {:.4}",
            row.rates.l1d
        );
    }

    #[test]
    fn fr_mem_sender_misses_much_more_beyond_l2() {
        let fr = sender_miss_rates(Platform::e5_2690(), SenderScenario::FlushReloadMem, BITS, 2);
        let lru = sender_miss_rates(Platform::e5_2690(), SenderScenario::LruAlg1, BITS, 2);
        // Table VI shape: F+R(mem) has order-of-magnitude worse L2
        // and LLC rates than the LRU sender.
        assert!(
            fr.rates.l2 > 2.0 * lru.rates.l2,
            "F+R(mem) L2 {:.3} vs LRU {:.3}",
            fr.rates.l2,
            lru.rates.l2
        );
        assert!(
            fr.rates.llc > 5.0 * lru.rates.llc.max(0.001),
            "F+R(mem) LLC {:.3} vs LRU {:.3}",
            fr.rates.llc,
            lru.rates.llc
        );
    }

    #[test]
    fn lru_sender_resembles_benign_cosched() {
        // The stealth claim: the LRU sender's L1D profile is within
        // the range spanned by benign co-scheduling.
        let lru = sender_miss_rates(Platform::e5_2690(), SenderScenario::LruAlg1, BITS, 3);
        let gcc = sender_miss_rates(Platform::e5_2690(), SenderScenario::SenderAndGcc, BITS, 3);
        assert!(
            lru.rates.l1d <= gcc.rates.l1d + 0.02,
            "LRU sender L1D {:.4} should not exceed benign-cosched {:.4} meaningfully",
            lru.rates.l1d,
            gcc.rates.l1d
        );
    }

    #[test]
    fn sender_only_has_lowest_l1_missrate() {
        let only = sender_miss_rates(Platform::e5_2690(), SenderScenario::SenderOnly, BITS, 4);
        for s in [
            SenderScenario::FlushReloadMem,
            SenderScenario::LruAlg1,
            SenderScenario::SenderAndGcc,
        ] {
            let row = sender_miss_rates(Platform::e5_2690(), s, BITS, 4);
            assert!(
                only.rates.l1d <= row.rates.l1d + 1e-9,
                "sender-only should be the floor ({:?}: {:.4} vs {:.4})",
                s,
                only.rates.l1d,
                row.rates.l1d
            );
        }
    }

    #[test]
    fn spectre_fr_mem_has_huge_llc_miss_rate() {
        let fr = spectre_miss_rates(Platform::e5_2690(), SpectreChannel::FlushReloadMem, "ab", 5);
        let lru = spectre_miss_rates(Platform::e5_2690(), SpectreChannel::LruAlg1, "ab", 5);
        // Table VII shape: F+R(mem) ~90%+ LLC misses; the LRU
        // channels stay low.
        assert!(
            fr.rates.llc > 0.5,
            "F+R Spectre must hammer the LLC, got {:.3}",
            fr.rates.llc
        );
        assert!(
            lru.rates.llc < 0.2,
            "LRU Spectre must not, got {:.3}",
            lru.rates.llc
        );
    }

    #[test]
    fn table6_has_all_rows() {
        let rows = table6(Platform::e5_2690(), 50, 6);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].label, "F+R (mem)");
        assert_eq!(rows[5].label, "sender only");
    }
}
