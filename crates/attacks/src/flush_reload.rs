//! Flush+Reload (Yarom & Falkner 2014), the paper's main baseline.
//!
//! The receiver removes a shared line from the cache, sleeps, and
//! later *reloads* it, timing the access: a fast reload means the
//! sender touched the line. The paper compares two eviction flavors
//! (§VII, Tables V/VI):
//!
//! * **F+R (mem)** — `clflush` pushes the line all the way to
//!   memory. The sender's access then costs a full memory round
//!   trip (long encode, huge LLC miss rate — easy to detect).
//! * **F+R (L1)** — eight same-set accesses evict the line from L1
//!   only, so the sender's access hits in L2. Cheaper, but the
//!   sender still takes a *miss* in the target level — unlike the
//!   LRU channel, whose sender can run entirely from cache hits.
//!
//! The sender is identical to the LRU sender (access the line or
//! don't), so [`lru_channel::protocol::LruSender`] is reused.

use cache_sim::addr::VirtAddr;
use exec_sim::program::{Op, OpResult, Program};
use lru_channel::protocol::Sample;

/// How the Flush+Reload receiver removes the shared line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvictionMethod {
    /// `clflush` to memory ("F+R (mem)").
    Clflush,
    /// Access an 8-line eviction set mapping to the same L1 set
    /// ("F+R (L1)").
    L1EvictionSet(Vec<VirtAddr>),
}

/// The Flush+Reload receiver: reload-and-time, evict, sleep, repeat.
#[derive(Debug, Clone)]
pub struct FlushReloadReceiver {
    shared_line: VirtAddr,
    eviction: EvictionMethod,
    tr: u64,
    phase: Phase,
    idx: usize,
    wake_at: u64,
    max_samples: Option<usize>,
    samples: Vec<Sample>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Evict,
    Wait,
    Reload,
}

impl FlushReloadReceiver {
    /// A receiver timing `shared_line` every `tr` cycles after
    /// evicting it via `eviction`.
    ///
    /// # Panics
    ///
    /// Panics if `tr == 0` or an empty eviction set is supplied.
    pub fn new(shared_line: VirtAddr, eviction: EvictionMethod, tr: u64) -> Self {
        assert!(tr > 0, "tr must be positive");
        if let EvictionMethod::L1EvictionSet(set) = &eviction {
            assert!(!set.is_empty(), "eviction set must not be empty");
        }
        Self {
            shared_line,
            eviction,
            tr,
            phase: Phase::Evict,
            idx: 0,
            wake_at: 0,
            max_samples: None,
            samples: Vec::new(),
        }
    }

    /// Stops after `n` reloads.
    #[must_use]
    pub fn with_max_samples(mut self, n: usize) -> Self {
        self.max_samples = Some(n);
        self
    }

    /// Observations so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Consumes the receiver, returning its observations.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }
}

impl Program for FlushReloadReceiver {
    fn next_op(&mut self, now: u64) -> Op {
        loop {
            match self.phase {
                Phase::Evict => {
                    if self.max_samples.is_some_and(|n| self.samples.len() >= n) {
                        return Op::Done;
                    }
                    match &self.eviction {
                        EvictionMethod::Clflush => {
                            self.phase = Phase::Wait;
                            return Op::Flush(self.shared_line);
                        }
                        EvictionMethod::L1EvictionSet(set) => {
                            if self.idx < set.len() {
                                self.idx += 1;
                                return Op::Access(set[self.idx - 1]);
                            }
                            self.phase = Phase::Wait;
                        }
                    }
                }
                Phase::Wait => {
                    if now < self.wake_at {
                        return Op::SpinUntil(self.wake_at);
                    }
                    self.wake_at = now + self.tr;
                    self.phase = Phase::Reload;
                }
                Phase::Reload => {
                    self.phase = Phase::Evict;
                    self.idx = 0;
                    return Op::TimedAccess(self.shared_line);
                }
            }
        }
    }

    fn on_result(&mut self, result: &OpResult) {
        if let (Some(measured), Some(level)) = (result.measured, result.level) {
            self.samples.push(Sample {
                at: result.completed_at,
                measured,
                level,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::hierarchy::HitLevel;
    use cache_sim::profiles::MicroArch;
    use cache_sim::replacement::PolicyKind;
    use exec_sim::machine::Machine;
    use exec_sim::measure::LatencyProbe;
    use exec_sim::sched::{HyperThreaded, ThreadHandle};
    use exec_sim::tsc::TscModel;
    use lru_channel::protocol::LruSender;
    use lru_channel::setup;

    fn run_fr(eviction_is_flush: bool, message: Vec<bool>, seed: u64) -> (Vec<Sample>, u32) {
        let mut m = Machine::new(
            MicroArch::sandy_bridge_e5_2690(),
            PolicyKind::TreePlru,
            seed,
        );
        let s = m.create_process();
        let r = m.create_process();
        let ep = setup::alg1(&mut m, s, r, 0);
        let eviction = if eviction_is_flush {
            EvictionMethod::Clflush
        } else {
            EvictionMethod::L1EvictionSet(ep.receiver_lines[1..9].to_vec())
        };
        let ts = 6_000;
        let mut sender = LruSender::new(ep.sender_line, message.clone(), ts);
        let mut receiver = FlushReloadReceiver::new(ep.receiver_lines[0], eviction, 600);
        let probe = LatencyProbe::new(&mut m, r, TscModel::intel(), 63);
        m.access(s, ep.sender_line);
        let limit = (message.len() as u64 + 1) * ts;
        HyperThreaded::new(seed).run(
            &mut m,
            &mut [
                ThreadHandle::new(s, &mut sender),
                ThreadHandle::with_probe(r, &mut receiver, probe),
            ],
            limit,
        );
        // Hit threshold for a pointer-chase readout on this machine.
        let platform = lru_channel::params::Platform::e5_2690();
        (receiver.into_samples(), platform.hit_threshold())
    }

    #[test]
    fn fr_mem_distinguishes_bits() {
        let (samples, _thr) = run_fr(true, vec![false; 10], 1);
        // m=0: every reload comes from memory (slow).
        assert!(samples.iter().all(|s| s.level == HitLevel::Mem));
        let (samples, _thr) = run_fr(true, vec![true; 10], 2);
        // m=1: the sender keeps re-fetching the line, so most
        // reloads hit somewhere in the hierarchy.
        let fast = samples.iter().filter(|s| s.level != HitLevel::Mem).count();
        assert!(
            fast as f64 / samples.len() as f64 > 0.7,
            "sender accesses should make reloads fast: {fast}/{}",
            samples.len()
        );
    }

    #[test]
    fn fr_l1_sender_misses_to_l2_only() {
        let (samples, thr) = run_fr(false, vec![true; 10], 3);
        // The receiver's reloads mostly hit L1 (sender refetched) —
        // and crucially nothing goes to memory.
        assert!(samples.iter().all(|s| s.level <= HitLevel::L2));
        let hits = samples.iter().filter(|s| s.measured <= thr).count();
        assert!(hits as f64 / samples.len() as f64 > 0.6);
    }

    #[test]
    fn fr_l1_reads_slow_when_sender_silent() {
        let (samples, thr) = run_fr(false, vec![false; 10], 4);
        let misses = samples.iter().filter(|s| s.measured > thr).count();
        assert!(
            misses as f64 / samples.len() as f64 > 0.8,
            "evicted line must read slow without the sender"
        );
    }

    #[test]
    #[should_panic(expected = "eviction set")]
    fn rejects_empty_eviction_set() {
        let _ =
            FlushReloadReceiver::new(VirtAddr::new(0), EvictionMethod::L1EvictionSet(vec![]), 100);
    }
}
