//! # attacks — baselines and transient-execution attacks
//!
//! The comparison half of the *"Leaking Information Through Cache LRU
//! States"* (HPCA 2020) reproduction: the classic cache channels the
//! paper measures against, the Spectre-v1 attack with the LRU channel
//! as disclosure primitive (§VIII), and the experiments behind
//! Tables V, VI and VII.
//!
//! * [`flush_reload`] — Flush+Reload, in the paper's two flavors:
//!   `clflush`-to-memory ("F+R (mem)") and L1-eviction-set
//!   ("F+R (L1)").
//! * [`prime_probe`] — Prime+Probe over one L1 set.
//! * [`primitive`] — the disclosure-primitive abstraction used by
//!   the Spectre harness, implemented by Flush+Reload and by LRU
//!   Algorithms 1 and 2.
//! * [`spectre`] — the end-to-end Spectre-v1 secret recovery over
//!   63 cache sets, with the Appendix-C random-order multi-round
//!   prefetcher-noise mitigation.
//! * [`encoding_time`] — Table V: sender encoding latency per
//!   channel.
//! * [`miss_rates`] — Tables VI/VII: performance-counter footprints
//!   of the channel senders and of the full Spectre attack.
//! * [`side_channel`] — the §III *side-channel* framing: a benign
//!   victim's secret-indexed table lookup recovered by a set
//!   monitor (no cooperation, no framing protocol).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoding_time;
pub mod flush_reload;
pub mod miss_rates;
pub mod prime_probe;
pub mod primitive;
pub mod side_channel;
pub mod spectre;

pub use primitive::DisclosurePrimitive;
pub use spectre::SpectreAttack;
