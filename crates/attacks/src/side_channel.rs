//! The *side-channel* variant of §III: the sender is a **benign
//! victim** whose memory accesses depend on a secret (the classic
//! example being a key-dependent table lookup), and the receiver
//! extracts the secret from the access pattern via the LRU states.
//!
//! This is the same machinery as the covert channel with the sender
//! replaced by an unwitting program: no cooperation, no framing
//! protocol — the attacker monitors all candidate sets and watches
//! which one the victim's lookup perturbs.

use cache_sim::addr::VirtAddr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use exec_sim::machine::{Machine, Pid};
use exec_sim::measure::LatencyProbe;
use lru_channel::params::Platform;
use lru_channel::setup::alloc_set_lines;

/// A benign victim that performs one table lookup indexed by a
/// secret: `load(table + secret * 64)` — one line per secret value,
/// so the touched L1 set reveals the value (e.g. an S-box row).
#[derive(Debug, Clone)]
pub struct TableLookupVictim {
    /// The victim's process.
    pub pid: Pid,
    /// Table base (64-byte entries spanning the L1 sets).
    pub table: VirtAddr,
    secret: u8,
}

impl TableLookupVictim {
    /// Builds the victim with its table and a secret in `0..63`.
    ///
    /// # Panics
    ///
    /// Panics if `secret >= 63` (the monitorable range).
    pub fn new(machine: &mut Machine, secret: u8) -> Self {
        assert!(secret < 63, "secret must be in 0..63");
        let pid = machine.create_process();
        let table = machine.alloc_pages(pid, 1);
        Self { pid, table, secret }
    }

    /// One invocation of the victim routine: a handful of benign
    /// loads plus the secret-indexed lookup.
    pub fn invoke(&self, machine: &mut Machine) {
        // Benign prologue traffic (stack-ish, set 63 = the probe
        // set's neighbourhood is avoided by using offsets < 64*63).
        machine.access(self.pid, self.table.add(self.secret as u64 * 64));
    }

    /// Ground truth for tests.
    pub fn secret(&self) -> u8 {
        self.secret
    }
}

/// The Algorithm-2 monitor: owns all 8 ways of every candidate set;
/// after the victim runs, the set whose `line 0` got evicted names
/// the secret.
#[derive(Debug)]
pub struct SetMonitor {
    pid: Pid,
    lines: Vec<Vec<VirtAddr>>,
    probe: LatencyProbe,
    threshold: u32,
}

impl SetMonitor {
    /// Allocates monitor state in its own process.
    pub fn new(machine: &mut Machine, platform: Platform) -> Self {
        let pid = machine.create_process();
        let geom = machine.hierarchy().l1().geometry();
        let ways = geom.ways();
        let lines = (0..63usize)
            .map(|s| alloc_set_lines(machine, pid, s, ways))
            .collect();
        let probe = LatencyProbe::new(machine, pid, platform.tsc, 63);
        Self {
            pid,
            lines,
            probe,
            threshold: platform.hit_threshold(),
        }
    }

    /// Primes every candidate set (the initialization phase).
    pub fn prime(&self, machine: &mut Machine) {
        for group in &self.lines {
            for &va in group {
                machine.access(self.pid, va);
            }
        }
    }

    /// Scans all sets in random order; returns those whose `line 0`
    /// now misses (i.e. the sets the victim touched).
    pub fn scan(&self, machine: &mut Machine, rng: &mut SmallRng) -> Vec<u8> {
        let mut order: Vec<usize> = (0..self.lines.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut touched = Vec::new();
        for s in order {
            let meas = self.probe.measure(machine, self.pid, self.lines[s][0], rng);
            if meas.measured > self.threshold {
                touched.push(s as u8);
            }
        }
        touched.sort_unstable();
        touched
    }
}

/// Runs the full side-channel attack: `rounds` of prime → victim →
/// scan, majority-voting the touched set. Returns the recovered
/// secret (255 if nothing was observed).
pub fn recover_table_index(
    machine: &mut Machine,
    victim: &TableLookupVictim,
    monitor: &SetMonitor,
    rounds: usize,
    seed: u64,
) -> u8 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut votes = [0usize; 63];
    for _ in 0..rounds {
        monitor.prime(machine);
        victim.invoke(machine);
        for v in monitor.scan(machine, &mut rng) {
            votes[v as usize] += 1;
        }
    }
    votes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &n)| n)
        .filter(|&(_, &n)| n > 0)
        .map(|(v, _)| v as u8)
        .unwrap_or(255)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::replacement::PolicyKind;

    fn machine() -> Machine {
        Machine::new(
            cache_sim::profiles::MicroArch::sandy_bridge_e5_2690(),
            PolicyKind::TreePlru,
            61,
        )
    }

    #[test]
    fn monitor_recovers_the_lookup_index() {
        let mut m = machine();
        for secret in [0u8, 7, 31, 62] {
            let victim = TableLookupVictim::new(&mut m, secret);
            let monitor = SetMonitor::new(&mut m, Platform::e5_2690());
            let got = recover_table_index(&mut m, &victim, &monitor, 5, 62);
            assert_eq!(got, secret, "failed to recover secret {secret}");
        }
    }

    #[test]
    fn quiet_victim_yields_nothing() {
        let mut m = machine();
        let monitor = SetMonitor::new(&mut m, Platform::e5_2690());
        let victim = TableLookupVictim::new(&mut m, 5);
        // Scan without invoking the victim: after two priming
        // rounds the sets are quiet.
        let mut rng = SmallRng::seed_from_u64(1);
        monitor.prime(&mut m);
        monitor.prime(&mut m);
        let touched = monitor.scan(&mut m, &mut rng);
        assert!(touched.is_empty(), "quiet scan saw {touched:?}");
        let _ = victim;
    }

    #[test]
    fn randomized_l1_policy_blinds_the_monitor() {
        // With Random replacement in the L1 the monitor's decode step
        // loses its meaning (§IX-A applied to the side channel).
        let mut m = Machine::new(
            cache_sim::profiles::MicroArch::sandy_bridge_e5_2690(),
            PolicyKind::Random,
            63,
        );
        let victim = TableLookupVictim::new(&mut m, 13);
        let monitor = SetMonitor::new(&mut m, Platform::e5_2690());
        let mut hits = 0;
        for round in 0..10 {
            let got = recover_table_index(&mut m, &victim, &monitor, 1, round);
            if got == 13 {
                hits += 1;
            }
        }
        assert!(
            hits <= 5,
            "random replacement should mostly hide the lookup, got {hits}/10"
        );
    }

    #[test]
    #[should_panic(expected = "secret must be in 0..63")]
    fn rejects_out_of_range_secret() {
        let mut m = machine();
        let _ = TableLookupVictim::new(&mut m, 63);
    }
}
