//! The end-to-end Spectre-v1 attack of §VIII: recover a secret
//! string through any [`DisclosurePrimitive`], with the Appendix-C
//! multi-round random-order mitigation against prefetcher noise.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use exec_sim::machine::Machine;
use exec_sim::speculation::{SpecMode, SpectreVictim};

use crate::primitive::{DisclosurePrimitive, SYMBOL_VALUES};

/// The 63-symbol alphabet used by the demos (the paper's setup
/// supports 63 distinct values — 63 usable cache sets).
pub const ALPHABET: &[u8; 63] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";

/// Encodes text into 6-bit symbols (`0..63`). Characters outside the
/// alphabet map to the space symbol.
pub fn encode_symbols(text: &str) -> Vec<u8> {
    text.bytes()
        .map(|b| {
            ALPHABET
                .iter()
                .position(|&a| a == b)
                .unwrap_or(ALPHABET.len() - 1) as u8
        })
        .collect()
}

/// Decodes 6-bit symbols back to text ('?' for out-of-range).
pub fn decode_symbols(symbols: &[u8]) -> String {
    symbols
        .iter()
        .map(|&s| {
            if (s as usize) < ALPHABET.len() {
                ALPHABET[s as usize] as char
            } else {
                '?'
            }
        })
        .collect()
}

/// Configuration of one Spectre run.
#[derive(Debug, Clone, Copy)]
pub struct SpectreAttack {
    /// Attack rounds per secret symbol; each round scans the sets in
    /// a fresh random order and the rounds vote (Appendix C).
    pub rounds: usize,
    /// Predictor-training calls before each malicious invocation.
    pub train_calls: usize,
    /// Speculation behaviour of the machine (Baseline, or Invisible
    /// for the InvisiSpec defense ablation).
    pub mode: SpecMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpectreAttack {
    fn default() -> Self {
        Self {
            rounds: 7,
            train_calls: 5,
            mode: SpecMode::Baseline,
            seed: 0x5bec,
        }
    }
}

impl SpectreAttack {
    /// Recovers `len` secret symbols starting at `secret_offset`
    /// from `victim.array1`, using `primitive` as the disclosure
    /// channel. Returns one recovered symbol per position (255 when
    /// no round produced a candidate).
    ///
    /// Each symbol is measured differentially: `rounds` *attack*
    /// rounds (malicious out-of-bounds call) and `rounds` *baseline*
    /// rounds (benign in-bounds call). The gadget's own `array1[x]`
    /// load and any prefetcher shadows pollute both kinds of round
    /// identically, so subtracting the baseline votes isolates the
    /// secret-dependent probe access — the practical counterpart of
    /// the paper's Appendix-C averaging.
    pub fn recover(
        &self,
        machine: &mut Machine,
        victim: &mut SpectreVictim,
        primitive: &mut dyn DisclosurePrimitive,
        secret_offset: u64,
        len: usize,
    ) -> Vec<u8> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let mut attack_votes: HashMap<u8, usize> = HashMap::new();
            let mut baseline_votes: HashMap<u8, usize> = HashMap::new();
            for r in 0..self.rounds {
                // Attack round: train toward taken, re-arm, one
                // malicious call, read back.
                victim.train(machine, self.train_calls);
                primitive.prepare(machine);
                victim.call(machine, secret_offset + i as u64, self.mode);
                for v in primitive.decode(machine, &mut rng) {
                    if v < SYMBOL_VALUES {
                        *attack_votes.entry(v).or_insert(0) += 1;
                    }
                }
                // Baseline round: identical, but the victim call is
                // in bounds (rotating x spreads the benign
                // array2[array1[x]] pollution thin).
                victim.train(machine, self.train_calls);
                primitive.prepare(machine);
                victim.call(machine, r as u64 % victim.array1_size, self.mode);
                for v in primitive.decode(machine, &mut rng) {
                    if v < SYMBOL_VALUES {
                        *baseline_votes.entry(v).or_insert(0) += 1;
                    }
                }
            }
            out.push(resolve_votes(&attack_votes, &baseline_votes, self.rounds));
        }
        out
    }
}

/// Differential vote resolution: score = attack votes − baseline
/// votes; the candidate with the highest positive score wins, except
/// that of two adjacent candidates with comparable scores the
/// *smaller* is chosen — a next-line prefetcher always shadows the
/// true access at `v + 1`, never below it. When nothing clears the
/// noise floor, fall back to the raw attack majority (covers the
/// corner where the secret value collides with the gadget's own set,
/// so subtraction cancels the true signal too).
fn resolve_votes(attack: &HashMap<u8, usize>, baseline: &HashMap<u8, usize>, rounds: usize) -> u8 {
    let mut ranked: Vec<(i64, std::cmp::Reverse<u8>, u8)> = attack
        .iter()
        .map(|(&v, &n)| {
            let b = baseline.get(&v).copied().unwrap_or(0);
            (n as i64 - b as i64, std::cmp::Reverse(v), v)
        })
        .collect();
    ranked.sort_unstable_by(|a, b| b.cmp(a));
    match ranked.as_slice() {
        [(score, _, v), rest @ ..] if *score as usize * 3 >= rounds.max(1) => {
            // Prefetch-shadow tiebreak: prefer v-1 when it scored
            // comparably (the shadow trails the true access).
            if let Some(&(s2, _, v2)) = rest.first() {
                if v2 + 1 == *v && s2 * 2 >= *score {
                    return v2;
                }
            }
            *v
        }
        _ => {
            // No differential winner: raw attack majority.
            let mut raw: Vec<(usize, std::cmp::Reverse<u8>, u8)> = attack
                .iter()
                .map(|(&v, &n)| (n, std::cmp::Reverse(v), v))
                .collect();
            raw.sort_unstable_by(|a, b| b.cmp(a));
            raw.first().map(|&(_, _, v)| v).unwrap_or(255)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::{FlushReloadPrimitive, LruAlg1Primitive, LruAlg2Primitive};
    use cache_sim::prefetcher::Prefetcher;
    use cache_sim::profiles::MicroArch;
    use cache_sim::replacement::PolicyKind;
    use exec_sim::speculation::build_victim;
    use lru_channel::params::Platform;

    const SECRET: &str = "Squeamish";

    fn machine() -> Machine {
        Machine::new(MicroArch::sandy_bridge_e5_2690(), PolicyKind::TreePlru, 7)
    }

    #[test]
    fn symbol_codec_round_trips() {
        let syms = encode_symbols(SECRET);
        assert!(syms.iter().all(|&s| s < SYMBOL_VALUES));
        assert_eq!(decode_symbols(&syms), SECRET);
        // Out-of-alphabet characters map to space.
        assert_eq!(decode_symbols(&encode_symbols("a!b")), "a b");
    }

    fn run_with<P, F>(build: F) -> String
    where
        P: DisclosurePrimitive,
        F: FnOnce(&mut Machine, exec_sim::machine::Pid, cache_sim::addr::VirtAddr) -> P,
    {
        let mut m = machine();
        let secret = encode_symbols(SECRET);
        let (mut victim, off) = build_victim(&mut m, &secret, 8);
        let mut prim = build(&mut m, victim.pid, victim.array2);
        let got =
            SpectreAttack::default().recover(&mut m, &mut victim, &mut prim, off, secret.len());
        decode_symbols(&got)
    }

    #[test]
    fn spectre_via_flush_reload_recovers_secret() {
        let got = run_with(|_m, pid, a2| FlushReloadPrimitive::new(pid, a2, Platform::e5_2690()));
        assert_eq!(got, SECRET);
    }

    #[test]
    fn spectre_via_lru_alg1_recovers_secret() {
        let got = run_with(|m, pid, a2| LruAlg1Primitive::new(m, pid, a2, Platform::e5_2690()));
        assert_eq!(got, SECRET);
    }

    #[test]
    fn spectre_via_lru_alg2_recovers_secret() {
        let got = run_with(|m, pid, a2| LruAlg2Primitive::new(m, pid, a2, Platform::e5_2690()));
        assert_eq!(got, SECRET);
    }

    #[test]
    fn invisible_speculation_defeats_the_lru_channel() {
        let mut m = machine();
        let secret = encode_symbols("K9");
        let (mut victim, off) = build_victim(&mut m, &secret, 8);
        let mut prim =
            LruAlg1Primitive::new(&mut m, victim.pid, victim.array2, Platform::e5_2690());
        let attack = SpectreAttack {
            mode: SpecMode::Invisible,
            ..SpectreAttack::default()
        };
        let got = attack.recover(&mut m, &mut victim, &mut prim, off, secret.len());
        assert_ne!(
            decode_symbols(&got),
            "K9",
            "InvisiSpec-style defense must stop the leak"
        );
    }

    #[test]
    fn prefetcher_noise_is_defeated_by_rounds_and_voting() {
        // Appendix C: attach a next-line prefetcher and check the
        // multi-round random-order attack still recovers the secret.
        let mut m = machine();
        *m.hierarchy_mut() = MicroArch::sandy_bridge_e5_2690()
            .build_hierarchy(PolicyKind::TreePlru, 7)
            .with_prefetcher(Prefetcher::next_line());
        let secret = encode_symbols("magic");
        let (mut victim, off) = build_victim(&mut m, &secret, 8);
        let mut prim =
            LruAlg2Primitive::new(&mut m, victim.pid, victim.array2, Platform::e5_2690());
        let attack = SpectreAttack {
            rounds: 11,
            ..SpectreAttack::default()
        };
        let got = attack.recover(&mut m, &mut victim, &mut prim, off, secret.len());
        let text = decode_symbols(&got);
        let correct = text
            .bytes()
            .zip("magic".bytes())
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            correct >= 4,
            "rounds+voting should recover most symbols under prefetch noise, got {text:?}"
        );
    }

    #[test]
    fn vote_resolution_subtracts_baseline() {
        let mut attack = HashMap::new();
        attack.insert(10u8, 7usize); // true signal
        attack.insert(0u8, 7usize); // gadget set (also in baseline)
        let mut baseline = HashMap::new();
        baseline.insert(0u8, 7usize);
        assert_eq!(resolve_votes(&attack, &baseline, 7), 10);
        // Secret colliding with the gadget set: subtraction cancels,
        // the raw-majority fallback still answers.
        let mut attack = HashMap::new();
        attack.insert(0u8, 7usize);
        let mut baseline = HashMap::new();
        baseline.insert(0u8, 7usize);
        assert_eq!(resolve_votes(&attack, &baseline, 7), 0);
        assert_eq!(resolve_votes(&HashMap::new(), &HashMap::new(), 7), 255);
    }
}
