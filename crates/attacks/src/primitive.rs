//! Disclosure primitives for transient-execution attacks (§VIII).
//!
//! A Spectre attack needs two halves: transient access to the secret
//! and a *disclosure primitive* that carries the transiently-touched
//! value to the attacker. The paper's observation is that its LRU
//! channels slot into exactly the same place as Flush+Reload — the
//! victim code is unchanged — while needing a much smaller
//! speculation window, because the transient probe access may be a
//! cache *hit*.
//!
//! All primitives here recover a 6-bit symbol `v ∈ 0..63`: the
//! paper's demonstration uses 63 of the 64 L1 sets (one is reserved
//! for the receiver's pointer-chase chain), with the probe array
//! indexed at 64-byte stride so the L1 set *is* the value.

use cache_sim::addr::VirtAddr;
use rand::rngs::SmallRng;
use rand::Rng;

use exec_sim::machine::{Machine, Pid};
use exec_sim::measure::{rdtscp_single, LatencyProbe};
use lru_channel::params::Platform;
use lru_channel::setup::alloc_set_lines;

/// Number of recoverable symbol values (63 usable sets).
pub const SYMBOL_VALUES: u8 = 63;

/// A mechanism for recovering which probe line the victim touched
/// transiently.
pub trait DisclosurePrimitive {
    /// Human-readable channel name (as in the paper's tables).
    fn name(&self) -> &'static str;

    /// Establishes the pre-attack cache/LRU state. Called after
    /// predictor training, immediately before the victim's
    /// malicious invocation.
    fn prepare(&mut self, machine: &mut Machine);

    /// Reads the state back and returns **every** candidate value
    /// observed. `rng` drives the random scan order of Appendix C.
    ///
    /// Candidates are raw: the gadget's own `array1[x]` load and
    /// prefetcher shadows show up too. The attack driver cancels
    /// those with baseline (in-bounds) rounds and majority voting —
    /// see [`crate::spectre::SpectreAttack`].
    fn decode(&mut self, machine: &mut Machine, rng: &mut SmallRng) -> Vec<u8>;
}

/// Scan order helper: 0..SYMBOL_VALUES shuffled (Appendix C: "the
/// cache sets are accessed in a different random order" each round,
/// so prefetcher pollution decorrelates across rounds).
fn shuffled_values(rng: &mut SmallRng) -> Vec<u8> {
    let mut vals: Vec<u8> = (0..SYMBOL_VALUES).collect();
    for i in (1..vals.len()).rev() {
        vals.swap(i, rng.gen_range(0..=i));
    }
    vals
}

/// Flush+Reload as the disclosure primitive (the classic Spectre
/// PoC): flush all probe lines, let the victim run, reload each and
/// time it with `rdtscp` (memory vs. cached is visible even to the
/// naive timer).
#[derive(Debug, Clone)]
pub struct FlushReloadPrimitive {
    pid: Pid,
    array2: VirtAddr,
    platform: Platform,
}

impl FlushReloadPrimitive {
    /// Builds the primitive over the victim's probe array.
    pub fn new(pid: Pid, array2: VirtAddr, platform: Platform) -> Self {
        Self {
            pid,
            array2,
            platform,
        }
    }

    fn probe_line(&self, v: u8) -> VirtAddr {
        self.array2.add(v as u64 * 64)
    }
}

impl DisclosurePrimitive for FlushReloadPrimitive {
    fn name(&self) -> &'static str {
        "F+R (mem)"
    }

    fn prepare(&mut self, machine: &mut Machine) {
        for v in 0..SYMBOL_VALUES {
            machine.flush(self.pid, self.probe_line(v));
        }
    }

    fn decode(&mut self, machine: &mut Machine, rng: &mut SmallRng) -> Vec<u8> {
        // Anything measurably below a memory round trip is cached.
        let mem_floor = self.platform.tsc.overhead + self.platform.arch.latencies.mem / 2;
        let mut found = Vec::new();
        for v in shuffled_values(rng) {
            let meas = rdtscp_single(
                machine,
                self.pid,
                self.probe_line(v),
                &self.platform.tsc,
                rng,
            );
            if meas.measured < mem_floor {
                found.push(v);
            }
        }
        found
    }
}

/// LRU Algorithm 1 as the disclosure primitive: per candidate set,
/// `line 0` *is* the victim's probe line (same address space), kept
/// resident; the victim's transient access is an L1 **hit** that
/// only refreshes the LRU state — the stealthiest variant.
#[derive(Debug)]
pub struct LruAlg1Primitive {
    pid: Pid,
    /// `lines[v][0]` aliases `array2 + v*64`; `lines[v][1..=8]` are
    /// attacker-private lines of the same set.
    lines: Vec<Vec<VirtAddr>>,
    probe: LatencyProbe,
    threshold: u32,
}

impl LruAlg1Primitive {
    /// Allocates per-set line groups and the measurement chain.
    pub fn new(machine: &mut Machine, pid: Pid, array2: VirtAddr, platform: Platform) -> Self {
        let geom = machine.hierarchy().l1().geometry();
        let ways = geom.ways();
        let mut lines = Vec::with_capacity(SYMBOL_VALUES as usize);
        for v in 0..SYMBOL_VALUES {
            let target_set = geom.set_index(array2.add(v as u64 * 64).raw());
            let mut group = vec![array2.add(v as u64 * 64)];
            group.extend(alloc_set_lines(machine, pid, target_set, ways));
            lines.push(group);
        }
        let probe = LatencyProbe::new(machine, pid, platform.tsc, 63);
        Self {
            pid,
            lines,
            probe,
            threshold: platform.hit_threshold(),
        }
    }
}

impl DisclosurePrimitive for LruAlg1Primitive {
    fn name(&self) -> &'static str {
        "L1 LRU Alg.1"
    }

    fn prepare(&mut self, machine: &mut Machine) {
        // Initialization phase with d = 8: touch lines 0..7 of every
        // candidate set in order (line 0 resident and *oldest*).
        for group in &self.lines {
            for &va in &group[..8] {
                machine.access(self.pid, va);
            }
        }
    }

    fn decode(&mut self, machine: &mut Machine, rng: &mut SmallRng) -> Vec<u8> {
        let mut found = Vec::new();
        for v in shuffled_values(rng) {
            let group = &self.lines[v as usize];
            // Decoding phase: the 9th line forces a replacement...
            machine.access(self.pid, group[8]);
            // ...then the timed access to line 0 reveals whether the
            // victim's (transient, hitting) access protected it.
            let meas = self.probe.measure(machine, self.pid, group[0], rng);
            if meas.measured <= self.threshold {
                found.push(v);
            }
        }
        found
    }
}

/// LRU Algorithm 2 as the disclosure primitive: the attacker owns
/// all 8 lines of each candidate set; the victim's transient access
/// is a 9th line whose replacement evicts the attacker's `line 0`.
#[derive(Debug)]
pub struct LruAlg2Primitive {
    pid: Pid,
    lines: Vec<Vec<VirtAddr>>,
    probe: LatencyProbe,
    threshold: u32,
}

impl LruAlg2Primitive {
    /// Allocates per-set line groups and the measurement chain.
    pub fn new(machine: &mut Machine, pid: Pid, array2: VirtAddr, platform: Platform) -> Self {
        let geom = machine.hierarchy().l1().geometry();
        let ways = geom.ways();
        let mut lines = Vec::with_capacity(SYMBOL_VALUES as usize);
        for v in 0..SYMBOL_VALUES {
            let target_set = geom.set_index(array2.add(v as u64 * 64).raw());
            lines.push(alloc_set_lines(machine, pid, target_set, ways));
        }
        let probe = LatencyProbe::new(machine, pid, platform.tsc, 63);
        Self {
            pid,
            lines,
            probe,
            threshold: platform.hit_threshold(),
        }
    }
}

impl DisclosurePrimitive for LruAlg2Primitive {
    fn name(&self) -> &'static str {
        "L1 LRU Alg.2"
    }

    fn prepare(&mut self, machine: &mut Machine) {
        // Occupy every way of every candidate set, in order (the
        // sequential initial condition of Table I).
        for group in &self.lines {
            for &va in group {
                machine.access(self.pid, va);
            }
        }
    }

    fn decode(&mut self, machine: &mut Machine, rng: &mut SmallRng) -> Vec<u8> {
        let mut found = Vec::new();
        for v in shuffled_values(rng) {
            let group = &self.lines[v as usize];
            // If the victim touched this set, its fill evicted the
            // PLRU victim — which the sequential init made line 0 —
            // so a *slow* line 0 identifies the set.
            let meas = self.probe.measure(machine, self.pid, group[0], rng);
            if meas.measured > self.threshold {
                found.push(v);
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::replacement::PolicyKind;
    use exec_sim::speculation::build_victim;
    use rand::SeedableRng;

    fn setup() -> (Machine, exec_sim::speculation::SpectreVictim, u64, Platform) {
        let platform = Platform::e5_2690();
        let mut m = Machine::new(platform.arch, PolicyKind::TreePlru, 5);
        let (victim, off) = build_victim(&mut m, &[42], 8);
        (m, victim, off, platform)
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut vals = shuffled_values(&mut rng);
        vals.sort_unstable();
        assert_eq!(vals, (0..SYMBOL_VALUES).collect::<Vec<_>>());
    }

    #[test]
    fn flush_reload_recovers_transient_value() {
        let (mut m, mut victim, off, platform) = setup();
        let mut prim = FlushReloadPrimitive::new(victim.pid, victim.array2, platform);
        let mut rng = SmallRng::seed_from_u64(2);
        victim.train(&mut m, 6);
        prim.prepare(&mut m);
        victim.call(&mut m, off, exec_sim::speculation::SpecMode::Baseline);
        assert!(prim.decode(&mut m, &mut rng).contains(&42));
    }

    #[test]
    fn alg1_recovers_transient_value_via_hit() {
        let (mut m, mut victim, off, platform) = setup();
        let mut prim = LruAlg1Primitive::new(&mut m, victim.pid, victim.array2, platform);
        let mut rng = SmallRng::seed_from_u64(3);
        victim.train(&mut m, 6);
        prim.prepare(&mut m);
        // The probe line is already resident: the victim's transient
        // access is a *hit* (the paper's §VIII stealth point).
        assert_eq!(
            m.probe_level(victim.pid, victim.array2.add(42 * 64)),
            cache_sim::hierarchy::HitLevel::L1
        );
        victim.call(&mut m, off, exec_sim::speculation::SpecMode::Baseline);
        assert!(prim.decode(&mut m, &mut rng).contains(&42));
    }

    #[test]
    fn alg2_recovers_transient_value_via_eviction() {
        let (mut m, mut victim, off, platform) = setup();
        let mut prim = LruAlg2Primitive::new(&mut m, victim.pid, victim.array2, platform);
        let mut rng = SmallRng::seed_from_u64(4);
        victim.train(&mut m, 6);
        prim.prepare(&mut m);
        victim.call(&mut m, off, exec_sim::speculation::SpecMode::Baseline);
        assert!(prim.decode(&mut m, &mut rng).contains(&42));
    }

    #[test]
    fn no_transient_access_decodes_to_nothing_or_wrong_rarely() {
        // Without a victim call, Alg1 should find no resident
        // line 0 surviving the decode sweep... except PLRU residue.
        let (mut m, _victim, _off, platform) = setup();
        let pid = exec_sim::machine::Pid(0);
        let mut prim = LruAlg2Primitive::new(&mut m, pid, VirtAddr::from_page(500, 0), platform);
        // array2 page 500 is unmapped for accesses — use the probe
        // lines themselves only.
        let mut rng = SmallRng::seed_from_u64(5);
        prim.prepare(&mut m);
        let got = prim.decode(&mut m, &mut rng);
        assert!(
            got.is_empty(),
            "quiet sets must decode to nothing, got {got:?}"
        );
    }
}
