//! Table V: latency of the sender's encoding operation per channel.
//!
//! The sender's encode step is one memory access plus the address
//! arithmetic around it; what differs between channels is the cache
//! state that access finds. Flush+Reload (mem) finds its line
//! flushed to memory; Flush+Reload (L1) finds it evicted to L2; the
//! LRU channels find it *resident in L1* (the paper assumes "the
//! victim line is already in cache before the attack"), which is why
//! their encode is the cheapest and needs the smallest speculation
//! window.

use cache_sim::replacement::PolicyKind;
use exec_sim::machine::Machine;
use lru_channel::params::Platform;
use lru_channel::protocol::DEFAULT_ENCODE_CALC;
use lru_channel::setup::alloc_set_lines;

/// The channels compared by Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodedChannel {
    /// Flush+Reload with `clflush` (line starts in memory).
    FlushReloadMem,
    /// Flush+Reload with an L1 eviction set (line starts in L2).
    FlushReloadL1,
    /// LRU Algorithms 1 & 2 (line starts in L1; the paper reports
    /// one number for both).
    LruChannel,
}

impl EncodedChannel {
    /// All rows of Table V.
    pub const ALL: [EncodedChannel; 3] = [
        EncodedChannel::FlushReloadMem,
        EncodedChannel::FlushReloadL1,
        EncodedChannel::LruChannel,
    ];

    /// Table column header.
    pub fn label(&self) -> &'static str {
        match self {
            EncodedChannel::FlushReloadMem => "F+R (mem)",
            EncodedChannel::FlushReloadL1 => "F+R (L1)",
            EncodedChannel::LruChannel => "L1 LRU (Alg.1&2)",
        }
    }
}

/// Measures the sender's encode latency in cycles on `platform` by
/// setting up the channel's pre-access cache state and executing the
/// access (address calculation included, as in the paper).
pub fn encoding_latency(platform: Platform, channel: EncodedChannel) -> u32 {
    let mut machine = Machine::new(platform.arch, PolicyKind::TreePlru, 1);
    let pid = machine.create_process();
    let lines = alloc_set_lines(&mut machine, pid, 0, 9);
    let target = lines[0];

    // Bring the line to the state the channel's receiver leaves it in.
    machine.access(pid, target); // resident everywhere
    match channel {
        EncodedChannel::FlushReloadMem => machine.flush(pid, target),
        EncodedChannel::FlushReloadL1 => {
            // Evict from L1 only, by filling the set.
            for &va in &lines[1..9] {
                machine.access(pid, va);
            }
        }
        EncodedChannel::LruChannel => {
            // Keep it resident in L1 (re-touch to be sure).
            machine.access(pid, target);
        }
    }

    let out = machine.access(pid, target);
    DEFAULT_ENCODE_CALC + out.cycles
}

/// The full Table V: rows = channels, columns = platforms.
pub fn table5() -> Vec<(EncodedChannel, Vec<(Platform, u32)>)> {
    EncodedChannel::ALL
        .iter()
        .map(|&ch| {
            let cols = Platform::all()
                .iter()
                .map(|&p| (p, encoding_latency(p, ch)))
                .collect();
            (ch, cols)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_encode_is_cheapest_fr_mem_most_expensive() {
        // The Table V ordering on every platform.
        for platform in Platform::all() {
            let mem = encoding_latency(platform, EncodedChannel::FlushReloadMem);
            let l1 = encoding_latency(platform, EncodedChannel::FlushReloadL1);
            let lru = encoding_latency(platform, EncodedChannel::LruChannel);
            assert!(
                lru < l1,
                "{}: LRU {lru} !< F+R(L1) {l1}",
                platform.arch.model
            );
            assert!(
                l1 < mem,
                "{}: F+R(L1) {l1} !< F+R(mem) {mem}",
                platform.arch.model
            );
        }
    }

    #[test]
    fn lru_encode_magnitude_matches_paper() {
        // Paper Table V: 31 cycles on the E5-2690.
        let lru = encoding_latency(Platform::e5_2690(), EncodedChannel::LruChannel);
        assert!(
            (25..=45).contains(&lru),
            "LRU encode should be ~31 cycles, got {lru}"
        );
    }

    #[test]
    fn fr_mem_costs_a_memory_round_trip() {
        let mem = encoding_latency(Platform::e5_2690(), EncodedChannel::FlushReloadMem);
        assert!(
            mem > 150,
            "F+R(mem) encode must include memory latency, got {mem}"
        );
    }

    #[test]
    fn table5_is_3_by_3() {
        let t = table5();
        assert_eq!(t.len(), 3);
        for (_, cols) in &t {
            assert_eq!(cols.len(), 3);
        }
    }
}
