//! Prime+Probe (Osvik, Shamir & Tromer 2006) over one L1 set.
//!
//! The receiver *primes* a whole set with its own `N` lines, sleeps,
//! then *probes* all `N` lines, timing the sweep: any probe miss
//! means someone displaced a primed line. The paper contrasts this
//! with LRU Algorithm 2 (§VII): both need no shared memory, but
//! Prime+Probe times `N` loads per observation where the LRU channel
//! times one.

use cache_sim::addr::VirtAddr;
use exec_sim::program::{Op, OpResult, Program};

/// One probe-sweep observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSample {
    /// Completion time of the sweep.
    pub at: u64,
    /// Sum of the timed readouts of all `N` probes.
    pub total_measured: u32,
    /// How many probes missed L1 (ground truth).
    pub misses: u32,
}

/// The Prime+Probe receiver program.
#[derive(Debug, Clone)]
pub struct PrimeProbeReceiver {
    lines: Vec<VirtAddr>,
    tr: u64,
    phase: Phase,
    idx: usize,
    wake_at: u64,
    current_sum: u32,
    current_misses: u32,
    max_samples: Option<usize>,
    samples: Vec<ProbeSample>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Prime,
    Wait,
    Probe,
}

impl PrimeProbeReceiver {
    /// A receiver priming and probing `lines` every `tr` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is empty or `tr == 0`.
    pub fn new(lines: Vec<VirtAddr>, tr: u64) -> Self {
        assert!(!lines.is_empty(), "prime set must not be empty");
        assert!(tr > 0, "tr must be positive");
        Self {
            lines,
            tr,
            phase: Phase::Prime,
            idx: 0,
            wake_at: 0,
            current_sum: 0,
            current_misses: 0,
            max_samples: None,
            samples: Vec::new(),
        }
    }

    /// Stops after `n` probe sweeps.
    #[must_use]
    pub fn with_max_samples(mut self, n: usize) -> Self {
        self.max_samples = Some(n);
        self
    }

    /// Sweep observations so far.
    pub fn samples(&self) -> &[ProbeSample] {
        &self.samples
    }

    /// Consumes the receiver, returning its observations.
    pub fn into_samples(self) -> Vec<ProbeSample> {
        self.samples
    }
}

impl Program for PrimeProbeReceiver {
    fn next_op(&mut self, now: u64) -> Op {
        loop {
            match self.phase {
                Phase::Prime => {
                    if self.max_samples.is_some_and(|n| self.samples.len() >= n) {
                        return Op::Done;
                    }
                    if self.idx < self.lines.len() {
                        self.idx += 1;
                        return Op::Access(self.lines[self.idx - 1]);
                    }
                    self.phase = Phase::Wait;
                }
                Phase::Wait => {
                    if now < self.wake_at {
                        return Op::SpinUntil(self.wake_at);
                    }
                    self.wake_at = now + self.tr;
                    self.phase = Phase::Probe;
                    self.idx = 0;
                    self.current_sum = 0;
                    self.current_misses = 0;
                }
                Phase::Probe => {
                    if self.idx < self.lines.len() {
                        self.idx += 1;
                        return Op::TimedAccess(self.lines[self.idx - 1]);
                    }
                    // Sweep complete.
                    self.samples.push(ProbeSample {
                        at: now,
                        total_measured: self.current_sum,
                        misses: self.current_misses,
                    });
                    self.phase = Phase::Prime;
                    self.idx = 0;
                }
            }
        }
    }

    fn on_result(&mut self, result: &OpResult) {
        if let Some(measured) = result.measured {
            self.current_sum += measured;
            if result.level != Some(cache_sim::hierarchy::HitLevel::L1) {
                self.current_misses += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::profiles::MicroArch;
    use cache_sim::replacement::PolicyKind;
    use exec_sim::machine::Machine;
    use exec_sim::measure::LatencyProbe;
    use exec_sim::sched::{HyperThreaded, ThreadHandle};
    use exec_sim::tsc::TscModel;
    use lru_channel::protocol::LruSender;
    use lru_channel::setup;

    fn run_pp(message: Vec<bool>, seed: u64) -> Vec<ProbeSample> {
        let mut m = Machine::new(
            MicroArch::sandy_bridge_e5_2690(),
            PolicyKind::TreePlru,
            seed,
        );
        let s = m.create_process();
        let r = m.create_process();
        let ep = setup::alg2(&mut m, s, r, 0);
        let ts = 6_000;
        let mut sender = LruSender::new(ep.sender_line, message.clone(), ts);
        let mut receiver = PrimeProbeReceiver::new(ep.receiver_lines.clone(), 600);
        let probe = LatencyProbe::new(&mut m, r, TscModel::intel(), 63);
        let limit = (message.len() as u64 + 1) * ts;
        HyperThreaded::new(seed).run(
            &mut m,
            &mut [
                ThreadHandle::new(s, &mut sender),
                ThreadHandle::with_probe(r, &mut receiver, probe),
            ],
            limit,
        );
        receiver.into_samples()
    }

    #[test]
    fn quiet_set_probes_all_hits() {
        let samples = run_pp(vec![false; 8], 1);
        assert!(!samples.is_empty());
        // After the first sweep (cold), probes all hit.
        let steady = &samples[2..];
        let clean = steady.iter().filter(|s| s.misses == 0).count();
        assert!(
            clean as f64 / steady.len() as f64 > 0.9,
            "quiet set must probe clean"
        );
    }

    #[test]
    fn sender_activity_causes_probe_misses() {
        let samples = run_pp(vec![true; 8], 2);
        let steady = &samples[2..];
        let noisy = steady.iter().filter(|s| s.misses > 0).count();
        assert!(
            noisy as f64 / steady.len() as f64 > 0.7,
            "sender accesses must displace primed lines"
        );
    }

    #[test]
    fn total_measured_tracks_misses() {
        let quiet = run_pp(vec![false; 8], 3);
        let busy = run_pp(vec![true; 8], 3);
        let mean = |v: &[ProbeSample]| {
            v[2..].iter().map(|s| s.total_measured as f64).sum::<f64>() / (v.len() - 2) as f64
        };
        assert!(
            mean(&busy) > mean(&quiet) + 4.0,
            "probe sweep time must rise under contention"
        );
    }

    #[test]
    #[should_panic(expected = "prime set")]
    fn rejects_empty_prime_set() {
        let _ = PrimeProbeReceiver::new(vec![], 100);
    }
}
