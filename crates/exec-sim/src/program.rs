//! The vocabulary sender/receiver programs are written in.
//!
//! A [`Program`] is a resumable state machine: the scheduler asks it
//! for its [`Op`] at the current time, executes the op against the
//! shared [`crate::machine::Machine`], charges the cost, and hands
//! the outcome back through [`Program::on_result`]. This models the
//! paper's setting faithfully: both parties are straight-line loops
//! whose only interaction is through the shared cache.

use cache_sim::addr::VirtAddr;
use cache_sim::hierarchy::HitLevel;

use crate::block::BlockCtx;

/// The cache lines a program may touch over its whole lifetime — the
/// footprint hint behind the scheduler's quantum fast-forward.
///
/// Declaring [`Footprint::Lines`] is a *promise*: every address the
/// program will ever pass to an `Access`, `TimedAccess` or `Flush`
/// op (or to [`BlockCtx::access`]) lies within the declared ranges.
/// The scheduler uses the hint to prove that a thread's quantum
/// cannot change any state another party observes — and then skips
/// simulating it. An over-narrow declaration silently breaks that
/// proof, so when in doubt return [`Footprint::Unknown`] (the
/// default), which only opts the program out of fast-forwarding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Footprint {
    /// The program may touch anything; never fast-forwarded.
    Unknown,
    /// The program touches only whole cache lines inside these
    /// `(base, lines)` ranges — 64-byte lines starting at `base`
    /// (the line size of every modelled L1; the scheduler declines
    /// to fast-forward on hypothetical smaller-line geometries).
    Lines(Vec<(VirtAddr, u64)>),
}

/// One step of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// An untimed load of `va` (the sender's encode step, the
    /// receiver's init/decode accesses).
    Access(VirtAddr),
    /// A pointer-chase-timed load of `va` (the receiver's final
    /// "access line 0 and time the access"). Requires the thread to
    /// carry a [`crate::measure::LatencyProbe`].
    TimedAccess(VirtAddr),
    /// `clflush` of `va`'s line (Flush+Reload baseline).
    Flush(VirtAddr),
    /// Busy work for a fixed number of cycles (address arithmetic,
    /// logging, ...).
    Compute(u32),
    /// Spin until the global timestamp counter reaches the value
    /// (Algorithm 3's `while TSC < T_last + Tr`). May be returned
    /// repeatedly; the scheduler advances time and asks again.
    SpinUntil(u64),
    /// The program has finished.
    Done,
}

/// Outcome of one executed op, delivered to [`Program::on_result`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpResult {
    /// Cycles the op cost this thread.
    pub cycles: u64,
    /// Which cache level served an `Access`/`TimedAccess`.
    pub level: Option<HitLevel>,
    /// Timer readout of a `TimedAccess`.
    pub measured: Option<u32>,
    /// Thread-local time when the op completed.
    pub completed_at: u64,
}

/// A resumable single-thread workload.
///
/// Implementations must tolerate `next_op` being called again after
/// returning [`Op::SpinUntil`] (time-sliced scheduling interrupts
/// spins at quantum boundaries) — i.e. derive the op from the `now`
/// argument and internal phase, not from a consumed iterator alone.
pub trait Program {
    /// The op to execute at thread-local time `now`.
    fn next_op(&mut self, now: u64) -> Op;

    /// Delivery of the outcome of the op most recently returned by
    /// [`Program::next_op`] (not called for `SpinUntil`/`Done`).
    fn on_result(&mut self, result: &OpResult) {
        let _ = result;
    }

    /// Batched execution: run as many `Access`/`Compute` ops as the
    /// program would issue through `next_op`, directly against `ctx`,
    /// until the window closes ([`BlockCtx::can_issue`] turns false)
    /// or the program reaches an op the context cannot express
    /// (`TimedAccess`, `Flush`, `SpinUntil`, `Done`) — then return,
    /// and the scheduler resumes op-at-a-time through `next_op`.
    ///
    /// The default implementation runs nothing, which keeps every
    /// existing `Program` on the interpreter path unchanged. An
    /// implementation must produce *exactly* the op sequence `next_op`
    /// would (deriving control flow from [`BlockCtx::now`] the same
    /// way it derives it from `now`), and must not mutate its state
    /// for an op the context refused.
    fn run_block(&mut self, ctx: &mut BlockCtx<'_>) {
        let _ = ctx;
    }

    /// Whether this program implements [`Program::run_block`]. The
    /// schedulers skip block-window construction entirely for
    /// interpreter-path programs, so an implementation that overrides
    /// `run_block` must also return `true` here or its blocks never
    /// run.
    fn uses_blocks(&self) -> bool {
        false
    }

    /// The lifetime cache-line footprint hint; see [`Footprint`].
    fn footprint(&self) -> Footprint {
        Footprint::Unknown
    }
}

/// A trivial program that runs a fixed list of ops then finishes.
/// Useful in tests and for one-shot access sequences.
#[derive(Debug, Clone)]
pub struct Script {
    ops: Vec<Op>,
    next: usize,
    /// Results collected in execution order.
    pub results: Vec<OpResult>,
}

impl Script {
    /// A program executing `ops` front to back.
    pub fn new(ops: Vec<Op>) -> Self {
        Self {
            ops,
            next: 0,
            results: Vec::new(),
        }
    }
}

impl Program for Script {
    fn next_op(&mut self, now: u64) -> Op {
        loop {
            match self.ops.get(self.next) {
                // Spins are re-issued until time passes them (the
                // trait contract): only consume the op once `now`
                // has reached the deadline.
                Some(&Op::SpinUntil(t)) => {
                    if now < t {
                        return Op::SpinUntil(t);
                    }
                    self.next += 1;
                }
                Some(&op) => {
                    self.next += 1;
                    return op;
                }
                None => return Op::Done,
            }
        }
    }

    fn on_result(&mut self, result: &OpResult) {
        self.results.push(*result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_yields_ops_then_done() {
        let mut s = Script::new(vec![Op::Compute(5), Op::Compute(6)]);
        assert_eq!(s.next_op(0), Op::Compute(5));
        assert_eq!(s.next_op(0), Op::Compute(6));
        assert_eq!(s.next_op(0), Op::Done);
        assert_eq!(s.next_op(0), Op::Done);
    }

    #[test]
    fn script_records_results() {
        let mut s = Script::new(vec![Op::Compute(5)]);
        let _ = s.next_op(0);
        s.on_result(&OpResult {
            cycles: 5,
            level: None,
            measured: None,
            completed_at: 5,
        });
        assert_eq!(s.results.len(), 1);
        assert_eq!(s.results[0].cycles, 5);
    }
}
