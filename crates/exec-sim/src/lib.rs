//! # exec-sim — execution substrate: processes, timers, scheduling, speculation
//!
//! The second substrate of the *"Leaking Information Through Cache LRU
//! States"* (HPCA 2020) reproduction. Where [`cache_sim`] models the
//! *state* the channels leak through, this crate models everything
//! around it that the paper's evaluation depends on:
//!
//! * [`machine`] — a [`machine::Machine`]: one physical core's cache
//!   hierarchy plus processes (page tables, shared mappings), byte
//!   -addressable memory contents, and per-process performance
//!   counters.
//! * [`tsc`] — timestamp-counter models. A serialized `rdtscp` pair
//!   whose overhead hides the L1/L2 latency difference (paper
//!   Appendix A, Fig. 13) and the coarse-grained AMD readout
//!   (§VI-A).
//! * [`measure`] — the paper's pointer-chasing measurement (§IV-D,
//!   Figs. 2/3): seven dependent L1-resident loads plus the target
//!   make the L1-hit/L1-miss difference observable.
//! * [`program`] — the [`program::Program`] trait and [`program::Op`]
//!   vocabulary sender/receiver protocols are written in, plus the
//!   [`program::Footprint`] hint behind quantum fast-forwarding.
//! * [`block`] — the [`block::BlockCtx`] batched execution window:
//!   monomorphic access/compute loops, repeated-hit collapse and the
//!   closed-form paced advancement the fast engine runs on.
//! * [`sched`] — the two sharing settings of the evaluation:
//!   [`sched::HyperThreaded`] (fine-grained SMT interleaving, §V-A)
//!   and [`sched::TimeSliced`] (quantum scheduling, §V-B), each
//!   executable by the fast-forwarding engine or the retained
//!   [`sched::reference`] interpreter.
//! * [`speculation`] — a Spectre-v1 transient-execution model with a
//!   trainable branch predictor and a bounded speculative window
//!   (§VIII), plus the InvisiSpec-style invisible-speculation mode
//!   used by the defense study (§IX-B).
//! * [`noise`] — background "benign co-runner" programs (the `gcc`
//!   column of Table VI).
//!
//! Everything is deterministic given the seeds supplied by the
//! caller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod machine;
pub mod measure;
pub mod noise;
pub mod program;
pub mod sched;
pub mod speculation;
pub mod tsc;

pub use block::{BlockCtx, PacedAdvance};
pub use machine::{Machine, Pid};
pub use measure::{LatencyProbe, Measurement};
pub use program::{Footprint, Op, OpResult, Program};
pub use sched::{Engine, HyperThreaded, SchedError, SchedulerReport, TimeSliced};
pub use tsc::TscModel;
