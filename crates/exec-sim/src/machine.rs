//! One physical core: cache hierarchy + processes + memory contents.

use cache_sim::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use cache_sim::counters::PerfCounters;
use cache_sim::hierarchy::{CacheHierarchy, HierarchyOutcome};
use cache_sim::profiles::MicroArch;
use cache_sim::replacement::{Domain, PolicyKind};
use std::collections::BTreeMap;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

#[derive(Debug, Clone, Default)]
struct AddressSpace {
    /// Virtual page number → physical frame number.
    page_table: BTreeMap<u64, u64>,
    /// Next virtual page number handed out by the allocator.
    next_vpn: u64,
    /// Protection domain (partitioned-cache experiments).
    domain: Domain,
}

/// A single physical core with its cache hierarchy, plus the set of
/// processes sharing it.
///
/// The machine is what both the sender's and the receiver's programs
/// run against; it is deliberately *one* core, matching the paper's
/// threat model (§III: the two parties are co-located on one core,
/// hyper-threaded or time-sliced).
///
/// ```
/// use exec_sim::Machine;
/// use cache_sim::profiles::MicroArch;
/// use cache_sim::replacement::PolicyKind;
/// use cache_sim::hierarchy::HitLevel;
///
/// let mut m = Machine::new(
///     MicroArch::sandy_bridge_e5_2690(),
///     PolicyKind::TreePlru,
///     42,
/// );
/// let p = m.create_process();
/// let va = m.alloc_pages(p, 1);
/// assert_eq!(m.access(p, va).level, HitLevel::Mem);
/// assert_eq!(m.access(p, va).level, HitLevel::L1);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    arch: MicroArch,
    hierarchy: CacheHierarchy,
    spaces: Vec<AddressSpace>,
    counters: Vec<PerfCounters>,
    memory: BTreeMap<u64, u8>,
    next_frame: u64,
}

impl Machine {
    /// Builds a machine for `arch` with the given L1D replacement
    /// policy.
    pub fn new(arch: MicroArch, l1_policy: PolicyKind, seed: u64) -> Self {
        Self {
            arch,
            hierarchy: arch.build_hierarchy(l1_policy, seed),
            spaces: Vec::new(),
            counters: Vec::new(),
            memory: BTreeMap::new(),
            // Frame 0 is reserved so a zero PhysAddr is never handed
            // out (helps catch unmapped accesses in tests).
            next_frame: 1,
        }
    }

    /// The platform this machine models.
    pub fn arch(&self) -> &MicroArch {
        &self.arch
    }

    /// The cache hierarchy (for direct inspection in experiments).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// Mutable hierarchy access (experiments use it to attach
    /// prefetchers or inspect replacement state).
    pub fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.hierarchy
    }

    /// Creates a new process with an empty address space.
    ///
    /// Each process gets a distinct virtual base (an ASLR stand-in):
    /// two processes never share linear addresses by accident, which
    /// matters for the AMD µtag way predictor (§VI-B — the whole
    /// point is that the two parties use *different* linear addresses
    /// for one shared physical line).
    pub fn create_process(&mut self) -> Pid {
        let pid = self.spaces.len() as u64;
        let space = AddressSpace {
            next_vpn: 0x10_000 + pid * 0x3571,
            ..AddressSpace::default()
        };
        self.spaces.push(space);
        self.counters.push(PerfCounters::new());
        Pid(pid as u32)
    }

    /// Assigns `pid` to a protection domain (partitioned-cache
    /// defense experiments; default is [`Domain::PRIMARY`]).
    pub fn set_domain(&mut self, pid: Pid, domain: Domain) {
        self.space_mut(pid).domain = domain;
    }

    /// The protection domain `pid` currently runs in.
    pub fn domain_of(&self, pid: Pid) -> Domain {
        self.space(pid).domain
    }

    /// Allocates `n` fresh private pages and returns the base virtual
    /// address of the region.
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not exist or `n == 0`.
    pub fn alloc_pages(&mut self, pid: Pid, n: u64) -> VirtAddr {
        assert!(n > 0, "cannot allocate zero pages");
        let base_vpn = {
            let space = self.space_mut(pid);
            let base = space.next_vpn;
            space.next_vpn += n;
            base
        };
        for i in 0..n {
            let frame = self.next_frame;
            self.next_frame += 1;
            self.space_mut(pid).page_table.insert(base_vpn + i, frame);
        }
        VirtAddr::from_page(base_vpn, 0)
    }

    /// Maps one *shared* page into two processes (the "shared library
    /// data page" of Algorithm 1). Returns the virtual base address
    /// in each process; the virtual addresses differ (each process
    /// picks its own slot) but both map to the same frame.
    pub fn map_shared_page(&mut self, a: Pid, b: Pid) -> (VirtAddr, VirtAddr) {
        let frame = self.next_frame;
        self.next_frame += 1;
        let va_a = {
            let space = self.space_mut(a);
            let vpn = space.next_vpn;
            space.next_vpn += 1;
            space.page_table.insert(vpn, frame);
            VirtAddr::from_page(vpn, 0)
        };
        let va_b = {
            let space = self.space_mut(b);
            let vpn = space.next_vpn;
            space.next_vpn += 1;
            space.page_table.insert(vpn, frame);
            VirtAddr::from_page(vpn, 0)
        };
        (va_a, va_b)
    }

    /// Translates a virtual address. Returns `None` for unmapped
    /// pages.
    pub fn translate(&self, pid: Pid, va: VirtAddr) -> Option<PhysAddr> {
        let frame = *self.space(pid).page_table.get(&va.page_number())?;
        Some(PhysAddr::from_frame(frame, va.page_offset()))
    }

    /// Performs a demand load by `pid` at `va`.
    ///
    /// # Panics
    ///
    /// Panics if the page is unmapped (programs in these experiments
    /// always allocate before touching; a page fault model would only
    /// add noise unrelated to the paper).
    pub fn access(&mut self, pid: Pid, va: VirtAddr) -> HierarchyOutcome {
        let pa = self
            .translate(pid, va)
            .unwrap_or_else(|| panic!("access to unmapped page by {pid:?} at {va}"));
        let domain = self.space(pid).domain;
        self.hierarchy
            .access(va, pa, &mut self.counters[pid.0 as usize], domain)
    }

    /// `clflush` of the line containing `va` (requires a mapping).
    pub fn flush(&mut self, pid: Pid, va: VirtAddr) {
        if let Some(pa) = self.translate(pid, va) {
            self.hierarchy.flush(pa);
        }
    }

    /// Where `va` would hit right now (read-only; unmapped → `Mem`).
    pub fn probe_level(&self, pid: Pid, va: VirtAddr) -> cache_sim::hierarchy::HitLevel {
        match self.translate(pid, va) {
            Some(pa) => self.hierarchy.probe_level(pa),
            None => cache_sim::hierarchy::HitLevel::Mem,
        }
    }

    /// Reads the byte stored at `va` (0 if never written). Does not
    /// touch the caches — pair with [`Machine::access`] when the
    /// read should be architectural.
    pub fn read_byte(&self, pid: Pid, va: VirtAddr) -> u8 {
        self.translate(pid, va)
            .and_then(|pa| self.memory.get(&pa.raw()).copied())
            .unwrap_or(0)
    }

    /// Writes a byte at `va` (memory contents only; no cache
    /// traffic).
    ///
    /// # Panics
    ///
    /// Panics if the page is unmapped.
    pub fn write_byte(&mut self, pid: Pid, va: VirtAddr, value: u8) {
        let pa = self
            .translate(pid, va)
            .unwrap_or_else(|| panic!("write to unmapped page by {pid:?} at {va}"));
        self.memory.insert(pa.raw(), value);
    }

    /// Writes a byte slice starting at `va`.
    ///
    /// # Panics
    ///
    /// Panics if any touched page is unmapped.
    pub fn write_bytes(&mut self, pid: Pid, va: VirtAddr, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            self.write_byte(pid, va.add(i as u64), b);
        }
    }

    /// Performance counters accumulated by `pid`.
    pub fn counters(&self, pid: Pid) -> &PerfCounters {
        &self.counters[pid.0 as usize]
    }

    /// Mutable counters (schedulers charge cycles/instructions).
    pub fn counters_mut(&mut self, pid: Pid) -> &mut PerfCounters {
        &mut self.counters[pid.0 as usize]
    }

    /// Resets the counters of every process.
    pub fn reset_counters(&mut self) {
        for c in &mut self.counters {
            c.reset();
        }
    }

    /// Number of pages a process must allocate so a region covers
    /// every L1 set once (one page for the paper's geometry).
    pub fn pages_per_l1_span(&self) -> u64 {
        let span = self.hierarchy.l1().geometry().set_stride();
        span.div_ceil(PAGE_SIZE)
    }

    fn space(&self, pid: Pid) -> &AddressSpace {
        &self.spaces[pid.0 as usize]
    }

    fn space_mut(&mut self, pid: Pid) -> &mut AddressSpace {
        &mut self.spaces[pid.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::hierarchy::HitLevel;

    fn machine() -> Machine {
        Machine::new(MicroArch::sandy_bridge_e5_2690(), PolicyKind::TreePlru, 1)
    }

    #[test]
    fn distinct_processes_get_distinct_frames() {
        let mut m = machine();
        let a = m.create_process();
        let b = m.create_process();
        let va_a = m.alloc_pages(a, 1);
        let va_b = m.alloc_pages(b, 1);
        assert_ne!(m.translate(a, va_a), m.translate(b, va_b));
    }

    #[test]
    fn shared_page_aliases_one_frame() {
        let mut m = machine();
        let a = m.create_process();
        let b = m.create_process();
        let (va_a, va_b) = m.map_shared_page(a, b);
        assert_eq!(
            m.translate(a, va_a).unwrap().page_number(),
            m.translate(b, va_b).unwrap().page_number()
        );
        // A access by `a` makes `b`'s alias hit in L1 (no way
        // predictor on Intel).
        m.access(a, va_a);
        assert_eq!(m.access(b, va_b).level, HitLevel::L1);
    }

    #[test]
    fn page_offset_survives_translation() {
        let mut m = machine();
        let p = m.create_process();
        let base = m.alloc_pages(p, 1);
        let va = base.add(0x2c0);
        assert_eq!(m.translate(p, va).unwrap().page_offset(), 0x2c0);
    }

    #[test]
    fn counters_are_per_process() {
        let mut m = machine();
        let a = m.create_process();
        let b = m.create_process();
        let va = m.alloc_pages(a, 1);
        m.access(a, va);
        assert_eq!(m.counters(a).l1d_accesses, 1);
        assert_eq!(m.counters(b).l1d_accesses, 0);
    }

    #[test]
    fn memory_contents_round_trip() {
        let mut m = machine();
        let p = m.create_process();
        let va = m.alloc_pages(p, 1);
        m.write_bytes(p, va, b"secret");
        assert_eq!(m.read_byte(p, va.add(2)), b'c');
        assert_eq!(m.read_byte(p, va.add(100)), 0);
    }

    #[test]
    fn shared_memory_contents_visible_to_both() {
        let mut m = machine();
        let a = m.create_process();
        let b = m.create_process();
        let (va_a, va_b) = m.map_shared_page(a, b);
        m.write_byte(a, va_a.add(5), 0xab);
        assert_eq!(m.read_byte(b, va_b.add(5)), 0xab);
    }

    #[test]
    fn flush_forces_memory_access() {
        let mut m = machine();
        let p = m.create_process();
        let va = m.alloc_pages(p, 1);
        m.access(p, va);
        m.flush(p, va);
        assert_eq!(m.access(p, va).level, HitLevel::Mem);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn unmapped_access_panics() {
        let mut m = machine();
        let p = m.create_process();
        let _ = m.access(p, VirtAddr::from_page(999, 0));
    }

    #[test]
    fn l1_span_is_one_page_for_paper_geometry() {
        let m = machine();
        assert_eq!(m.pages_per_l1_span(), 1);
    }
}
