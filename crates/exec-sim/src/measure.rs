//! The paper's pointer-chasing latency measurement (§IV-D).
//!
//! A single `rdtscp`-timed load cannot tell an L1 hit from an L2 hit
//! (Appendix A). The paper's solution: a linked list of 7 elements in
//! the receiver's own memory, with the 8th pointer aimed at the
//! target address. The 8 loads are serialized by data dependency, so
//! the total visible latency is `7 × L1 + target` — and the
//! hit/miss difference of the target survives (Fig. 3).
//!
//! Two details from the paper are modelled:
//!
//! * the 7 chain elements live in **one reserved cache set** so they
//!   never pollute the LRU state of the target set (§IV-D's "further
//!   optimization"), and
//! * the receiver re-warms the chain before measuring, so the first
//!   7 loads are L1 hits.

use cache_sim::addr::VirtAddr;
use cache_sim::hierarchy::HitLevel;
use rand::rngs::SmallRng;

use crate::machine::{Machine, Pid};
use crate::tsc::TscModel;

/// Number of local linked-list elements before the target (paper:
/// "a linked list of 7 elements ... the 7th element contains the
/// memory address to be measured").
pub const CHAIN_LEN: usize = 7;

/// One timed observation of a target address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// The latency the receiver reads off the timestamp counter.
    pub measured: u32,
    /// Ground truth: which level served the *target* load (not
    /// observable by a real receiver; used for validation).
    pub level: HitLevel,
    /// Ground-truth total cycles of the 8 serialized loads.
    pub true_cycles: u32,
}

/// A reusable pointer-chase probe owned by one process.
#[derive(Debug, Clone)]
pub struct LatencyProbe {
    chain: Vec<VirtAddr>,
    tsc: TscModel,
    reserved_set: usize,
}

impl LatencyProbe {
    /// Builds a probe for `pid`, placing all [`CHAIN_LEN`] chain
    /// elements in `reserved_set` of the L1 (one line per page, same
    /// in-page offset ⇒ same set), and warms them into L1.
    ///
    /// # Panics
    ///
    /// Panics if `reserved_set` is out of range for the machine's L1.
    pub fn new(machine: &mut Machine, pid: Pid, tsc: TscModel, reserved_set: usize) -> Self {
        let geom = machine.hierarchy().l1().geometry();
        assert!(
            (reserved_set as u64) < geom.num_sets(),
            "reserved set {reserved_set} out of range"
        );
        let offset = reserved_set as u64 * geom.line_size();
        let chain: Vec<VirtAddr> = (0..CHAIN_LEN)
            .map(|_| machine.alloc_pages(pid, 1).add(offset))
            .collect();
        let probe = Self {
            chain,
            tsc,
            reserved_set,
        };
        probe.warm(machine, pid);
        probe
    }

    /// The L1 set holding the chain (must differ from any target
    /// set, or the chain itself perturbs the channel).
    pub fn reserved_set(&self) -> usize {
        self.reserved_set
    }

    /// The timer model used for readouts.
    pub fn tsc(&self) -> TscModel {
        self.tsc
    }

    /// Fetches the chain into L1 so the next measurement's first 7
    /// loads hit.
    pub fn warm(&self, machine: &mut Machine, pid: Pid) {
        for &va in &self.chain {
            machine.access(pid, va);
        }
    }

    /// Runs the pointer chase ending at `target` and returns the
    /// timed observation. The target access is architectural: it
    /// updates cache and replacement state exactly like the
    /// receiver's real load (that *is* the decode step of the
    /// channels).
    ///
    /// Returns the measurement together with the true cost in cycles
    /// of the whole chase (used by schedulers to charge time).
    pub fn measure(
        &self,
        machine: &mut Machine,
        pid: Pid,
        target: VirtAddr,
        rng: &mut SmallRng,
    ) -> Measurement {
        let mut total = 0u32;
        for &va in &self.chain {
            total += machine.access(pid, va).cycles;
        }
        let out = machine.access(pid, target);
        total += out.cycles;
        Measurement {
            measured: self.tsc.measure_chain(total, rng),
            level: out.level,
            true_cycles: total,
        }
    }
}

/// The naive single-load measurement of Appendix A (Fig. 12): load
/// `target` between two `rdtscp`s. Kept for the Fig. 13
/// cannot-distinguish demonstration.
pub fn rdtscp_single(
    machine: &mut Machine,
    pid: Pid,
    target: VirtAddr,
    tsc: &TscModel,
    rng: &mut SmallRng,
) -> Measurement {
    let out = machine.access(pid, target);
    Measurement {
        measured: tsc.measure_single(out.cycles, rng),
        level: out.level,
        true_cycles: out.cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::profiles::MicroArch;
    use cache_sim::replacement::PolicyKind;
    use rand::SeedableRng;

    fn setup() -> (Machine, Pid) {
        let mut m = Machine::new(MicroArch::sandy_bridge_e5_2690(), PolicyKind::TreePlru, 3);
        let p = m.create_process();
        (m, p)
    }

    #[test]
    fn chain_lives_in_reserved_set() {
        let (mut m, p) = setup();
        let probe = LatencyProbe::new(&mut m, p, TscModel::intel(), 63);
        let geom = m.hierarchy().l1().geometry();
        for &va in &probe.chain {
            let pa = m.translate(p, va).unwrap();
            assert_eq!(geom.set_index(pa.raw()), 63);
        }
    }

    #[test]
    fn hit_and_miss_separate_on_intel() {
        let (mut m, p) = setup();
        let mut rng = SmallRng::seed_from_u64(5);
        let probe = LatencyProbe::new(&mut m, p, TscModel::intel(), 63);
        let target = m.alloc_pages(p, 1); // maps to set 0
        m.access(p, target); // now in L1

        let hit = probe.measure(&mut m, p, target, &mut rng);
        assert_eq!(hit.level, HitLevel::L1);

        // Evict the target from L1 (fill set 0 with 8 other lines).
        let geom = m.hierarchy().l1().geometry();
        for _ in 0..geom.ways() {
            let page = m.alloc_pages(p, 1);
            m.access(p, page);
        }
        probe.warm(&mut m, p);
        let miss = probe.measure(&mut m, p, target, &mut rng);
        assert_eq!(miss.level, HitLevel::L2);
        assert!(
            miss.measured > hit.measured,
            "L1 miss ({}) must read slower than hit ({})",
            miss.measured,
            hit.measured
        );
    }

    #[test]
    fn rdtscp_single_cannot_separate_hit_from_l1_miss() {
        let (mut m, p) = setup();
        let mut rng = SmallRng::seed_from_u64(6);
        let tsc = TscModel::intel();
        let geom = m.hierarchy().l1().geometry();

        let mut hit_readings = Vec::new();
        let mut miss_readings = Vec::new();
        for _ in 0..200 {
            let target = m.alloc_pages(p, 1);
            m.access(p, target); // L1 resident
            hit_readings.push(rdtscp_single(&mut m, p, target, &tsc, &mut rng).measured);
            // Evict to L2.
            for _ in 0..geom.ways() {
                let page = m.alloc_pages(p, 1);
                let pa = m.translate(p, page).unwrap();
                let aligned =
                    page.add(geom.set_index(m.translate(p, target).unwrap().raw()) as u64 * 64);
                let _ = pa;
                m.access(p, aligned);
            }
            let s = rdtscp_single(&mut m, p, target, &tsc, &mut rng);
            if s.level == HitLevel::L2 {
                miss_readings.push(s.measured);
            }
        }
        assert!(!miss_readings.is_empty());
        let mean = |v: &[u32]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        let gap = (mean(&miss_readings) - mean(&hit_readings)).abs();
        assert!(
            gap < 3.0,
            "rdtscp single-load means must coincide (gap {gap:.2})"
        );
    }

    #[test]
    fn measurement_true_cycles_account_for_chain() {
        let (mut m, p) = setup();
        let mut rng = SmallRng::seed_from_u64(9);
        let probe = LatencyProbe::new(&mut m, p, TscModel::intel(), 63);
        let target = m.alloc_pages(p, 1);
        m.access(p, target);
        let meas = probe.measure(&mut m, p, target, &mut rng);
        // 7 chain hits (4 each) + target hit (4) = 32.
        assert_eq!(meas.true_cycles, 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_reserved_set() {
        let (mut m, p) = setup();
        let _ = LatencyProbe::new(&mut m, p, TscModel::intel(), 64);
    }
}
