//! Transient-execution model for the Spectre-v1 demonstration
//! (paper §VIII).
//!
//! The LRU channels only need one property of speculation: *a load
//! executed under a mispredicted branch updates cache contents and
//! replacement state before the squash*. This module models exactly
//! that, with a trainable branch predictor and a bounded speculative
//! window, plus the InvisiSpec-style mode (§IX-B) in which transient
//! loads leave no micro-architectural trace.

use std::collections::HashMap;

use cache_sim::addr::VirtAddr;
use cache_sim::hierarchy::HitLevel;

use crate::machine::{Machine, Pid};

/// A per-branch 2-bit saturating-counter predictor.
#[derive(Debug, Clone, Default)]
pub struct BranchPredictor {
    table: HashMap<u64, u8>,
}

impl BranchPredictor {
    /// An empty predictor (all branches predicted not-taken).
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicted direction of branch `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table.get(&pc).copied().unwrap_or(0) >= 2
    }

    /// Trains branch `pc` with its resolved direction.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let ctr = self.table.entry(pc).or_insert(0);
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
    }
}

/// How speculative loads interact with the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecMode {
    /// Commodity behaviour: transient loads fill caches and update
    /// replacement state (then the *architectural* effects are
    /// squashed). This is what every channel in the paper rides on.
    Baseline,
    /// InvisiSpec-style defense (§IX-B): micro-architectural state —
    /// including the LRU state — is only updated once the access is
    /// no longer speculative; squashed loads leave nothing.
    Invisible,
}

/// The Spectre-v1 victim: the classic bounds-checked gadget
///
/// ```c
/// if (x < array1_size)
///     y = array2[array1[x] * 64];
/// ```
///
/// `array2` is indexed with a 64-byte stride so the *L1 set* of the
/// transient access encodes the secret value — the paper uses 63
/// usable sets (one is reserved for the receiver's pointer-chase
/// chain), so secrets are 6-bit symbols in `0..63`.
#[derive(Debug, Clone)]
pub struct SpectreVictim {
    /// Process the victim runs as.
    pub pid: Pid,
    /// Base of the bounds-checked array.
    pub array1: VirtAddr,
    /// Architectural length of `array1`.
    pub array1_size: u64,
    /// Base of the probe array whose set encodes the value.
    pub array2: VirtAddr,
    /// Maximum transient loads after the mispredicted branch.
    pub window: usize,
    predictor: BranchPredictor,
}

/// What one victim invocation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimCall {
    /// Whether the bounds check architecturally passed.
    pub in_bounds: bool,
    /// Whether transient execution of the gadget body happened.
    pub transient: bool,
    /// The value the (possibly transient) `array1[x]` load produced,
    /// if the body executed at all.
    pub value: Option<u8>,
}

impl SpectreVictim {
    /// Creates the victim around pre-allocated arrays.
    ///
    /// `window` is the speculative-window budget in loads; the LRU
    /// channel needs the gadget's two loads, which is the paper's
    /// point about the channel requiring "only a small speculation
    /// window".
    pub fn new(
        pid: Pid,
        array1: VirtAddr,
        array1_size: u64,
        array2: VirtAddr,
        window: usize,
    ) -> Self {
        Self {
            pid,
            array1,
            array1_size,
            array2,
            window,
            predictor: BranchPredictor::new(),
        }
    }

    /// Identifier of the gadget's bounds-check branch.
    const BRANCH_PC: u64 = 0x401_000;

    /// Invokes `victim_function(x)`.
    ///
    /// In-bounds calls execute architecturally (and train the
    /// predictor toward taken). Out-of-bounds calls execute the body
    /// transiently iff the predictor says taken and the window admits
    /// both loads; the transient loads touch the cache hierarchy
    /// according to `mode`, then are squashed (no architectural
    /// effect — in particular the attacker never sees `value`; it is
    /// returned here only for ground-truth validation in tests).
    pub fn call(&mut self, machine: &mut Machine, x: u64, mode: SpecMode) -> VictimCall {
        let in_bounds = x < self.array1_size;
        let predicted_taken = self.predictor.predict(Self::BRANCH_PC);
        self.predictor.update(Self::BRANCH_PC, in_bounds);

        let gadget_addr = self.array1.add(x);
        if in_bounds {
            // Architectural execution.
            machine.access(self.pid, gadget_addr);
            let value = machine.read_byte(self.pid, gadget_addr);
            let probe = self.array2.add(value as u64 * 64);
            machine.access(self.pid, probe);
            return VictimCall {
                in_bounds,
                transient: false,
                value: Some(value),
            };
        }

        if !predicted_taken || self.window < 2 {
            // Correctly predicted not-taken (or window too small):
            // nothing leaks.
            return VictimCall {
                in_bounds,
                transient: false,
                value: None,
            };
        }

        // Transient execution of the gadget body.
        let value = machine.read_byte(self.pid, gadget_addr);
        let probe = self.array2.add(value as u64 * 64);
        match mode {
            SpecMode::Baseline => {
                machine.access(self.pid, gadget_addr);
                machine.access(self.pid, probe);
            }
            SpecMode::Invisible => {
                // The loads execute but deposit nothing: model them
                // as read-only probes of the hierarchy.
                let _ = machine.probe_level(self.pid, gadget_addr);
                let _ = machine.probe_level(self.pid, probe);
            }
        }
        VictimCall {
            in_bounds,
            transient: true,
            value: Some(value),
        }
    }

    /// Trains the predictor toward taken with `n` in-bounds calls.
    pub fn train(&mut self, machine: &mut Machine, n: usize) {
        for i in 0..n {
            self.call(machine, i as u64 % self.array1_size, SpecMode::Baseline);
        }
    }
}

/// Builds a standard victim layout in a fresh process: `array1`
/// (16 bytes), `array2` (64 lines spanning all L1 sets), and a
/// secret string placed at a known out-of-bounds offset from
/// `array1`. Returns `(victim, secret_offset)` where
/// `victim.call(machine, secret_offset + i, ..)` touches secret byte
/// `i`.
pub fn build_victim(machine: &mut Machine, secret: &[u8], window: usize) -> (SpectreVictim, u64) {
    let pid = machine.create_process();
    let array1 = machine.alloc_pages(pid, 1);
    machine.write_bytes(
        pid,
        array1,
        &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16],
    );
    let array2 = machine.alloc_pages(pid, 1); // one page = all 64 sets
    let secret_page = machine.alloc_pages(pid, 1);
    machine.write_bytes(pid, secret_page, secret);
    let secret_offset = secret_page.raw() - array1.raw();
    (
        SpectreVictim::new(pid, array1, 16, array2, window),
        secret_offset,
    )
}

/// Ground-truth helper for tests: the L1 set a given secret value
/// maps to through `array2`.
pub fn value_set(machine: &Machine, victim: &SpectreVictim, value: u8) -> usize {
    let geom = machine.hierarchy().l1().geometry();
    geom.set_index(victim.array2.add(value as u64 * 64).raw())
}

/// Convenience for tests: whether the transient probe line for
/// `value` is in L1 right now.
pub fn probe_line_cached(machine: &Machine, victim: &SpectreVictim, value: u8) -> bool {
    machine.probe_level(victim.pid, victim.array2.add(value as u64 * 64)) == HitLevel::L1
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::profiles::MicroArch;
    use cache_sim::replacement::PolicyKind;

    fn machine() -> Machine {
        Machine::new(MicroArch::sandy_bridge_e5_2690(), PolicyKind::TreePlru, 17)
    }

    #[test]
    fn predictor_trains_and_saturates() {
        let mut bp = BranchPredictor::new();
        assert!(!bp.predict(1));
        bp.update(1, true);
        assert!(!bp.predict(1));
        bp.update(1, true);
        assert!(bp.predict(1));
        for _ in 0..10 {
            bp.update(1, true);
        }
        bp.update(1, false);
        assert!(
            bp.predict(1),
            "one not-taken must not flip a saturated counter"
        );
        bp.update(1, false);
        assert!(!bp.predict(1));
    }

    #[test]
    fn untrained_victim_does_not_leak() {
        let mut m = machine();
        let (mut v, off) = build_victim(&mut m, b"K", 8);
        let call = v.call(&mut m, off, SpecMode::Baseline);
        assert!(!call.transient, "predictor starts not-taken");
        assert!(!probe_line_cached(&m, &v, b'K' & 63));
    }

    #[test]
    fn trained_victim_leaks_secret_set() {
        let mut m = machine();
        let secret_val = 42u8;
        let (mut v, off) = build_victim(&mut m, &[secret_val], 8);
        v.train(&mut m, 8);
        let call = v.call(&mut m, off, SpecMode::Baseline);
        assert!(call.transient);
        assert_eq!(call.value, Some(secret_val));
        assert!(
            probe_line_cached(&m, &v, secret_val),
            "transient load must install the probe line"
        );
    }

    #[test]
    fn window_of_one_cannot_run_the_gadget() {
        let mut m = machine();
        let (mut v, off) = build_victim(&mut m, &[9], 1);
        v.train(&mut m, 8);
        let call = v.call(&mut m, off, SpecMode::Baseline);
        assert!(!call.transient);
        assert!(!probe_line_cached(&m, &v, 9));
    }

    #[test]
    fn invisible_speculation_leaves_no_trace() {
        let mut m = machine();
        let (mut v, off) = build_victim(&mut m, &[33], 8);
        v.train(&mut m, 8);
        // Snapshot L1 replacement state of the secret's set.
        let set = value_set(&m, &v, 33);
        let before = format!("{:?}", m.hierarchy().l1().set(set));
        let call = v.call(&mut m, off, SpecMode::Invisible);
        assert!(call.transient);
        assert!(!probe_line_cached(&m, &v, 33));
        let after = format!("{:?}", m.hierarchy().l1().set(set));
        assert_eq!(before, after, "no LRU-state change under InvisiSpec");
    }

    #[test]
    fn in_bounds_calls_are_architectural() {
        let mut m = machine();
        let (mut v, _off) = build_victim(&mut m, b"x", 8);
        let call = v.call(&mut m, 3, SpecMode::Baseline);
        assert!(call.in_bounds);
        assert!(!call.transient);
        assert_eq!(call.value, Some(4)); // array1[3] == 4
    }

    #[test]
    fn out_of_bounds_read_returns_secret_byte() {
        let mut m = machine();
        let (mut v, off) = build_victim(&mut m, b"Zq", 8);
        v.train(&mut m, 8);
        assert_eq!(v.call(&mut m, off, SpecMode::Baseline).value, Some(b'Z'));
        v.train(&mut m, 8);
        assert_eq!(
            v.call(&mut m, off + 1, SpecMode::Baseline).value,
            Some(b'q')
        );
    }
}
