//! The two core-sharing settings of the paper's evaluation:
//! hyper-threaded (SMT, §V-A) and time-sliced (§V-B) scheduling.
//!
//! Two engines execute the same schedule:
//!
//! * the **fast-forwarding engine** (default) — programs run batches
//!   of homogeneous ops through a [`BlockCtx`] (monomorphic loop, no
//!   per-op dispatch or counter read-modify-write), repeated L1 hits
//!   collapse when the replacement policy's touch is idempotent, and
//!   a thread whose declared [`Footprint`] is disjoint from every
//!   monitored set and every other party's footprint is advanced to
//!   the quantum boundary in closed form;
//! * the [`mod@reference`] engine — the original op-at-a-time
//!   interpreter, retained verbatim as the differential-testing
//!   oracle. `tests/sched_equivalence.rs` pins the two
//!   observationally identical (scheduler reports, probe latencies,
//!   decoded bits, performance counters).
//!
//! [`set_engine`] switches the process between them.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

use cache_sim::addr::PhysAddr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::block::{BlockCtx, JitterCfg, ACCESS_ISSUE_COST};
use crate::machine::{Machine, Pid};
use crate::measure::LatencyProbe;
use crate::program::{Footprint, Op, OpResult, Program};

/// Cost of a `clflush` instruction.
const FLUSH_COST: u64 = 40;

/// Footprints beyond this many lines are treated as
/// [`Footprint::Unknown`] (they span every set anyway, and bounding
/// the expansion keeps eligibility analysis O(1) per run).
const MAX_FF_LINES: u64 = 4096;

/// Which execution engine [`HyperThreaded::run`] and
/// [`TimeSliced::run`] use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The batched, fast-forwarding engine (default).
    FastForward,
    /// The op-at-a-time interpreter in [`mod@reference`].
    Reference,
}

static ENGINE: AtomicU8 = AtomicU8::new(0);

/// Selects the process-global execution engine. The setting exists
/// for differential testing and benchmarking (`sched_equivalence`,
/// `bench_execsim_smoke`); both engines are pinned observationally
/// identical, so production code never needs to switch.
pub fn set_engine(engine: Engine) {
    ENGINE.store(
        match engine {
            Engine::FastForward => 0,
            Engine::Reference => 1,
        },
        Ordering::Relaxed,
    );
}

/// The currently selected execution engine.
pub fn engine() -> Engine {
    match ENGINE.load(Ordering::Relaxed) {
        0 => Engine::FastForward,
        _ => Engine::Reference,
    }
}

/// Invalid scheduler timing parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// A zero quantum (the core would context-switch on every op).
    ZeroQuantum,
    /// `quantum_jitter > 2 * quantum`: the jittered draw
    /// `quantum - jitter/2 + U(0..=jitter)` would underflow.
    BadJitter {
        /// Nominal quantum in cycles.
        quantum: u64,
        /// Rejected peak-to-peak jitter.
        quantum_jitter: u64,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::ZeroQuantum => write!(f, "quantum must be positive"),
            SchedError::BadJitter {
                quantum,
                quantum_jitter,
            } => write!(
                f,
                "need quantum_jitter <= 2*quantum, got quantum={quantum}, \
                 quantum_jitter={quantum_jitter}"
            ),
        }
    }
}

impl Error for SchedError {}

/// A schedulable thread: a program, the process it runs as, and an
/// optional measurement probe (receivers have one, senders don't).
pub struct ThreadHandle<'a> {
    /// Process identity (page tables, counters).
    pub pid: Pid,
    /// The program to run.
    pub program: &'a mut dyn Program,
    /// Pointer-chase probe backing [`Op::TimedAccess`].
    pub probe: Option<LatencyProbe>,
}

impl<'a> ThreadHandle<'a> {
    /// A thread without a measurement probe.
    pub fn new(pid: Pid, program: &'a mut dyn Program) -> Self {
        Self {
            pid,
            program,
            probe: None,
        }
    }

    /// A thread carrying a probe (receivers).
    pub fn with_probe(pid: Pid, program: &'a mut dyn Program, probe: LatencyProbe) -> Self {
        Self {
            pid,
            program,
            probe: Some(probe),
        }
    }
}

impl std::fmt::Debug for ThreadHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadHandle")
            .field("pid", &self.pid)
            .field("probe", &self.probe.is_some())
            .finish()
    }
}

/// Summary of a scheduler run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerReport {
    /// Global cycles elapsed when the run ended.
    pub elapsed: u64,
    /// Ops executed per thread (indexed like the `threads` slice).
    pub ops_executed: Vec<u64>,
    /// Context switches performed (time-sliced only; 0 under SMT).
    pub context_switches: u64,
}

fn execute_op(
    machine: &mut Machine,
    thread: &mut ThreadHandle<'_>,
    op: Op,
    now: u64,
    rng: &mut SmallRng,
) -> OpResult {
    match op {
        Op::Access(va) => {
            let out = machine.access(thread.pid, va);
            let cycles = out.cycles as u64 + ACCESS_ISSUE_COST;
            OpResult {
                cycles,
                level: Some(out.level),
                measured: None,
                completed_at: now + cycles,
            }
        }
        Op::TimedAccess(va) => {
            let probe = thread
                .probe
                .as_ref()
                .expect("TimedAccess requires a thread with a LatencyProbe");
            let meas = probe.measure(machine, thread.pid, va, rng);
            let cycles = meas.true_cycles as u64 + probe.tsc().overhead as u64;
            OpResult {
                cycles,
                level: Some(meas.level),
                measured: Some(meas.measured),
                completed_at: now + cycles,
            }
        }
        Op::Flush(va) => {
            machine.flush(thread.pid, va);
            OpResult {
                cycles: FLUSH_COST,
                level: None,
                measured: None,
                completed_at: now + FLUSH_COST,
            }
        }
        Op::Compute(c) => OpResult {
            cycles: c as u64,
            level: None,
            measured: None,
            completed_at: now + c as u64,
        },
        Op::SpinUntil(_) | Op::Done => unreachable!("handled by the scheduler"),
    }
}

/// Whether repeated same-line L1 hits may be replayed without
/// touching the cache on this machine (idempotent replacement touch;
/// the hit path never consults the prefetcher, and the way predictor
/// settles after one clean hit — see `BlockCtx::access`).
fn repeat_hit_collapse_ok(machine: &Machine) -> bool {
    machine.hierarchy().l1().policy_kind().touch_is_idempotent()
}

/// Per-thread fast-forward state for one scheduler run.
struct FfSlot {
    /// L1 set mask of the declared footprint (`None` = unknown).
    mask: Option<u64>,
    /// Whether the per-set line count fits the associativity — the
    /// bounded-set condition for this thread's *own* grant (a known
    /// but oversized footprint still counts toward other threads'
    /// disjointness checks).
    fits: bool,
    /// Line-base physical addresses of the footprint.
    pas: Vec<PhysAddr>,
    /// Statically eligible: known footprint, fits per set, disjoint
    /// from every other party and every monitored set, no probe.
    eligible: bool,
    /// The analytic grant. Once granted it stays granted: the
    /// footprint sets are touched by no other party, the hierarchy
    /// reports `quantum_ff_safe()` (back-invalidating hierarchies are
    /// demoted to block execution), has no prefetcher, and the per-set
    /// fit means the thread can never evict its own lines — so
    /// residency, once observed, is permanent.
    granted: bool,
}

/// Expands footprints, intersects them, and marks which threads may
/// be fast-forwarded. The conditions (checked here once per run):
///
/// * the L1 has at most 64 sets, no prefetcher is attached, the
///   hierarchy reports `quantum_ff_safe()` (no back-invalidation —
///   the capability bit consulted next to `Program::footprint`), and
///   the replacement policy's touch is idempotent;
/// * the thread carries no probe (a probe reads cache state, so its
///   owner must simulate for real);
/// * the thread's footprint is declared, every line translates, and
///   the per-set line count fits the associativity (bounded-set
///   steady state: the thread can never miss in its own sets once
///   they are warm);
/// * the footprint's set mask is disjoint from every *monitored* set
///   (the probes' reserved chains) and from every other thread's
///   mask, with an unknown footprint treated as "all sets".
fn build_ff_slots(machine: &Machine, threads: &[ThreadHandle<'_>]) -> Vec<FfSlot> {
    let h = machine.hierarchy();
    let geom = h.l1().geometry();
    // Footprints are declared in 64-byte lines; a smaller-line
    // geometry would make the 64-byte expansion skip sets.
    let engine_ok = geom.num_sets() <= 64
        && geom.line_size() >= 64
        && !h.has_prefetcher()
        && h.quantum_ff_safe()
        && h.l1().policy_kind().touch_is_idempotent();
    let mut slots: Vec<FfSlot> = threads
        .iter()
        .map(|t| {
            let mut slot = FfSlot {
                mask: None,
                fits: false,
                pas: Vec::new(),
                eligible: false,
                granted: false,
            };
            let Footprint::Lines(ranges) = t.program.footprint() else {
                return slot;
            };
            if !engine_ok {
                return slot;
            }
            let total: u64 = ranges.iter().map(|r| r.1).sum();
            if total == 0 || total > MAX_FF_LINES {
                return slot;
            }
            let line = 64u64;
            let mut mask = 0u64;
            let mut per_set = vec![0u64; geom.num_sets() as usize];
            let mut pas = Vec::with_capacity(total as usize);
            for (base, lines) in ranges {
                for i in 0..lines {
                    let va = base.add(i * line);
                    let Some(pa) = machine.translate(t.pid, va) else {
                        return slot;
                    };
                    let set = geom.set_index(pa.raw());
                    mask |= 1u64 << set;
                    per_set[set] += 1;
                    pas.push(pa);
                }
            }
            slot.mask = Some(mask);
            slot.fits = per_set.iter().all(|&c| c <= geom.ways() as u64);
            slot.pas = pas;
            slot
        })
        .collect();

    if !engine_ok {
        // Every mask is None; nothing below can become eligible, and
        // skipping here keeps the monitored-set shift safely inside
        // the <= 64-set guarantee.
        return slots;
    }
    let mut monitored = 0u64;
    for t in threads {
        if let Some(probe) = &t.probe {
            monitored |= 1u64 << probe.reserved_set();
        }
    }
    for i in 0..slots.len() {
        let Some(mask) = slots[i].mask else { continue };
        if !slots[i].fits || threads[i].probe.is_some() {
            continue;
        }
        let mut foreign = monitored;
        let mut unknown = false;
        for (j, s) in slots.iter().enumerate() {
            if j == i {
                continue;
            }
            match s.mask {
                Some(m) => foreign |= m,
                None => unknown = true,
            }
        }
        slots[i].eligible = !unknown && mask & foreign == 0;
    }
    slots
}

impl FfSlot {
    /// Attempts the residency check; on success the grant is
    /// permanent (see the field docs).
    fn try_grant(&mut self, machine: &Machine) -> bool {
        if self.granted {
            return true;
        }
        if !self.eligible {
            return false;
        }
        let l1 = machine.hierarchy().l1();
        if self.pas.iter().all(|&pa| l1.probe(pa)) {
            self.granted = true;
        }
        self.granted
    }
}

/// The analytic per-access cost under a grant: every access is an L1
/// hit (residency) at the fast-path latency (the way predictor, if
/// any, is settled for lines only this thread's linear addresses
/// ever touched).
fn analytic_hit_cycles(machine: &Machine) -> u64 {
    u64::from(machine.hierarchy().latencies().l1) + ACCESS_ISSUE_COST
}

/// Hyper-threaded (SMT) sharing: both threads are live on the core,
/// their memory operations interleave at instruction granularity
/// (paper §V-A). Modelled by advancing whichever thread has the
/// smaller local clock, with a little per-op pipeline jitter so the
/// interleaving is irregular — the "random insertion" pattern the
/// Table I analysis assumes for hyper-threading.
#[derive(Debug, Clone)]
pub struct HyperThreaded {
    /// Peak per-op scheduling jitter in cycles.
    pub jitter: u32,
    /// RNG seed for the jitter stream.
    pub seed: u64,
}

impl HyperThreaded {
    /// Jitter of 2 cycles — enough to randomize interleaving without
    /// distorting latencies.
    pub fn new(seed: u64) -> Self {
        Self { jitter: 2, seed }
    }

    /// Runs the threads until all finish or `limit` global cycles
    /// pass.
    pub fn run(
        &self,
        machine: &mut Machine,
        threads: &mut [ThreadHandle<'_>],
        limit: u64,
    ) -> SchedulerReport {
        if engine() == Engine::Reference {
            return reference::run_hyper_threaded(self, machine, threads, limit);
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = threads.len();
        let mut local = vec![0u64; n];
        let mut finished = vec![false; n];
        let mut ops = vec![0u64; n];
        let repeat_ok = repeat_hit_collapse_ok(machine);
        let batches: Vec<bool> = threads.iter().map(|t| t.program.uses_blocks()).collect();

        // The live thread with the smallest local clock issues next
        // (ties go to the lowest index, like the reference's
        // `min_by_key`).
        while let Some(idx) = (0..n)
            .filter(|&i| !finished[i] && local[i] < limit)
            .min_by_key(|&i| local[i])
        {
            if batches[idx] {
                // The block may run ops while this thread would stay
                // selected: until its clock passes the closest other
                // live clock (or reaches it, when that thread has a
                // lower index).
                let mut bound = u64::MAX;
                let mut bound_idx = usize::MAX;
                for j in 0..n {
                    if j != idx && !finished[j] && local[j] < limit && local[j] < bound {
                        bound = local[j];
                        bound_idx = j;
                    }
                }
                let wins_ties = idx < bound_idx;
                let handle = &mut threads[idx];
                let mut ctx = BlockCtx::new_hyper_threaded(
                    machine,
                    handle.pid,
                    local[idx],
                    limit,
                    bound,
                    wins_ties,
                    JitterCfg {
                        jitter: self.jitter,
                        rng: &mut rng,
                    },
                    repeat_ok,
                );
                handle.program.run_block(&mut ctx);
                let fx = ctx.finish();
                if fx.ops > 0 {
                    local[idx] = fx.end;
                    ops[idx] += fx.ops;
                    continue;
                }
            }

            let now = local[idx];
            match threads[idx].program.next_op(now) {
                Op::Done => finished[idx] = true,
                Op::SpinUntil(t) => {
                    // Spinning occupies only this hyper-thread.
                    local[idx] = now.max(t.min(limit));
                    if t >= limit {
                        local[idx] = limit;
                    }
                }
                op => {
                    let result = execute_op(machine, &mut threads[idx], op, now, &mut rng);
                    let jitter = if self.jitter == 0 {
                        0
                    } else {
                        rng.gen_range(0..=self.jitter) as u64
                    };
                    local[idx] = now + result.cycles + jitter;
                    machine.counters_mut(threads[idx].pid).cycles += result.cycles + jitter;
                    machine.counters_mut(threads[idx].pid).instructions += 1;
                    threads[idx].program.on_result(&result);
                    ops[idx] += 1;
                }
            }
        }

        SchedulerReport {
            elapsed: local.into_iter().max().unwrap_or(0),
            ops_executed: ops,
            context_switches: 0,
        }
    }
}

/// Time-sliced sharing: one thread on the core at a time, switched
/// at quantum boundaries (paper §V-B). The L1 contents survive the
/// switch (same physical core), which is exactly what the time-sliced
/// channel exploits.
#[derive(Debug, Clone)]
pub struct TimeSliced {
    /// Nominal quantum length in cycles. The paper's observations
    /// (≈30% of iterations reflecting the sender at `Tr = 1e8`)
    /// correspond to multi-`Tr` slices, i.e. a few hundred million
    /// cycles for two spinning processes under CFS.
    pub quantum: u64,
    /// Peak-to-peak random quantum variation. Must not exceed
    /// `2 * quantum` (see [`TimeSliced::with_timing`]).
    pub quantum_jitter: u64,
    /// Direct cost of a context switch in cycles.
    pub switch_cost: u64,
    /// RNG seed.
    pub seed: u64,
}

impl TimeSliced {
    /// A CFS-like default: ~3×10⁸-cycle slices (two cpu-bound tasks),
    /// ±20% jitter, 20k-cycle switch cost.
    pub fn new(seed: u64) -> Self {
        Self {
            quantum: 300_000_000,
            quantum_jitter: 120_000_000,
            switch_cost: 20_000,
            seed,
        }
    }

    /// A fully parameterized scheduler, with the timing validated:
    /// the jittered quantum draw is `quantum - quantum_jitter/2 +
    /// U(0..=quantum_jitter)`, so `quantum_jitter > 2 * quantum`
    /// would underflow (and used to wrap, or panic in debug builds).
    ///
    /// # Errors
    ///
    /// Returns a [`SchedError`] for a zero quantum or oversized
    /// jitter.
    pub fn with_timing(
        quantum: u64,
        quantum_jitter: u64,
        switch_cost: u64,
        seed: u64,
    ) -> Result<Self, SchedError> {
        let sched = Self {
            quantum,
            quantum_jitter,
            switch_cost,
            seed,
        };
        sched.validate()?;
        Ok(sched)
    }

    /// Checks the timing parameters; see [`TimeSliced::with_timing`].
    ///
    /// # Errors
    ///
    /// Returns a [`SchedError`] for a zero quantum or oversized
    /// jitter.
    pub fn validate(&self) -> Result<(), SchedError> {
        if self.quantum == 0 {
            return Err(SchedError::ZeroQuantum);
        }
        if self.quantum_jitter > 2 * self.quantum {
            return Err(SchedError::BadJitter {
                quantum: self.quantum,
                quantum_jitter: self.quantum_jitter,
            });
        }
        Ok(())
    }

    /// Runs the threads round-robin until all finish or `limit`
    /// global cycles pass.
    pub fn run(
        &self,
        machine: &mut Machine,
        threads: &mut [ThreadHandle<'_>],
        limit: u64,
    ) -> SchedulerReport {
        if engine() == Engine::Reference {
            return reference::run_time_sliced(self, machine, threads, limit);
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = threads.len();
        let mut finished = vec![false; n];
        let mut ops = vec![0u64; n];
        let mut switches = 0u64;
        let mut t = 0u64;
        let mut cur = 0usize;
        let mut slice_end = t + self.next_quantum(&mut rng);
        let repeat_ok = repeat_hit_collapse_ok(machine);
        let batches: Vec<bool> = threads.iter().map(|t| t.program.uses_blocks()).collect();
        let mut ff = build_ff_slots(machine, threads);
        let analytic_cycles = analytic_hit_cycles(machine);
        // Attempt the residency grant when a thread switches in.
        let mut fresh_slice = true;

        while t < limit && finished.iter().any(|f| !f) {
            if finished[cur] {
                // Rotate to a live thread without charging a switch
                // (the finished one just exited).
                cur = (cur + 1) % n;
                fresh_slice = true;
                continue;
            }
            if batches[cur] {
                if fresh_slice {
                    ff[cur].try_grant(machine);
                    fresh_slice = false;
                }
                let analytic = ff[cur].granted.then_some(analytic_cycles);
                let handle = &mut threads[cur];
                let mut ctx = BlockCtx::new_time_sliced(
                    machine, handle.pid, t, limit, slice_end, analytic, repeat_ok,
                );
                handle.program.run_block(&mut ctx);
                let fx = ctx.finish();
                if fx.ops > 0 {
                    t = fx.end;
                    ops[cur] += fx.ops;
                    if t >= slice_end {
                        switches += 1;
                        t += self.switch_cost;
                        cur = (cur + 1) % n;
                        slice_end = t + self.next_quantum(&mut rng);
                        fresh_slice = true;
                    }
                    continue;
                }
            }

            match threads[cur].program.next_op(t) {
                Op::Done => {
                    finished[cur] = true;
                }
                Op::SpinUntil(target) => {
                    if target <= t {
                        // Deadline already passed: let the program
                        // observe the new time immediately.
                        continue;
                    }
                    let wake = target.min(limit);
                    if wake >= slice_end {
                        // The spin burns the rest of the quantum;
                        // the sibling runs next.
                        t = slice_end;
                        switches += 1;
                        t += self.switch_cost;
                        cur = (cur + 1) % n;
                        slice_end = t + self.next_quantum(&mut rng);
                        fresh_slice = true;
                    } else {
                        t = wake;
                    }
                }
                op => {
                    let result = execute_op(machine, &mut threads[cur], op, t, &mut rng);
                    t += result.cycles;
                    machine.counters_mut(threads[cur].pid).cycles += result.cycles;
                    machine.counters_mut(threads[cur].pid).instructions += 1;
                    threads[cur].program.on_result(&result);
                    ops[cur] += 1;
                    if t >= slice_end {
                        switches += 1;
                        t += self.switch_cost;
                        cur = (cur + 1) % n;
                        slice_end = t + self.next_quantum(&mut rng);
                        fresh_slice = true;
                    }
                }
            }
        }

        SchedulerReport {
            elapsed: t,
            ops_executed: ops,
            context_switches: switches,
        }
    }

    fn next_quantum(&self, rng: &mut SmallRng) -> u64 {
        if self.quantum_jitter == 0 {
            self.quantum
        } else {
            let half = self.quantum_jitter / 2;
            // `saturating_sub` keeps even unvalidated (direct struct
            // literal) configurations from wrapping; validated ones
            // never saturate.
            self.quantum
                .saturating_sub(half)
                .saturating_add(rng.gen_range(0..=self.quantum_jitter))
        }
    }
}

/// The original op-at-a-time interpreter, retained verbatim as the
/// differential-testing oracle for the fast-forwarding engine.
///
/// Every op goes through `Program::next_op`, `execute_op` and
/// `Program::on_result`, with no batching, no repeated-hit collapse
/// and no analytic quantum advancement. `tests/sched_equivalence.rs`
/// and the scheduler property suite pin the fast engine byte-for-
/// byte against these loops.
pub mod reference {
    use super::*;

    /// [`HyperThreaded::run`] as originally implemented.
    pub fn run_hyper_threaded(
        cfg: &HyperThreaded,
        machine: &mut Machine,
        threads: &mut [ThreadHandle<'_>],
        limit: u64,
    ) -> SchedulerReport {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let n = threads.len();
        let mut local = vec![0u64; n];
        let mut finished = vec![false; n];
        let mut ops = vec![0u64; n];

        // The live thread with the smallest local clock issues next.
        while let Some(idx) = (0..n)
            .filter(|&i| !finished[i] && local[i] < limit)
            .min_by_key(|&i| local[i])
        {
            let now = local[idx];
            match threads[idx].program.next_op(now) {
                Op::Done => finished[idx] = true,
                Op::SpinUntil(t) => {
                    // Spinning occupies only this hyper-thread.
                    local[idx] = now.max(t.min(limit));
                    if t >= limit {
                        local[idx] = limit;
                    }
                }
                op => {
                    let result = execute_op(machine, &mut threads[idx], op, now, &mut rng);
                    let jitter = if cfg.jitter == 0 {
                        0
                    } else {
                        rng.gen_range(0..=cfg.jitter) as u64
                    };
                    local[idx] = now + result.cycles + jitter;
                    machine.counters_mut(threads[idx].pid).cycles += result.cycles + jitter;
                    machine.counters_mut(threads[idx].pid).instructions += 1;
                    threads[idx].program.on_result(&result);
                    ops[idx] += 1;
                }
            }
        }

        SchedulerReport {
            elapsed: local.into_iter().max().unwrap_or(0),
            ops_executed: ops,
            context_switches: 0,
        }
    }

    /// [`TimeSliced::run`] as originally implemented.
    pub fn run_time_sliced(
        cfg: &TimeSliced,
        machine: &mut Machine,
        threads: &mut [ThreadHandle<'_>],
        limit: u64,
    ) -> SchedulerReport {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let n = threads.len();
        let mut finished = vec![false; n];
        let mut ops = vec![0u64; n];
        let mut switches = 0u64;
        let mut t = 0u64;
        let mut cur = 0usize;
        let mut slice_end = t + cfg.next_quantum(&mut rng);

        while t < limit && finished.iter().any(|f| !f) {
            if finished[cur] {
                // Rotate to a live thread without charging a switch
                // (the finished one just exited).
                cur = (cur + 1) % n;
                continue;
            }
            match threads[cur].program.next_op(t) {
                Op::Done => {
                    finished[cur] = true;
                }
                Op::SpinUntil(target) => {
                    if target <= t {
                        // Deadline already passed: let the program
                        // observe the new time immediately.
                        continue;
                    }
                    let wake = target.min(limit);
                    if wake >= slice_end {
                        // The spin burns the rest of the quantum;
                        // the sibling runs next.
                        t = slice_end;
                        switches += 1;
                        t += cfg.switch_cost;
                        cur = (cur + 1) % n;
                        slice_end = t + cfg.next_quantum(&mut rng);
                    } else {
                        t = wake;
                    }
                }
                op => {
                    let result = execute_op(machine, &mut threads[cur], op, t, &mut rng);
                    t += result.cycles;
                    machine.counters_mut(threads[cur].pid).cycles += result.cycles;
                    machine.counters_mut(threads[cur].pid).instructions += 1;
                    threads[cur].program.on_result(&result);
                    ops[cur] += 1;
                    if t >= slice_end {
                        switches += 1;
                        t += cfg.switch_cost;
                        cur = (cur + 1) % n;
                        slice_end = t + cfg.next_quantum(&mut rng);
                    }
                }
            }
        }

        SchedulerReport {
            elapsed: t,
            ops_executed: ops,
            context_switches: switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Script;
    use cache_sim::profiles::MicroArch;
    use cache_sim::replacement::PolicyKind;

    fn machine() -> Machine {
        Machine::new(MicroArch::sandy_bridge_e5_2690(), PolicyKind::TreePlru, 11)
    }

    #[test]
    fn hyperthreaded_interleaves_two_scripts() {
        let mut m = machine();
        let a = m.create_process();
        let b = m.create_process();
        let va_a = m.alloc_pages(a, 1);
        let va_b = m.alloc_pages(b, 1);
        let mut pa = Script::new(vec![Op::Access(va_a); 10]);
        let mut pb = Script::new(vec![Op::Access(va_b); 10]);
        let report = HyperThreaded::new(1).run(
            &mut m,
            &mut [ThreadHandle::new(a, &mut pa), ThreadHandle::new(b, &mut pb)],
            1_000_000,
        );
        assert_eq!(report.ops_executed, vec![10, 10]);
        assert_eq!(pa.results.len(), 10);
        // Both threads made progress in overlapping time: elapsed is
        // far less than the serial sum of both threads' work.
        assert!(report.elapsed < 2 * pa.results.iter().map(|r| r.cycles).sum::<u64>());
    }

    #[test]
    fn spin_until_advances_local_clock() {
        let mut m = machine();
        let a = m.create_process();
        let mut p = Script::new(vec![Op::SpinUntil(5000), Op::Compute(10)]);
        let report =
            HyperThreaded::new(1).run(&mut m, &mut [ThreadHandle::new(a, &mut p)], 1_000_000);
        assert!(report.elapsed >= 5010);
    }

    #[test]
    fn limit_stops_infinite_spinners() {
        let mut m = machine();
        let a = m.create_process();
        let mut p = Script::new(vec![Op::SpinUntil(u64::MAX)]);
        let report = HyperThreaded::new(1).run(&mut m, &mut [ThreadHandle::new(a, &mut p)], 10_000);
        assert_eq!(report.elapsed, 10_000);
    }

    #[test]
    fn time_sliced_serializes_threads() {
        let mut m = machine();
        let a = m.create_process();
        let b = m.create_process();
        let va_a = m.alloc_pages(a, 1);
        let va_b = m.alloc_pages(b, 1);
        let mut pa = Script::new(vec![Op::Access(va_a); 5]);
        let mut pb = Script::new(vec![Op::Access(va_b); 5]);
        let sched = TimeSliced {
            quantum: 1000,
            quantum_jitter: 0,
            switch_cost: 100,
            seed: 3,
        };
        let report = sched.run(
            &mut m,
            &mut [ThreadHandle::new(a, &mut pa), ThreadHandle::new(b, &mut pb)],
            1_000_000,
        );
        assert_eq!(report.ops_executed, vec![5, 5]);
    }

    #[test]
    fn time_sliced_switches_during_long_spins() {
        let mut m = machine();
        let a = m.create_process();
        let b = m.create_process();
        let va_b = m.alloc_pages(b, 1);
        // Thread A spins far beyond several quanta; thread B works.
        let mut pa = Script::new(vec![Op::SpinUntil(50_000), Op::Compute(1)]);
        let mut pb = Script::new(vec![Op::Access(va_b); 8]);
        let sched = TimeSliced {
            quantum: 5_000,
            quantum_jitter: 0,
            switch_cost: 10,
            seed: 3,
        };
        let report = sched.run(
            &mut m,
            &mut [ThreadHandle::new(a, &mut pa), ThreadHandle::new(b, &mut pb)],
            1_000_000,
        );
        assert!(report.context_switches >= 2);
        assert_eq!(report.ops_executed[1], 8, "B must run during A's spin");
        assert_eq!(
            report.ops_executed[0], 1,
            "A finishes its compute after waking"
        );
    }

    #[test]
    fn counters_charge_cycles_per_thread() {
        let mut m = machine();
        let a = m.create_process();
        let va = m.alloc_pages(a, 1);
        let mut p = Script::new(vec![Op::Access(va), Op::Compute(100)]);
        HyperThreaded { jitter: 0, seed: 1 }.run(
            &mut m,
            &mut [ThreadHandle::new(a, &mut p)],
            1_000_000,
        );
        assert_eq!(m.counters(a).instructions, 2);
        // Access to memory (200) + issue 1 + compute 100.
        assert_eq!(m.counters(a).cycles, 301);
    }

    #[test]
    fn flush_op_flushes() {
        let mut m = machine();
        let a = m.create_process();
        let va = m.alloc_pages(a, 1);
        let mut p = Script::new(vec![Op::Access(va), Op::Flush(va)]);
        HyperThreaded::new(1).run(&mut m, &mut [ThreadHandle::new(a, &mut p)], 1_000_000);
        assert_eq!(m.probe_level(a, va), cache_sim::hierarchy::HitLevel::Mem);
    }

    #[test]
    fn timed_access_needs_probe() {
        let mut m = machine();
        let a = m.create_process();
        let va = m.alloc_pages(a, 1);
        let probe = LatencyProbe::new(&mut m, a, crate::tsc::TscModel::intel(), 63);
        let mut p = Script::new(vec![Op::TimedAccess(va)]);
        HyperThreaded::new(1).run(
            &mut m,
            &mut [ThreadHandle::with_probe(a, &mut p, probe)],
            1_000_000,
        );
        assert!(p.results[0].measured.is_some());
    }

    #[test]
    #[should_panic(expected = "requires a thread with a LatencyProbe")]
    fn timed_access_without_probe_panics() {
        let mut m = machine();
        let a = m.create_process();
        let va = m.alloc_pages(a, 1);
        let mut p = Script::new(vec![Op::TimedAccess(va)]);
        HyperThreaded::new(1).run(&mut m, &mut [ThreadHandle::new(a, &mut p)], 1_000_000);
    }

    #[test]
    fn spin_reissue_pattern_is_supported() {
        // A program that re-issues SpinUntil until time passes, as
        // the trait contract requires.
        struct Spinner {
            wake: u64,
            done_compute: bool,
        }
        impl Program for Spinner {
            fn next_op(&mut self, now: u64) -> Op {
                if now < self.wake {
                    Op::SpinUntil(self.wake)
                } else if !self.done_compute {
                    self.done_compute = true;
                    Op::Compute(7)
                } else {
                    Op::Done
                }
            }
        }
        let mut m = machine();
        let a = m.create_process();
        let b = m.create_process();
        let mut sp = Spinner {
            wake: 20_000,
            done_compute: false,
        };
        let mut other = Script::new(vec![Op::Compute(100); 50]);
        let sched = TimeSliced {
            quantum: 1_000,
            quantum_jitter: 0,
            switch_cost: 10,
            seed: 9,
        };
        let report = sched.run(
            &mut m,
            &mut [
                ThreadHandle::new(a, &mut sp),
                ThreadHandle::new(b, &mut other),
            ],
            1_000_000,
        );
        assert!(sp.done_compute);
        assert_eq!(report.ops_executed[0], 1);
    }

    #[test]
    fn with_timing_validates_the_jitter_draw() {
        assert!(TimeSliced::with_timing(1000, 2000, 10, 1).is_ok());
        let err = TimeSliced::with_timing(1000, 2001, 10, 1).unwrap_err();
        assert_eq!(
            err.to_string(),
            "need quantum_jitter <= 2*quantum, got quantum=1000, quantum_jitter=2001"
        );
        assert_eq!(
            TimeSliced::with_timing(0, 0, 10, 1).unwrap_err(),
            SchedError::ZeroQuantum
        );
        // The CFS-like default always validates.
        assert!(TimeSliced::new(7).validate().is_ok());
    }

    #[test]
    fn oversized_jitter_no_longer_panics_in_next_quantum() {
        // A direct struct literal can still carry the bad shape; the
        // draw saturates instead of wrapping or panicking.
        let sched = TimeSliced {
            quantum: 10,
            quantum_jitter: 1_000,
            switch_cost: 1,
            seed: 5,
        };
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..32 {
            let q = sched.next_quantum(&mut rng);
            assert!(q <= 1_000, "draw stays in the jitter envelope, got {q}");
        }
    }

    #[test]
    fn engine_toggle_round_trips() {
        assert_eq!(engine(), Engine::FastForward);
        set_engine(Engine::Reference);
        assert_eq!(engine(), Engine::Reference);
        set_engine(Engine::FastForward);
        assert_eq!(engine(), Engine::FastForward);
    }

    #[test]
    fn reference_and_fast_agree_on_scripts() {
        // Scripts use the default (interpreter) block path, so this
        // pins the fast engine's scheduling skeleton.
        let build = || {
            let mut m = machine();
            let a = m.create_process();
            let b = m.create_process();
            let va_a = m.alloc_pages(a, 2);
            let va_b = m.alloc_pages(b, 2);
            let pa = Script::new(vec![
                Op::Access(va_a),
                Op::Compute(30),
                Op::Access(va_a.add(64)),
                Op::SpinUntil(9_000),
                Op::Access(va_a),
            ]);
            let pb = Script::new(vec![Op::Access(va_b); 12]);
            (m, a, b, pa, pb)
        };
        let sched = TimeSliced {
            quantum: 2_500,
            quantum_jitter: 800,
            switch_cost: 50,
            seed: 21,
        };
        let (mut m1, a1, b1, mut pa1, mut pb1) = build();
        let r1 = sched.run(
            &mut m1,
            &mut [
                ThreadHandle::new(a1, &mut pa1),
                ThreadHandle::new(b1, &mut pb1),
            ],
            40_000,
        );
        let (mut m2, a2, b2, mut pa2, mut pb2) = build();
        let r2 = reference::run_time_sliced(
            &sched,
            &mut m2,
            &mut [
                ThreadHandle::new(a2, &mut pa2),
                ThreadHandle::new(b2, &mut pb2),
            ],
            40_000,
        );
        assert_eq!(r1, r2);
        assert_eq!(pa1.results, pa2.results);
        assert_eq!(m1.counters(a1), m2.counters(a2));
        assert_eq!(m1.counters(b1), m2.counters(b2));
    }

    #[test]
    fn zero_length_quantum_draws_keep_the_engines_aligned() {
        use crate::noise::RandomTouches;
        // quantum_jitter == 2*quantum validates, and roughly a third
        // of its draws are zero-length slices; a granted co-runner
        // must take the interpreter path at those boundaries instead
        // of asserting in the closed form.
        let sched = TimeSliced::with_timing(1, 2, 0, 123).unwrap();
        let run = |use_reference: bool| {
            let mut m = machine();
            let pid = m.create_process();
            let buf = m.alloc_pages(pid, 1);
            let mut prog = RandomTouches::new(buf, 8, 64, 40, 7);
            let report = if use_reference {
                reference::run_time_sliced(
                    &sched,
                    &mut m,
                    &mut [ThreadHandle::new(pid, &mut prog)],
                    50_000,
                )
            } else {
                sched.run(&mut m, &mut [ThreadHandle::new(pid, &mut prog)], 50_000)
            };
            (report, *m.counters(pid))
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn fast_forward_grant_requires_disjoint_footprints() {
        use crate::noise::RandomTouches;
        let mut m = machine();
        let a = m.create_process();
        let b = m.create_process();
        let buf_a = m.alloc_pages(a, 1);
        let buf_b = m.alloc_pages(b, 1);
        // A touches sets 0..8, B touches sets 8..16: disjoint.
        let pa = RandomTouches::new(buf_a, 8, 64, 500, 1);
        let pb = RandomTouches::new(buf_b.add(8 * 64), 8, 64, 500, 2);
        {
            let mut prog_a = pa.clone();
            let mut prog_b = pb.clone();
            let threads = [
                ThreadHandle::new(a, &mut prog_a),
                ThreadHandle::new(b, &mut prog_b),
            ];
            let slots = build_ff_slots(&m, &threads);
            assert!(slots[0].eligible && slots[1].eligible);
        }
        // Overlapping footprints (both cover set 8) are not eligible.
        let pb_overlap = RandomTouches::new(buf_b, 9, 64, 500, 2);
        {
            let mut prog_a = pa.clone();
            let mut prog_b = pb_overlap.clone();
            let threads = [
                ThreadHandle::new(a, &mut prog_a),
                ThreadHandle::new(b, &mut prog_b),
            ];
            let slots = build_ff_slots(&m, &threads);
            assert!(!slots[0].eligible && !slots[1].eligible);
        }
        // An unknown-footprint party poisons everyone.
        let mut script = Script::new(vec![Op::Compute(1)]);
        {
            let mut prog_a = pa.clone();
            let threads = [
                ThreadHandle::new(a, &mut prog_a),
                ThreadHandle::new(b, &mut script),
            ];
            let slots = build_ff_slots(&m, &threads);
            assert!(!slots[0].eligible);
        }
    }

    #[test]
    fn back_invalidating_hierarchy_demotes_every_thread() {
        use crate::noise::RandomTouches;
        use cache_sim::hierarchy::Inclusion;
        // The same single-thread setup that is eligible on the
        // default hierarchy loses eligibility as soon as the backend
        // stops being quantum-ff-safe — the capability bit consulted
        // next to `Program::footprint`.
        let run_with = |inclusion: Inclusion| {
            let mut m = machine();
            let swapped = m.hierarchy().clone().with_inclusion(inclusion);
            *m.hierarchy_mut() = swapped;
            let a = m.create_process();
            let buf = m.alloc_pages(a, 1);
            let mut prog = RandomTouches::new(buf, 8, 64, 500, 1);
            let threads = [ThreadHandle::new(a, &mut prog)];
            build_ff_slots(&m, &threads)[0].eligible
        };
        assert!(run_with(Inclusion::Inclusive));
        assert!(run_with(Inclusion::NonInclusive));
        assert!(
            !run_with(Inclusion::BackInvalidate),
            "back-invalidation must bar the fast-forward grant"
        );
    }

    use cache_sim::addr::VirtAddr;

    /// A program whose only job is to declare a footprint.
    struct DeclaredFootprint {
        ranges: Vec<(VirtAddr, u64)>,
    }
    impl Program for DeclaredFootprint {
        fn next_op(&mut self, _now: u64) -> Op {
            Op::Done
        }
        fn footprint(&self) -> Footprint {
            Footprint::Lines(self.ranges.clone())
        }
    }

    #[test]
    fn known_but_oversized_footprint_is_demoted() {
        let mut m = machine();
        let a = m.create_process();
        let va = m.alloc_pages(a, 1);
        // Declared, translatable in principle — but past the
        // expansion budget. Must fall back to interpretation, not
        // truncate the expansion.
        let mut prog = DeclaredFootprint {
            ranges: vec![(va, MAX_FF_LINES + 1)],
        };
        let threads = [ThreadHandle::new(a, &mut prog)];
        let slots = build_ff_slots(&m, &threads);
        assert!(!slots[0].eligible);
        assert!(slots[0].mask.is_none(), "oversized footprint never expands");
        // An empty (zero-line) declared footprint is likewise inert.
        let mut prog = DeclaredFootprint { ranges: vec![] };
        let threads = [ThreadHandle::new(a, &mut prog)];
        assert!(!build_ff_slots(&m, &threads)[0].eligible);
    }

    #[test]
    fn footprint_spanning_the_set_wraparound_stays_exact() {
        let mut m = machine();
        let a = m.create_process();
        let va = m.alloc_pages(a, 2);
        let geom = m.hierarchy().l1().geometry();
        assert_eq!(geom.num_sets(), 64);
        // Four lines starting at set 62: the range wraps through the
        // last set back to set 0, which must set all four mask bits
        // (a modulo bug here would alias sets and over- or
        // under-count the per-set fit).
        let mut prog = DeclaredFootprint {
            ranges: vec![(va.add(62 * 64), 4)],
        };
        let threads = [ThreadHandle::new(a, &mut prog)];
        let slots = build_ff_slots(&m, &threads);
        assert!(slots[0].eligible);
        let mask = slots[0].mask.expect("footprint expands");
        let expected = (1u64 << 62) | (1u64 << 63) | 0b11;
        assert_eq!(mask, expected);
        assert_eq!(slots[0].pas.len(), 4);
    }
}
