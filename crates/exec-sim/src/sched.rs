//! The two core-sharing settings of the paper's evaluation:
//! hyper-threaded (SMT, §V-A) and time-sliced (§V-B) scheduling.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::machine::{Machine, Pid};
use crate::measure::LatencyProbe;
use crate::program::{Op, OpResult, Program};

/// Fixed issue cost of a load beyond its cache latency (address
/// generation, AGU/port occupancy).
const ACCESS_ISSUE_COST: u64 = 1;

/// Cost of a `clflush` instruction.
const FLUSH_COST: u64 = 40;

/// A schedulable thread: a program, the process it runs as, and an
/// optional measurement probe (receivers have one, senders don't).
pub struct ThreadHandle<'a> {
    /// Process identity (page tables, counters).
    pub pid: Pid,
    /// The program to run.
    pub program: &'a mut dyn Program,
    /// Pointer-chase probe backing [`Op::TimedAccess`].
    pub probe: Option<LatencyProbe>,
}

impl<'a> ThreadHandle<'a> {
    /// A thread without a measurement probe.
    pub fn new(pid: Pid, program: &'a mut dyn Program) -> Self {
        Self {
            pid,
            program,
            probe: None,
        }
    }

    /// A thread carrying a probe (receivers).
    pub fn with_probe(pid: Pid, program: &'a mut dyn Program, probe: LatencyProbe) -> Self {
        Self {
            pid,
            program,
            probe: Some(probe),
        }
    }
}

impl std::fmt::Debug for ThreadHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadHandle")
            .field("pid", &self.pid)
            .field("probe", &self.probe.is_some())
            .finish()
    }
}

/// Summary of a scheduler run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerReport {
    /// Global cycles elapsed when the run ended.
    pub elapsed: u64,
    /// Ops executed per thread (indexed like the `threads` slice).
    pub ops_executed: Vec<u64>,
    /// Context switches performed (time-sliced only; 0 under SMT).
    pub context_switches: u64,
}

fn execute_op(
    machine: &mut Machine,
    thread: &mut ThreadHandle<'_>,
    op: Op,
    now: u64,
    rng: &mut SmallRng,
) -> OpResult {
    match op {
        Op::Access(va) => {
            let out = machine.access(thread.pid, va);
            let cycles = out.cycles as u64 + ACCESS_ISSUE_COST;
            OpResult {
                cycles,
                level: Some(out.level),
                measured: None,
                completed_at: now + cycles,
            }
        }
        Op::TimedAccess(va) => {
            let probe = thread
                .probe
                .as_ref()
                .expect("TimedAccess requires a thread with a LatencyProbe");
            let meas = probe.measure(machine, thread.pid, va, rng);
            let cycles = meas.true_cycles as u64 + probe.tsc().overhead as u64;
            OpResult {
                cycles,
                level: Some(meas.level),
                measured: Some(meas.measured),
                completed_at: now + cycles,
            }
        }
        Op::Flush(va) => {
            machine.flush(thread.pid, va);
            OpResult {
                cycles: FLUSH_COST,
                level: None,
                measured: None,
                completed_at: now + FLUSH_COST,
            }
        }
        Op::Compute(c) => OpResult {
            cycles: c as u64,
            level: None,
            measured: None,
            completed_at: now + c as u64,
        },
        Op::SpinUntil(_) | Op::Done => unreachable!("handled by the scheduler"),
    }
}

/// Hyper-threaded (SMT) sharing: both threads are live on the core,
/// their memory operations interleave at instruction granularity
/// (paper §V-A). Modelled by advancing whichever thread has the
/// smaller local clock, with a little per-op pipeline jitter so the
/// interleaving is irregular — the "random insertion" pattern the
/// Table I analysis assumes for hyper-threading.
#[derive(Debug, Clone)]
pub struct HyperThreaded {
    /// Peak per-op scheduling jitter in cycles.
    pub jitter: u32,
    /// RNG seed for the jitter stream.
    pub seed: u64,
}

impl HyperThreaded {
    /// Jitter of 2 cycles — enough to randomize interleaving without
    /// distorting latencies.
    pub fn new(seed: u64) -> Self {
        Self { jitter: 2, seed }
    }

    /// Runs the threads until all finish or `limit` global cycles
    /// pass.
    pub fn run(
        &self,
        machine: &mut Machine,
        threads: &mut [ThreadHandle<'_>],
        limit: u64,
    ) -> SchedulerReport {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = threads.len();
        let mut local = vec![0u64; n];
        let mut finished = vec![false; n];
        let mut ops = vec![0u64; n];

        // The live thread with the smallest local clock issues next.
        while let Some(idx) = (0..n)
            .filter(|&i| !finished[i] && local[i] < limit)
            .min_by_key(|&i| local[i])
        {
            let now = local[idx];
            match threads[idx].program.next_op(now) {
                Op::Done => finished[idx] = true,
                Op::SpinUntil(t) => {
                    // Spinning occupies only this hyper-thread.
                    local[idx] = now.max(t.min(limit));
                    if t >= limit {
                        local[idx] = limit;
                    }
                }
                op => {
                    let result = execute_op(machine, &mut threads[idx], op, now, &mut rng);
                    let jitter = if self.jitter == 0 {
                        0
                    } else {
                        rng.gen_range(0..=self.jitter) as u64
                    };
                    local[idx] = now + result.cycles + jitter;
                    machine.counters_mut(threads[idx].pid).cycles += result.cycles + jitter;
                    machine.counters_mut(threads[idx].pid).instructions += 1;
                    threads[idx].program.on_result(&result);
                    ops[idx] += 1;
                }
            }
        }

        SchedulerReport {
            elapsed: local.into_iter().max().unwrap_or(0),
            ops_executed: ops,
            context_switches: 0,
        }
    }
}

/// Time-sliced sharing: one thread on the core at a time, switched
/// at quantum boundaries (paper §V-B). The L1 contents survive the
/// switch (same physical core), which is exactly what the time-sliced
/// channel exploits.
#[derive(Debug, Clone)]
pub struct TimeSliced {
    /// Nominal quantum length in cycles. The paper's observations
    /// (≈30% of iterations reflecting the sender at `Tr = 1e8`)
    /// correspond to multi-`Tr` slices, i.e. a few hundred million
    /// cycles for two spinning processes under CFS.
    pub quantum: u64,
    /// Peak-to-peak random quantum variation.
    pub quantum_jitter: u64,
    /// Direct cost of a context switch in cycles.
    pub switch_cost: u64,
    /// RNG seed.
    pub seed: u64,
}

impl TimeSliced {
    /// A CFS-like default: ~3×10⁸-cycle slices (two cpu-bound tasks),
    /// ±20% jitter, 20k-cycle switch cost.
    pub fn new(seed: u64) -> Self {
        Self {
            quantum: 300_000_000,
            quantum_jitter: 120_000_000,
            switch_cost: 20_000,
            seed,
        }
    }

    /// Runs the threads round-robin until all finish or `limit`
    /// global cycles pass.
    pub fn run(
        &self,
        machine: &mut Machine,
        threads: &mut [ThreadHandle<'_>],
        limit: u64,
    ) -> SchedulerReport {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = threads.len();
        let mut finished = vec![false; n];
        let mut ops = vec![0u64; n];
        let mut switches = 0u64;
        let mut t = 0u64;
        let mut cur = 0usize;
        let mut slice_end = t + self.next_quantum(&mut rng);

        while t < limit && finished.iter().any(|f| !f) {
            if finished[cur] {
                // Rotate to a live thread without charging a switch
                // (the finished one just exited).
                cur = (cur + 1) % n;
                continue;
            }
            match threads[cur].program.next_op(t) {
                Op::Done => {
                    finished[cur] = true;
                }
                Op::SpinUntil(target) => {
                    if target <= t {
                        // Deadline already passed: let the program
                        // observe the new time immediately.
                        continue;
                    }
                    let wake = target.min(limit);
                    if wake >= slice_end {
                        // The spin burns the rest of the quantum;
                        // the sibling runs next.
                        t = slice_end;
                        switches += 1;
                        t += self.switch_cost;
                        cur = (cur + 1) % n;
                        slice_end = t + self.next_quantum(&mut rng);
                    } else {
                        t = wake;
                    }
                }
                op => {
                    let result = execute_op(machine, &mut threads[cur], op, t, &mut rng);
                    t += result.cycles;
                    machine.counters_mut(threads[cur].pid).cycles += result.cycles;
                    machine.counters_mut(threads[cur].pid).instructions += 1;
                    threads[cur].program.on_result(&result);
                    ops[cur] += 1;
                    if t >= slice_end {
                        switches += 1;
                        t += self.switch_cost;
                        cur = (cur + 1) % n;
                        slice_end = t + self.next_quantum(&mut rng);
                    }
                }
            }
        }

        SchedulerReport {
            elapsed: t,
            ops_executed: ops,
            context_switches: switches,
        }
    }

    fn next_quantum(&self, rng: &mut SmallRng) -> u64 {
        if self.quantum_jitter == 0 {
            self.quantum
        } else {
            let half = self.quantum_jitter / 2;
            self.quantum - half + rng.gen_range(0..=self.quantum_jitter)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Script;
    use cache_sim::profiles::MicroArch;
    use cache_sim::replacement::PolicyKind;

    fn machine() -> Machine {
        Machine::new(MicroArch::sandy_bridge_e5_2690(), PolicyKind::TreePlru, 11)
    }

    #[test]
    fn hyperthreaded_interleaves_two_scripts() {
        let mut m = machine();
        let a = m.create_process();
        let b = m.create_process();
        let va_a = m.alloc_pages(a, 1);
        let va_b = m.alloc_pages(b, 1);
        let mut pa = Script::new(vec![Op::Access(va_a); 10]);
        let mut pb = Script::new(vec![Op::Access(va_b); 10]);
        let report = HyperThreaded::new(1).run(
            &mut m,
            &mut [ThreadHandle::new(a, &mut pa), ThreadHandle::new(b, &mut pb)],
            1_000_000,
        );
        assert_eq!(report.ops_executed, vec![10, 10]);
        assert_eq!(pa.results.len(), 10);
        // Both threads made progress in overlapping time: elapsed is
        // far less than the serial sum of both threads' work.
        assert!(report.elapsed < 2 * pa.results.iter().map(|r| r.cycles).sum::<u64>());
    }

    #[test]
    fn spin_until_advances_local_clock() {
        let mut m = machine();
        let a = m.create_process();
        let mut p = Script::new(vec![Op::SpinUntil(5000), Op::Compute(10)]);
        let report =
            HyperThreaded::new(1).run(&mut m, &mut [ThreadHandle::new(a, &mut p)], 1_000_000);
        assert!(report.elapsed >= 5010);
    }

    #[test]
    fn limit_stops_infinite_spinners() {
        let mut m = machine();
        let a = m.create_process();
        let mut p = Script::new(vec![Op::SpinUntil(u64::MAX)]);
        let report = HyperThreaded::new(1).run(&mut m, &mut [ThreadHandle::new(a, &mut p)], 10_000);
        assert_eq!(report.elapsed, 10_000);
    }

    #[test]
    fn time_sliced_serializes_threads() {
        let mut m = machine();
        let a = m.create_process();
        let b = m.create_process();
        let va_a = m.alloc_pages(a, 1);
        let va_b = m.alloc_pages(b, 1);
        let mut pa = Script::new(vec![Op::Access(va_a); 5]);
        let mut pb = Script::new(vec![Op::Access(va_b); 5]);
        let sched = TimeSliced {
            quantum: 1000,
            quantum_jitter: 0,
            switch_cost: 100,
            seed: 3,
        };
        let report = sched.run(
            &mut m,
            &mut [ThreadHandle::new(a, &mut pa), ThreadHandle::new(b, &mut pb)],
            1_000_000,
        );
        assert_eq!(report.ops_executed, vec![5, 5]);
    }

    #[test]
    fn time_sliced_switches_during_long_spins() {
        let mut m = machine();
        let a = m.create_process();
        let b = m.create_process();
        let va_b = m.alloc_pages(b, 1);
        // Thread A spins far beyond several quanta; thread B works.
        let mut pa = Script::new(vec![Op::SpinUntil(50_000), Op::Compute(1)]);
        let mut pb = Script::new(vec![Op::Access(va_b); 8]);
        let sched = TimeSliced {
            quantum: 5_000,
            quantum_jitter: 0,
            switch_cost: 10,
            seed: 3,
        };
        let report = sched.run(
            &mut m,
            &mut [ThreadHandle::new(a, &mut pa), ThreadHandle::new(b, &mut pb)],
            1_000_000,
        );
        assert!(report.context_switches >= 2);
        assert_eq!(report.ops_executed[1], 8, "B must run during A's spin");
        assert_eq!(
            report.ops_executed[0], 1,
            "A finishes its compute after waking"
        );
    }

    #[test]
    fn counters_charge_cycles_per_thread() {
        let mut m = machine();
        let a = m.create_process();
        let va = m.alloc_pages(a, 1);
        let mut p = Script::new(vec![Op::Access(va), Op::Compute(100)]);
        HyperThreaded { jitter: 0, seed: 1 }.run(
            &mut m,
            &mut [ThreadHandle::new(a, &mut p)],
            1_000_000,
        );
        assert_eq!(m.counters(a).instructions, 2);
        // Access to memory (200) + issue 1 + compute 100.
        assert_eq!(m.counters(a).cycles, 301);
    }

    #[test]
    fn flush_op_flushes() {
        let mut m = machine();
        let a = m.create_process();
        let va = m.alloc_pages(a, 1);
        let mut p = Script::new(vec![Op::Access(va), Op::Flush(va)]);
        HyperThreaded::new(1).run(&mut m, &mut [ThreadHandle::new(a, &mut p)], 1_000_000);
        assert_eq!(m.probe_level(a, va), cache_sim::hierarchy::HitLevel::Mem);
    }

    #[test]
    fn timed_access_needs_probe() {
        let mut m = machine();
        let a = m.create_process();
        let va = m.alloc_pages(a, 1);
        let probe = LatencyProbe::new(&mut m, a, crate::tsc::TscModel::intel(), 63);
        let mut p = Script::new(vec![Op::TimedAccess(va)]);
        HyperThreaded::new(1).run(
            &mut m,
            &mut [ThreadHandle::with_probe(a, &mut p, probe)],
            1_000_000,
        );
        assert!(p.results[0].measured.is_some());
    }

    #[test]
    #[should_panic(expected = "requires a thread with a LatencyProbe")]
    fn timed_access_without_probe_panics() {
        let mut m = machine();
        let a = m.create_process();
        let va = m.alloc_pages(a, 1);
        let mut p = Script::new(vec![Op::TimedAccess(va)]);
        HyperThreaded::new(1).run(&mut m, &mut [ThreadHandle::new(a, &mut p)], 1_000_000);
    }

    #[test]
    fn spin_reissue_pattern_is_supported() {
        // A program that re-issues SpinUntil until time passes, as
        // the trait contract requires.
        struct Spinner {
            wake: u64,
            done_compute: bool,
        }
        impl Program for Spinner {
            fn next_op(&mut self, now: u64) -> Op {
                if now < self.wake {
                    Op::SpinUntil(self.wake)
                } else if !self.done_compute {
                    self.done_compute = true;
                    Op::Compute(7)
                } else {
                    Op::Done
                }
            }
        }
        let mut m = machine();
        let a = m.create_process();
        let b = m.create_process();
        let mut sp = Spinner {
            wake: 20_000,
            done_compute: false,
        };
        let mut other = Script::new(vec![Op::Compute(100); 50]);
        let sched = TimeSliced {
            quantum: 1_000,
            quantum_jitter: 0,
            switch_cost: 10,
            seed: 9,
        };
        let report = sched.run(
            &mut m,
            &mut [
                ThreadHandle::new(a, &mut sp),
                ThreadHandle::new(b, &mut other),
            ],
            1_000_000,
        );
        assert!(sp.done_compute);
        assert_eq!(report.ops_executed[0], 1);
    }
}
