//! Timestamp-counter models (paper §IV-D, §VI-A, Appendix A).
//!
//! The receiver's whole problem is telling a ~4-cycle L1 hit from a
//! ~12–17-cycle L1 miss with a noisy clock:
//!
//! * A serialized `rdtscp` pair has ~30 cycles of overhead that
//!   *overlaps* a short load's execution, so single-load
//!   measurements of L1 hits and L2 hits come out identical
//!   (Appendix A, Fig. 13). [`TscModel::measure_single`] models
//!   this with an overlap window.
//! * A pointer chase serializes its loads by data dependency, so
//!   nothing overlaps and the latency sum is visible
//!   ([`TscModel::measure_chain`], Fig. 3).
//! * The AMD readout advances in coarse steps (§VI-A), so even the
//!   pointer chase needs averaging on Zen.

use rand::rngs::SmallRng;
use rand::Rng;

use cache_sim::profiles::MicroArch;

/// A timestamp-counter / measurement model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TscModel {
    /// Observable step of the counter in cycles (1 on Intel; tens of
    /// cycles on the EPYC 7571).
    pub granularity: u32,
    /// Mean overhead of the serializing `rdtscp` pair, in cycles.
    pub overhead: u32,
    /// Peak-to-peak uniform jitter of a measurement, in cycles.
    pub jitter: u32,
    /// How many cycles of a *single* load's latency are hidden under
    /// the `rdtscp` overhead by out-of-order execution (Appendix A:
    /// enough to swallow both an L1 and an L2 hit).
    pub overlap_window: u32,
}

impl TscModel {
    /// Fine-grained Intel-style counter.
    pub fn intel() -> Self {
        TscModel {
            granularity: 1,
            overhead: 30,
            jitter: 4,
            overlap_window: 20,
        }
    }

    /// Coarse AMD-style counter (§VI-A).
    pub fn amd() -> Self {
        TscModel {
            granularity: 25,
            overhead: 60,
            jitter: 20,
            overlap_window: 20,
        }
    }

    /// The counter of a platform profile.
    pub fn from_arch(arch: &MicroArch) -> Self {
        TscModel {
            granularity: arch.tsc_granularity,
            overhead: arch.tsc_overhead,
            jitter: arch.tsc_jitter,
            overlap_window: 20,
        }
    }

    /// Measures a *single* load of true latency `true_cycles` with
    /// the `rdtscp` pair of Fig. 12. Short loads disappear into the
    /// overhead (Fig. 13: L1 hit and L1 miss overlap); only
    /// latencies beyond the overlap window become visible.
    pub fn measure_single(&self, true_cycles: u32, rng: &mut SmallRng) -> u32 {
        let visible = true_cycles.saturating_sub(self.overlap_window);
        self.readout(self.overhead + visible, rng)
    }

    /// Measures a fully serialized chain of loads (the pointer chase
    /// of Fig. 2): every cycle of `total_cycles` is visible because
    /// each load's address depends on the previous load's data.
    pub fn measure_chain(&self, total_cycles: u32, rng: &mut SmallRng) -> u32 {
        self.readout(self.overhead / 4 + total_cycles, rng)
    }

    /// Quantizes and jitters a raw cycle count the way the counter
    /// readout would.
    fn readout(&self, cycles: u32, rng: &mut SmallRng) -> u32 {
        let jitter = if self.jitter == 0 {
            0
        } else {
            rng.gen_range(0..=self.jitter)
        };
        let raw = cycles + jitter;
        if self.granularity <= 1 {
            raw
        } else {
            (raw / self.granularity) * self.granularity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    /// Sample distributions of `measure_single` for two latencies and
    /// report how much they overlap (fraction of identical readouts).
    fn single_overlap(tsc: &TscModel, lat_a: u32, lat_b: u32) -> f64 {
        let mut r = rng();
        let n = 4000;
        let a: Vec<u32> = (0..n).map(|_| tsc.measure_single(lat_a, &mut r)).collect();
        let b: Vec<u32> = (0..n).map(|_| tsc.measure_single(lat_b, &mut r)).collect();
        let same = a.iter().filter(|v| b.contains(v)).count();
        same as f64 / n as f64
    }

    #[test]
    fn rdtscp_cannot_separate_l1_from_l2() {
        // Appendix A: L1 hit (4 cycles) vs L2 hit (12 cycles)
        // distributions must be identical under measure_single.
        let tsc = TscModel::intel();
        assert!(single_overlap(&tsc, 4, 12) > 0.95);
    }

    #[test]
    fn rdtscp_does_separate_memory() {
        let tsc = TscModel::intel();
        let mut r = rng();
        let l1 = tsc.measure_single(4, &mut r);
        let mem = tsc.measure_single(200, &mut r);
        assert!(mem > l1 + 100);
    }

    #[test]
    fn chain_separates_l1_from_l2() {
        // Fig. 3: seven L1 hits (28 cycles) + target. Hit chain: 32
        // cycles total; miss chain: 40. The gap must survive
        // measurement on Intel.
        let tsc = TscModel::intel();
        let mut r = rng();
        for _ in 0..100 {
            let hit = tsc.measure_chain(7 * 4 + 4, &mut r);
            let miss = tsc.measure_chain(7 * 4 + 12, &mut r);
            assert!(miss >= hit, "miss chain reads at least as long");
        }
        // With max jitter 4 < gap 8, thresholding is reliable:
        let hits: Vec<u32> = (0..1000).map(|_| tsc.measure_chain(32, &mut r)).collect();
        let misses: Vec<u32> = (0..1000).map(|_| tsc.measure_chain(40, &mut r)).collect();
        let max_hit = *hits.iter().max().unwrap();
        let min_miss = *misses.iter().min().unwrap();
        assert!(min_miss > max_hit, "distributions must separate cleanly");
    }

    #[test]
    fn amd_chain_needs_averaging() {
        // §VI-A: single AMD readouts of the two chain latencies often
        // coincide (coarse counter), but the means differ.
        let tsc = TscModel::amd();
        let mut r = rng();
        let hits: Vec<u32> = (0..2000).map(|_| tsc.measure_chain(32, &mut r)).collect();
        let misses: Vec<u32> = (0..2000)
            .map(|_| tsc.measure_chain(32 + 13, &mut r))
            .collect();
        let same = hits.iter().filter(|v| misses.contains(v)).count();
        assert!(
            same as f64 / hits.len() as f64 > 0.2,
            "coarse counter must produce overlapping readouts"
        );
        let mean = |v: &[u32]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        assert!(
            mean(&misses) > mean(&hits) + 5.0,
            "averaging must still reveal the difference"
        );
    }

    #[test]
    fn granularity_quantizes_readout() {
        let tsc = TscModel {
            granularity: 25,
            overhead: 0,
            jitter: 0,
            overlap_window: 0,
        };
        let mut r = rng();
        assert_eq!(tsc.measure_chain(60, &mut r) % 25, 0);
    }

    #[test]
    fn from_arch_picks_up_profile_values() {
        let zen = MicroArch::zen_epyc_7571();
        let tsc = TscModel::from_arch(&zen);
        assert_eq!(tsc.granularity, zen.tsc_granularity);
        assert!(tsc.granularity > 1);
        let snb = MicroArch::sandy_bridge_e5_2690();
        assert_eq!(TscModel::from_arch(&snb).granularity, 1);
    }
}
