//! The batched execution context behind the fast-forwarding engine.
//!
//! The op-at-a-time interpreter (retained as [`crate::sched::reference`])
//! pays per executed op: a vtable call into the program, a `match`,
//! a page-table walk, counter read-modify-writes and an `OpResult`
//! round trip. A [`BlockCtx`] hands the *program* a bounded window of
//! the schedule instead: the program runs its own concrete inner loop
//! against [`BlockCtx::access`] / [`BlockCtx::compute`], which are
//! monomorphic, translate through a tiny direct-mapped TLB, and
//! accumulate time/counter charges in scratch state that is flushed
//! once per block.
//!
//! Two collapse levels sit on top:
//!
//! * **Repeated-hit replay** — when the previous access in the block
//!   was a clean L1 hit to the same line and the L1 policy's touch is
//!   idempotent ([`touch_is_idempotent`](cache_sim::replacement::PolicyKind::touch_is_idempotent)), re-accessing
//!   the line cannot change any machine state; the outcome is
//!   replayed without touching the cache. This collapses the
//!   sender's encode loop (thousands of identical hits per quantum).
//! * **Analytic fast-forward** ([`BlockCtx::advance_paced`]) — when
//!   the scheduler has *granted* the thread closed-form advancement
//!   (footprint disjoint from every other party and every monitored
//!   set, L1-resident, per-set fit; see `sched`), a paced
//!   access/compute alternation is advanced to the quantum boundary
//!   in O(1) arithmetic instead of being simulated.
//!
//! Every path reproduces the reference interpreter's time accounting,
//! per-op stop checks and counter updates exactly; the
//! `sched_equivalence` suite and the scheduler property tests pin the
//! equivalence.

use cache_sim::addr::{PhysAddr, VirtAddr};
use cache_sim::counters::PerfCounters;
use cache_sim::hierarchy::HitLevel;
use cache_sim::replacement::Domain;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::machine::{Machine, Pid};

/// Fixed issue cost of a load beyond its cache latency (address
/// generation, AGU/port occupancy). Mirrors the interpreter.
pub const ACCESS_ISSUE_COST: u64 = 1;

/// Direct-mapped translation cache entries. The hot programs touch a
/// handful of pages (sender: 1, receiver: ≤ 9, noise: buffer pages),
/// so a tiny power-of-two table removes the per-access page-table
/// walk without growing the context.
const TLB_WAYS: usize = 16;

/// Outcome of one closed-form [`BlockCtx::advance_paced`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacedAdvance {
    /// Accesses executed (all L1 hits, by the grant's precondition).
    pub accesses: u64,
    /// Compute ops executed.
    pub computes: u64,
    /// Global time after the final op.
    pub end: u64,
    /// Issue time of the final access (programs re-derive their
    /// pacing state, e.g. `next_slot = last_access_at + gap`).
    pub last_access_at: u64,
}

/// Per-op jitter configuration for the hyper-threaded engine.
pub(crate) struct JitterCfg<'a> {
    /// Peak jitter in cycles (0 = no draw, matching the reference).
    pub jitter: u32,
    /// The scheduler's RNG; one draw per executed op when
    /// `jitter > 0`.
    pub rng: &'a mut SmallRng,
}

/// What the engine gets back when a block closes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockEffects {
    /// Global time after the last executed op.
    pub end: u64,
    /// Ops executed in the block.
    pub ops: u64,
}

/// A bounded, monomorphic execution window handed to
/// [`Program::run_block`](crate::program::Program::run_block).
///
/// The program issues [`BlockCtx::access`] and [`BlockCtx::compute`]
/// ops as long as [`BlockCtx::can_issue`] holds, deriving its control
/// flow from [`BlockCtx::now`] exactly as it would from the `now`
/// argument of `next_op`. Ops the context refuses (window exhausted)
/// must not change program state — check `can_issue` first.
pub struct BlockCtx<'a> {
    machine: &'a mut Machine,
    pid: Pid,
    domain: Domain,
    now: u64,
    /// Pre-op stop: no op may *start* at `now >= limit` (the
    /// scheduler's global cycle budget).
    limit: u64,
    /// Post-op stop threshold (time-sliced: the slice end;
    /// hyper-threaded: the interleaving bound).
    until: u64,
    /// `true`: close once `now >= until` (slice end). `false`: close
    /// once `now > until` (this thread wins clock ties).
    until_inclusive: bool,
    open: bool,
    jitter: Option<JitterCfg<'a>>,
    ops: u64,
    scratch: PerfCounters,
    bulk_l1_hits: u64,
    /// Memoized previous access: `(va, cycles)` of a clean L1 hit.
    memo: Option<(VirtAddr, u64)>,
    /// Whether repeated-hit replay is sound on this machine
    /// (idempotent L1 touch).
    repeat_ok: bool,
    /// Granted closed-form access cost (`None` = not granted).
    analytic_cycles: Option<u64>,
    /// Direct-mapped VPN → frame cache. `u64::MAX` marks empty.
    tlb: [(u64, u64); TLB_WAYS],
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new_time_sliced(
        machine: &'a mut Machine,
        pid: Pid,
        now: u64,
        limit: u64,
        slice_end: u64,
        analytic_cycles: Option<u64>,
        repeat_ok: bool,
    ) -> Self {
        Self::new(
            machine,
            pid,
            now,
            limit,
            slice_end,
            true,
            None,
            analytic_cycles,
            repeat_ok,
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_hyper_threaded(
        machine: &'a mut Machine,
        pid: Pid,
        now: u64,
        limit: u64,
        bound: u64,
        wins_ties: bool,
        jitter: JitterCfg<'a>,
        repeat_ok: bool,
    ) -> Self {
        Self::new(
            machine,
            pid,
            now,
            limit,
            bound,
            !wins_ties,
            Some(jitter),
            None,
            repeat_ok,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn new(
        machine: &'a mut Machine,
        pid: Pid,
        now: u64,
        limit: u64,
        until: u64,
        until_inclusive: bool,
        jitter: Option<JitterCfg<'a>>,
        analytic_cycles: Option<u64>,
        repeat_ok: bool,
    ) -> Self {
        let domain = machine.domain_of(pid);
        // A zero-length slice (a validated `quantum_jitter ==
        // 2*quantum` config can draw one) starts the window already
        // closed; the scheduler then runs the boundary op through the
        // interpreter path, exactly like the reference.
        let open = if until_inclusive {
            now < until
        } else {
            now <= until
        };
        Self {
            machine,
            pid,
            domain,
            now,
            limit,
            until,
            until_inclusive,
            open,
            jitter,
            ops: 0,
            scratch: PerfCounters::new(),
            bulk_l1_hits: 0,
            memo: None,
            repeat_ok,
            analytic_cycles,
            tlb: [(u64::MAX, 0); TLB_WAYS],
        }
    }

    /// The global time the next op would start at.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether the window accepts another op.
    #[inline]
    pub fn can_issue(&self) -> bool {
        self.open && self.now < self.limit
    }

    /// The granted closed-form access cost in cycles, when the
    /// scheduler has proved this thread's footprint safe to
    /// fast-forward this quantum (see the module docs). `None` means
    /// ops must be executed individually.
    #[inline]
    pub fn analytic_access_cycles(&self) -> Option<u64> {
        self.analytic_cycles
    }

    /// Executes `Op::Compute(cycles)`. Returns [`BlockCtx::can_issue`]
    /// for the *next* op. Must only be called while `can_issue()`.
    #[inline]
    pub fn compute(&mut self, cycles: u32) -> bool {
        debug_assert!(self.can_issue(), "compute issued outside the window");
        self.charge(u64::from(cycles));
        self.can_issue()
    }

    /// Executes `Op::Access(va)` — a demand load with the same cost
    /// model and counter effects as the interpreter. Returns
    /// [`BlockCtx::can_issue`] for the next op. Must only be called
    /// while `can_issue()`.
    #[inline]
    pub fn access(&mut self, va: VirtAddr) -> bool {
        debug_assert!(self.can_issue(), "access issued outside the window");
        let cycles = match self.memo {
            // Repeated-hit replay: the previous op in this block was
            // a clean L1 hit to the same line, the policy's touch is
            // idempotent and no other thread can have run since — the
            // machine state after this access is provably identical,
            // so only the accounting happens.
            Some((m_va, m_cycles)) if self.repeat_ok && m_va == va => {
                self.scratch.l1d_accesses += 1;
                self.bulk_l1_hits += 1;
                m_cycles
            }
            _ => {
                let pa = self.translate(va);
                let out =
                    self.machine
                        .hierarchy_mut()
                        .access(va, pa, &mut self.scratch, self.domain);
                let cycles = u64::from(out.cycles) + ACCESS_ISSUE_COST;
                // Only a hit that paid the fast-path latency settles
                // the way predictor and leaves state a re-touch
                // cannot change; misses and µtag mispredicts retrain.
                self.memo =
                    (out.level == HitLevel::L1 && !out.utag_mispredict).then_some((va, cycles));
                cycles
            }
        };
        self.charge(cycles);
        self.can_issue()
    }

    /// Closed-form advancement of a paced loop: starting now (an
    /// access is due), the program alternates `[access, compute(gap)]`
    /// until the window closes. Requires an analytic grant; each
    /// access is charged the granted cost. Returns `None` when no
    /// grant is active or `gap == 0` — callers fall back to per-op
    /// execution.
    ///
    /// The arithmetic reproduces the interpreter's exact stop checks:
    /// an op only starts while `now < limit`, and the block closes
    /// after the op that reaches the slice end.
    pub fn advance_paced(&mut self, gap: u32) -> Option<PacedAdvance> {
        let c = self.analytic_cycles?;
        if gap == 0 || !self.can_issue() {
            return None;
        }
        debug_assert!(
            self.until_inclusive,
            "analytic grants exist only under time-sliced scheduling"
        );
        let g = u64::from(gap);
        let adv = advance_paced_closed_form(self.now, c, g, self.until, self.limit);
        #[cfg(debug_assertions)]
        {
            let naive = advance_paced_naive(self.now, c, g, self.until, self.limit);
            debug_assert_eq!(adv, naive, "closed form diverged from the op loop");
        }
        self.scratch.l1d_accesses += adv.accesses;
        self.bulk_l1_hits += adv.accesses;
        self.scratch.instructions += adv.accesses + adv.computes;
        self.scratch.cycles += adv.end - self.now;
        self.ops += adv.accesses + adv.computes;
        self.now = adv.end;
        if self.now >= self.until {
            self.open = false;
        }
        self.memo = None;
        Some(adv)
    }

    /// Closed-form advancement of the *memoized* paced loop: starting
    /// now, the program alternates `[compute(gap), access(va)]` where
    /// every access repeats the previous clean L1 hit to `va` — the
    /// sender's encode pattern. No op may start at or past `deadline`
    /// (the program's own boundary, e.g. the current bit period's
    /// end).
    ///
    /// Sound for exactly the same reason as the per-op replay in
    /// [`BlockCtx::access`]: with an idempotent replacement touch and
    /// no interleaving inside the block, re-accessing the memoized
    /// line cannot change machine state, so only the accounting
    /// happens — here in O(1) arithmetic instead of per op. Returns
    /// `None` (run per-op instead) when no valid memo is held for
    /// `va`, under per-op jitter (hyper-threading), or for a zero
    /// gap.
    pub fn repeat_paced(&mut self, va: VirtAddr, gap: u32, deadline: u64) -> Option<PacedAdvance> {
        let (m_va, c) = self.memo?;
        if !self.repeat_ok
            || m_va != va
            || gap == 0
            || self.jitter.is_some()
            || !self.can_issue()
            || self.now >= deadline
        {
            return None;
        }
        let g = u64::from(gap);
        // Compute-first alternation = the access-first closed form
        // with the roles swapped: "firsts" are computes, "seconds"
        // are accesses.
        let pre_stop = self.limit.min(deadline);
        let alt = advance_paced_closed_form(self.now, g, c, self.until, pre_stop);
        #[cfg(debug_assertions)]
        {
            let naive = advance_paced_naive(self.now, g, c, self.until, pre_stop);
            debug_assert_eq!(alt, naive, "closed form diverged from the op loop");
        }
        let (computes, accesses) = (alt.accesses, alt.computes);
        let adv = PacedAdvance {
            accesses,
            computes,
            end: alt.end,
            // Last access issue time: the sequence ends either on an
            // access (computes == accesses) or on a compute.
            last_access_at: if accesses == 0 {
                self.now
            } else if computes == accesses {
                alt.end - c
            } else {
                alt.end - g - c
            },
        };
        self.scratch.l1d_accesses += accesses;
        self.bulk_l1_hits += accesses;
        self.scratch.instructions += accesses + computes;
        self.scratch.cycles += adv.end - self.now;
        self.ops += accesses + computes;
        self.now = adv.end;
        if self.now >= self.until {
            self.open = false;
        }
        Some(adv)
    }

    #[inline]
    fn charge(&mut self, cycles: u64) {
        let jitter = match &mut self.jitter {
            Some(cfg) if cfg.jitter > 0 => u64::from(cfg.rng.gen_range(0..=cfg.jitter)),
            _ => 0,
        };
        self.now += cycles + jitter;
        self.scratch.cycles += cycles + jitter;
        self.scratch.instructions += 1;
        self.ops += 1;
        let crossed = if self.until_inclusive {
            self.now >= self.until
        } else {
            self.now > self.until
        };
        if crossed {
            self.open = false;
        }
    }

    #[inline]
    fn translate(&mut self, va: VirtAddr) -> PhysAddr {
        let vpn = va.page_number();
        let slot = (vpn as usize) & (TLB_WAYS - 1);
        let (tag, frame) = self.tlb[slot];
        if tag == vpn {
            return PhysAddr::from_frame(frame, va.page_offset());
        }
        let pa = self
            .machine
            .translate(self.pid, va)
            .unwrap_or_else(|| panic!("access to unmapped page by {:?} at {va}", self.pid));
        self.tlb[slot] = (vpn, pa.page_number());
        pa
    }

    /// Closes the block: flushes the scratch counters and skipped-hit
    /// accounting into the machine and returns the effects.
    pub(crate) fn finish(self) -> BlockEffects {
        if self.bulk_l1_hits > 0 {
            self.machine
                .hierarchy_mut()
                .l1_mut()
                .record_skipped_hits(self.bulk_l1_hits);
        }
        if self.scratch != PerfCounters::new() {
            *self.machine.counters_mut(self.pid) += self.scratch;
        }
        BlockEffects {
            end: self.now,
            ops: self.ops,
        }
    }
}

/// O(1) solution of the paced-alternation loop: starting at `t0`
/// (access due), repeat `[access cost c, compute cost g]` under the
/// interpreter's checks — an op starts only while `t < limit`, the
/// run ends after the op that reaches `until`. Returns the executed
/// op counts and the final time.
fn advance_paced_closed_form(t0: u64, c: u64, g: u64, until: u64, limit: u64) -> PacedAdvance {
    debug_assert!(t0 < limit && t0 < until && c > 0 && g > 0);
    let p = c + g;
    // First pair index at which each stop event fires. Events within
    // a pair are checked in order: pre-access limit, post-access
    // slice end, pre-compute limit, post-compute slice end.
    let e1 = (limit - t0).div_ceil(p);
    let e2 = if until <= t0 + c {
        0
    } else {
        (until - t0 - c).div_ceil(p)
    };
    let e3 = if limit <= t0 + c {
        0
    } else {
        (limit - t0 - c).div_ceil(p)
    };
    let e4 = if until <= t0 + p {
        0
    } else {
        (until - t0 - p).div_ceil(p)
    };
    // Lexicographic minimum over (pair index, in-pair order).
    let (i, order) = [(e1, 0u8), (e2, 1), (e3, 2), (e4, 3)]
        .into_iter()
        .min_by_key(|&(i, order)| (i, order))
        .expect("non-empty");
    let s = t0 + i * p;
    match order {
        // Stopped before the access: `i` full pairs ran.
        0 => PacedAdvance {
            accesses: i,
            computes: i,
            end: s,
            last_access_at: if i > 0 { s - p } else { t0 },
        },
        // Access `i` ran and reached the slice end, or the compute
        // after it could not start.
        1 | 2 => PacedAdvance {
            accesses: i + 1,
            computes: i,
            end: s + c,
            last_access_at: s,
        },
        // Pair `i` completed and its compute reached the slice end.
        _ => PacedAdvance {
            accesses: i + 1,
            computes: i + 1,
            end: s + p,
            last_access_at: s,
        },
    }
}

/// The op-at-a-time reference of [`advance_paced_closed_form`], used
/// by debug assertions and the property tests.
#[cfg(any(test, debug_assertions))]
fn advance_paced_naive(t0: u64, c: u64, g: u64, until: u64, limit: u64) -> PacedAdvance {
    let mut t = t0;
    let mut accesses = 0u64;
    let mut computes = 0u64;
    let mut last_access_at = t0;
    loop {
        if t >= limit {
            break;
        }
        last_access_at = t;
        t += c;
        accesses += 1;
        if t >= until || t >= limit {
            break;
        }
        t += g;
        computes += 1;
        if t >= until {
            break;
        }
    }
    PacedAdvance {
        accesses,
        computes,
        end: t,
        last_access_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_the_op_loop() {
        // Sweep pacing shapes around the stop thresholds, including
        // slice ends landing mid-access, mid-compute and on exact
        // boundaries, and limits tighter than the slice.
        for c in [1u64, 4, 5, 37] {
            for g in [1u64, 3, 40, 50_000] {
                for until in [1u64, c, c + 1, c + g, 997, 100_000] {
                    for limit in [1u64, c, until, until + 1, 3 * until + 7, u64::MAX] {
                        let t0 = 0;
                        if t0 >= until || t0 >= limit {
                            continue;
                        }
                        assert_eq!(
                            advance_paced_closed_form(t0, c, g, until, limit),
                            advance_paced_naive(t0, c, g, until, limit),
                            "c={c} g={g} until={until} limit={limit}"
                        );
                    }
                }
            }
        }
        // Non-zero start times.
        for t0 in [1u64, 999, 123_456] {
            let (c, g) = (5, 60_000);
            let until = t0 + 300_000_000;
            let limit = t0 + 450_000_123;
            assert_eq!(
                advance_paced_closed_form(t0, c, g, until, limit),
                advance_paced_naive(t0, c, g, until, limit)
            );
        }
    }

    #[test]
    fn closed_form_counts_a_full_quantum() {
        // A sender-shaped quantum: 5-cycle hits every 50k cycles of
        // compute, 3e8-cycle slice.
        let adv = advance_paced_closed_form(0, 5, 50_000, 300_000_000, u64::MAX);
        assert_eq!(adv.accesses, 6000);
        assert_eq!(adv.computes, 6000);
        assert!(adv.end >= 300_000_000);
    }
}
