//! Background-activity programs.
//!
//! The evaluation repeatedly needs "some other process is also using
//! the core": the benign co-runner of Table VI, the pollution that
//! limits time-sliced Algorithm 2 (§V-B), and generic measurement
//! noise. These programs provide that activity with controllable
//! intensity.

use cache_sim::addr::VirtAddr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::block::BlockCtx;
use crate::program::{Footprint, Op, Program};

/// A program that touches uniformly random lines of its own buffer,
/// pausing `gap_cycles` of compute between touches. Runs forever
/// (bounded by the scheduler's limit).
#[derive(Debug, Clone)]
pub struct RandomTouches {
    buffer: VirtAddr,
    buffer_lines: u64,
    line_size: u64,
    gap_cycles: u32,
    rng: SmallRng,
    emit_access: bool,
}

impl RandomTouches {
    /// Creates a noise program over `buffer_lines` cache lines
    /// starting at `buffer` (caller must have allocated the pages).
    pub fn new(
        buffer: VirtAddr,
        buffer_lines: u64,
        line_size: u64,
        gap_cycles: u32,
        seed: u64,
    ) -> Self {
        Self {
            buffer,
            buffer_lines,
            line_size,
            gap_cycles,
            rng: SmallRng::seed_from_u64(seed),
            emit_access: true,
        }
    }
}

impl Program for RandomTouches {
    fn next_op(&mut self, _now: u64) -> Op {
        if self.emit_access {
            self.emit_access = false;
            let line = self.rng.gen_range(0..self.buffer_lines);
            Op::Access(self.buffer.add(line * self.line_size))
        } else {
            self.emit_access = true;
            Op::Compute(self.gap_cycles)
        }
    }

    fn run_block(&mut self, ctx: &mut BlockCtx<'_>) {
        loop {
            if !ctx.can_issue() {
                return;
            }
            if self.emit_access {
                // Fast-forward: under a grant every touch is an L1
                // hit to a set nobody else observes, so the strict
                // access/compute alternation advances in closed
                // form. The line draws are not replayed — which
                // lines were touched is unobservable once the
                // footprint is warm and private.
                if let Some(adv) = ctx.advance_paced(self.gap_cycles) {
                    self.emit_access = adv.accesses == adv.computes;
                    continue;
                }
                self.emit_access = false;
                let line = self.rng.gen_range(0..self.buffer_lines);
                ctx.access(self.buffer.add(line * self.line_size));
            } else {
                self.emit_access = true;
                ctx.compute(self.gap_cycles);
            }
        }
    }

    fn uses_blocks(&self) -> bool {
        true
    }

    fn footprint(&self) -> Footprint {
        if self.line_size == 64 && self.buffer_lines > 0 {
            Footprint::Lines(vec![(self.buffer, self.buffer_lines)])
        } else {
            Footprint::Unknown
        }
    }
}

/// A program that streams sequentially through its buffer over and
/// over (a memcpy-ish co-runner), pausing `gap_cycles` between
/// touches.
#[derive(Debug, Clone)]
pub struct SequentialStream {
    buffer: VirtAddr,
    buffer_lines: u64,
    line_size: u64,
    gap_cycles: u32,
    next_line: u64,
    emit_access: bool,
}

impl SequentialStream {
    /// Creates the streaming program.
    pub fn new(buffer: VirtAddr, buffer_lines: u64, line_size: u64, gap_cycles: u32) -> Self {
        Self {
            buffer,
            buffer_lines,
            line_size,
            gap_cycles,
            next_line: 0,
            emit_access: true,
        }
    }
}

impl Program for SequentialStream {
    fn next_op(&mut self, _now: u64) -> Op {
        if self.emit_access {
            self.emit_access = false;
            let line = self.next_line;
            self.next_line = (self.next_line + 1) % self.buffer_lines;
            Op::Access(self.buffer.add(line * self.line_size))
        } else {
            self.emit_access = true;
            Op::Compute(self.gap_cycles)
        }
    }

    fn run_block(&mut self, ctx: &mut BlockCtx<'_>) {
        while ctx.can_issue() {
            if self.emit_access {
                self.emit_access = false;
                let line = self.next_line;
                self.next_line = (self.next_line + 1) % self.buffer_lines;
                ctx.access(self.buffer.add(line * self.line_size));
            } else {
                self.emit_access = true;
                ctx.compute(self.gap_cycles);
            }
        }
    }

    fn uses_blocks(&self) -> bool {
        true
    }

    fn footprint(&self) -> Footprint {
        if self.line_size == 64 && self.buffer_lines > 0 {
            Footprint::Lines(vec![(self.buffer, self.buffer_lines)])
        } else {
            Footprint::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::sched::{HyperThreaded, ThreadHandle};
    use cache_sim::profiles::MicroArch;
    use cache_sim::replacement::PolicyKind;

    #[test]
    fn random_touches_alternate_access_and_compute() {
        let mut p = RandomTouches::new(VirtAddr::new(0), 16, 64, 50, 1);
        assert!(matches!(p.next_op(0), Op::Access(_)));
        assert!(matches!(p.next_op(0), Op::Compute(50)));
        assert!(matches!(p.next_op(0), Op::Access(_)));
    }

    #[test]
    fn sequential_stream_wraps() {
        let mut p = SequentialStream::new(VirtAddr::new(0), 2, 64, 10);
        let mut touched = Vec::new();
        for _ in 0..6 {
            if let Op::Access(va) = p.next_op(0) {
                touched.push(va.raw());
            }
        }
        assert_eq!(touched, vec![0, 64, 0]);
    }

    #[test]
    fn noise_runs_under_a_scheduler() {
        let mut m = Machine::new(MicroArch::sandy_bridge_e5_2690(), PolicyKind::TreePlru, 2);
        let pid = m.create_process();
        let buf = m.alloc_pages(pid, 4);
        let mut noise = RandomTouches::new(buf, 4 * 64, 64, 100, 9);
        let report =
            HyperThreaded::new(4).run(&mut m, &mut [ThreadHandle::new(pid, &mut noise)], 200_000);
        assert!(report.ops_executed[0] > 100, "noise must keep running");
        assert!(m.counters(pid).l1d_accesses > 50);
    }
}
