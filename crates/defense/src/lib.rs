//! # defense — mitigations of the LRU-state channels (paper §IX)
//!
//! One module per defense family the paper discusses and evaluates:
//!
//! * [`policy_eval`] — remove the LRU state altogether: FIFO and
//!   Random replacement, with the Fig. 9 performance study showing
//!   the cost is small (<2% CPI on the GEM5 configuration).
//! * [`pl_cache_eval`] — the PL-cache case study (Figs. 10/11): the
//!   original design leaks through LRU updates on locked lines; the
//!   paper's fix freezes the replacement state for locked lines.
//! * [`partition_eval`] — partitioning: way-partitioning alone (most
//!   secure caches) still leaks through the *shared* Tree-PLRU bits;
//!   DAWG-style partitioning of the replacement state itself stops
//!   the channel.
//! * [`delayed_update`] — InvisiSpec-style invisible speculation:
//!   no µ-architectural update until a load is non-speculative, so
//!   Spectre + LRU channel recovers nothing.
//! * [`randomization`] — the two §IX-B randomization families:
//!   random-fill caches (which the LRU channel *survives*, because
//!   hits still update the state) and keyed address↔set mappings
//!   (which deny the parties a common target set).
//! * [`detection`] — why miss-rate-based detectors (CloudRadar et
//!   al.) flag Flush+Reload but not the LRU-channel sender (§VII,
//!   §X).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delayed_update;
pub mod detection;
pub mod partition_eval;
pub mod pl_cache_eval;
pub mod policy_eval;
pub mod randomization;
