//! InvisiSpec-style invisible speculation (§IX-B): µ-architectural
//! state — including the replacement state — is only updated once a
//! load is no longer speculative. Squashed transient loads therefore
//! leave nothing for any disclosure primitive to read.

use attacks::primitive::{FlushReloadPrimitive, LruAlg1Primitive, LruAlg2Primitive};
use attacks::spectre::{decode_symbols, encode_symbols, SpectreAttack};
use cache_sim::profiles::MicroArch;
use cache_sim::replacement::PolicyKind;
use exec_sim::machine::Machine;
use exec_sim::speculation::{build_victim, SpecMode};
use lru_channel::params::Platform;

/// Which disclosure primitive to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Flush+Reload.
    FlushReload,
    /// LRU Algorithm 1.
    LruAlg1,
    /// LRU Algorithm 2.
    LruAlg2,
}

/// Result of one Spectre-vs-defense run.
#[derive(Debug, Clone)]
pub struct SpectreDefenseResult {
    /// Channel attacked through.
    pub channel: Channel,
    /// Speculation mode (Baseline or Invisible).
    pub mode: SpecMode,
    /// Fraction of secret symbols recovered correctly.
    pub accuracy: f64,
    /// The recovered text (for the record).
    pub recovered: String,
}

/// Runs the Spectre attack over `secret` through `channel` with the
/// given speculation mode and reports recovery accuracy.
pub fn spectre_under_mode(
    channel: Channel,
    mode: SpecMode,
    secret: &str,
    seed: u64,
) -> SpectreDefenseResult {
    let platform = Platform::e5_2690();
    let mut machine = Machine::new(
        MicroArch::sandy_bridge_e5_2690(),
        PolicyKind::TreePlru,
        seed,
    );
    let symbols = encode_symbols(secret);
    let (mut victim, off) = build_victim(&mut machine, &symbols, 8);
    let attack = SpectreAttack {
        mode,
        seed,
        ..SpectreAttack::default()
    };
    let got = match channel {
        Channel::FlushReload => {
            let mut p = FlushReloadPrimitive::new(victim.pid, victim.array2, platform);
            attack.recover(&mut machine, &mut victim, &mut p, off, symbols.len())
        }
        Channel::LruAlg1 => {
            let mut p = LruAlg1Primitive::new(&mut machine, victim.pid, victim.array2, platform);
            attack.recover(&mut machine, &mut victim, &mut p, off, symbols.len())
        }
        Channel::LruAlg2 => {
            let mut p = LruAlg2Primitive::new(&mut machine, victim.pid, victim.array2, platform);
            attack.recover(&mut machine, &mut victim, &mut p, off, symbols.len())
        }
    };
    let correct = got
        .iter()
        .zip(symbols.iter())
        .filter(|(a, b)| a == b)
        .count();
    SpectreDefenseResult {
        channel,
        mode,
        accuracy: correct as f64 / symbols.len().max(1) as f64,
        recovered: decode_symbols(&got),
    }
}

/// The full ablation: every channel, with and without the defense.
pub fn ablation(secret: &str, seed: u64) -> Vec<SpectreDefenseResult> {
    let mut out = Vec::new();
    for channel in [Channel::FlushReload, Channel::LruAlg1, Channel::LruAlg2] {
        for mode in [SpecMode::Baseline, SpecMode::Invisible] {
            out.push(spectre_under_mode(channel, mode, secret, seed));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_leaks_invisible_does_not() {
        for channel in [Channel::LruAlg1, Channel::LruAlg2] {
            let base = spectre_under_mode(channel, SpecMode::Baseline, "hi", 3);
            let inv = spectre_under_mode(channel, SpecMode::Invisible, "hi", 3);
            assert!(
                base.accuracy > 0.99,
                "{channel:?} baseline should recover the secret, got {}",
                base.recovered
            );
            assert!(
                inv.accuracy < 0.5,
                "{channel:?} must fail under invisible speculation, got {}",
                inv.recovered
            );
        }
    }

    #[test]
    fn invisible_speculation_also_stops_flush_reload() {
        let inv = spectre_under_mode(Channel::FlushReload, SpecMode::Invisible, "hi", 4);
        assert!(inv.accuracy < 0.5, "got {}", inv.recovered);
    }

    #[test]
    fn ablation_covers_the_grid() {
        let rows = ablation("z", 5);
        assert_eq!(rows.len(), 6);
    }
}
