//! Randomization defenses (§IX-B).
//!
//! The paper examines two randomization families and reaches
//! opposite verdicts, both reproduced here:
//!
//! * **Random-fill caches** (Liu & Lee 2014) decouple *what is
//!   fetched* from *what was accessed* — a miss fills a random
//!   neighbour line instead of the demanded one. That kills
//!   contention (miss-based) channels, but the paper observes:
//!   "if the cache line is already in the cache, on a cache hit, the
//!   replacement state will be updated, and the LRU channel could
//!   still work." [`random_fill_leak`] demonstrates exactly that.
//! * **Randomized address↔set mappings** (New cache / RP cache /
//!   CEASER) keyed per domain deny the parties the ability to *find*
//!   a common target set at all: the receiver's carefully chosen
//!   same-index lines scatter across sets. [`index_randomization_defeats_eviction`]
//!   shows the eviction machinery the channels rely on disappears.

use cache_sim::addr::PhysAddr;
use cache_sim::cache::Cache;
use cache_sim::geometry::CacheGeometry;
use cache_sim::replacement::PolicyKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of the random-fill experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomFillLeak {
    /// How often the sender's cache **hit** changed the receiver's
    /// victim (the LRU channel — survives random fill).
    pub hit_channel_flip_rate: f64,
    /// How often the sender's cache **miss** landed its own line in
    /// the set (the contention channel — what random fill removes).
    pub miss_channel_fill_rate: f64,
}

/// A one-set random-fill model: hits behave normally (including the
/// replacement-state update); a demand miss fills a *random* line of
/// a 64-line neighbourhood window instead of the requested one, and
/// the requested data is served uncached.
fn random_fill_access(cache: &mut Cache, requested: PhysAddr, rng: &mut SmallRng) -> bool {
    if cache.probe(requested) {
        // Ordinary hit: LRU state updates — the residual channel.
        cache.access(requested);
        true
    } else {
        // Random fill: a random line from the neighbourhood window
        // goes in; the requested line does not.
        let geom = cache.geometry();
        let window_line = rng.gen_range(0..64u64);
        let fill = PhysAddr::new(
            (requested.raw() & !(geom.set_stride() * 64 - 1)) + window_line * geom.set_stride(),
        );
        cache.prefetch_fill(fill);
        false
    }
}

/// Measures both channels against a random-fill cache set.
///
/// Setup per trial: receiver's 8 lines resident in the (single-set)
/// cache with a random access history; sender's line resident too in
/// the hit-channel arm. The sender then hits (or misses) once, and
/// we check whether the receiver's next eviction victim changed
/// (hit channel) or whether the sender's line got installed (miss
/// channel).
pub fn random_fill_leak(trials: usize, seed: u64) -> RandomFillLeak {
    let mut rng = SmallRng::seed_from_u64(seed);
    let geom = CacheGeometry::new(64, 1, 8).expect("valid geometry");
    let line = |i: u64| PhysAddr::new(i * geom.set_stride());
    let mut hit_flips = 0usize;
    let mut miss_fills = 0usize;

    for t in 0..trials {
        // --- Hit channel: sender's line 0 is resident (Alg. 1). ---
        let mut cache = Cache::new(geom, PolicyKind::TreePlru, seed ^ t as u64);
        for i in 0..8u64 {
            cache.access(line(i)); // receiver lines 0..7 resident
        }
        for _ in 0..rng.gen_range(0..12) {
            cache.access(line(rng.gen_range(0..8)));
        }
        let mut with_hit = cache.clone();
        // Sender hits line 0 — allowed and state-updating even under
        // random fill.
        let was_hit = random_fill_access(&mut with_hit, line(0), &mut rng);
        assert!(was_hit, "line 0 is resident by construction");
        // Receiver's next replacement victim, with and without.
        let v_quiet = {
            let mut c = cache.clone();
            c.access(line(100)).evicted
        };
        let v_noisy = {
            let mut c = with_hit.clone();
            c.access(line(100)).evicted
        };
        if v_quiet != v_noisy {
            hit_flips += 1;
        }

        // --- Miss channel: sender's line 8 is NOT resident. ---
        let mut miss_cache = cache;
        let before = miss_cache.probe(line(8));
        assert!(!before);
        let _ = random_fill_access(&mut miss_cache, line(8), &mut rng);
        if miss_cache.probe(line(8)) {
            miss_fills += 1; // only via a lucky random fill
        }
    }
    RandomFillLeak {
        hit_channel_flip_rate: hit_flips as f64 / trials as f64,
        miss_channel_fill_rate: miss_fills as f64 / trials as f64,
    }
}

/// Result of the index-randomization experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexRandomizationResult {
    /// P(receiver's N+1 "same-set" lines actually collide in one
    /// set) under the keyed mapping.
    pub collision_rate: f64,
    /// P(the receiver's decode access evicts its line 0) — the
    /// channel's working part — under the keyed mapping.
    pub eviction_rate: f64,
    /// Same eviction probability on the baseline (unkeyed) cache.
    pub baseline_eviction_rate: f64,
}

/// Keyed set-index permutation: `set' = f_key(set, tag)`, modelling
/// New cache / RP cache / CEASER-style remapping. The receiver picks
/// addresses with identical *index bits*, but the cache scatters them
/// by (key, tag), so they no longer contend.
fn keyed_set(geom: CacheGeometry, pa: PhysAddr, key: u64) -> usize {
    let tag = geom.tag(pa.raw());
    let set = geom.set_index(pa.raw()) as u64;
    let x = (set ^ tag).wrapping_mul(key | 1);
    ((x ^ (x >> 17) ^ (x >> 31)) % geom.num_sets()) as usize
}

/// Runs the §IX-B mapping-randomization argument: the receiver
/// builds its Algorithm-1 line set (same index bits, distinct tags)
/// and tries the init+decode eviction; under a keyed mapping the
/// lines scatter and `line 0` (mapped wherever) stops being evicted.
pub fn index_randomization_defeats_eviction(trials: usize, seed: u64) -> IndexRandomizationResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    let geom = CacheGeometry::l1d_paper();
    let mut collisions = 0usize;
    let mut evictions = 0usize;
    let mut baseline_evictions = 0usize;

    for t in 0..trials {
        let key = rng.gen::<u64>();
        // Receiver's 9 lines: same index bits (set 0), tags 0..9.
        let lines: Vec<PhysAddr> = (0..9u64)
            .map(|i| PhysAddr::new(i * geom.set_stride()))
            .collect();

        // Where do they actually land under the keyed mapping?
        let sets: Vec<usize> = lines.iter().map(|&pa| keyed_set(geom, pa, key)).collect();
        let line0_set = sets[0];
        let same = sets.iter().filter(|&&s| s == line0_set).count();
        if same == sets.len() {
            collisions += 1;
        }

        // Emulate the keyed cache with a full-size cache accessed at
        // remapped addresses (same tags, permuted sets).
        let remap = |pa: PhysAddr| {
            PhysAddr::new(geom.line_addr(geom.tag(pa.raw()), keyed_set(geom, pa, key)))
        };
        let mut keyed = Cache::new(geom, PolicyKind::TreePlru, seed ^ t as u64);
        let mut baseline = Cache::new(geom, PolicyKind::TreePlru, seed ^ t as u64);
        for &pa in &lines {
            keyed.access(remap(pa));
            baseline.access(pa);
        }
        if !keyed.probe(remap(lines[0])) {
            evictions += 1;
        }
        if !baseline.probe(lines[0]) {
            baseline_evictions += 1;
        }
    }
    IndexRandomizationResult {
        collision_rate: collisions as f64 / trials as f64,
        eviction_rate: evictions as f64 / trials as f64,
        baseline_eviction_rate: baseline_evictions as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_fill_does_not_stop_the_hit_channel() {
        let leak = random_fill_leak(2_000, 1);
        assert!(
            leak.hit_channel_flip_rate > 0.2,
            "the paper's §IX-B claim: LRU updates on hits survive random fill, got {:.3}",
            leak.hit_channel_flip_rate
        );
    }

    #[test]
    fn random_fill_does_stop_the_contention_channel() {
        let leak = random_fill_leak(2_000, 1);
        assert!(
            leak.miss_channel_fill_rate < 0.05,
            "a missed line must almost never be installed, got {:.3}",
            leak.miss_channel_fill_rate
        );
    }

    #[test]
    fn keyed_mapping_scatters_same_index_lines() {
        let r = index_randomization_defeats_eviction(500, 2);
        assert!(
            r.collision_rate < 0.01,
            "9 same-index lines must virtually never share a keyed set, got {:.3}",
            r.collision_rate
        );
    }

    #[test]
    fn keyed_mapping_kills_the_eviction_step() {
        let r = index_randomization_defeats_eviction(500, 3);
        assert!(
            r.baseline_eviction_rate > 0.8,
            "baseline Alg.1 eviction must mostly work, got {:.3}",
            r.baseline_eviction_rate
        );
        assert!(
            r.eviction_rate < 0.1,
            "keyed mapping must break the eviction, got {:.3}",
            r.eviction_rate
        );
    }

    #[test]
    fn experiments_are_deterministic() {
        assert_eq!(random_fill_leak(300, 7), random_fill_leak(300, 7));
        assert_eq!(
            index_randomization_defeats_eviction(300, 7),
            index_randomization_defeats_eviction(300, 7)
        );
    }
}
