//! Partitioning defenses (§IX-B): way-partitioning alone is not
//! enough — the replacement state must be partitioned too (DAWG).
//!
//! Most secure-cache proposals partition the *lines* between domains
//! but leave one Tree-PLRU per set. The tree's upper bits are shared
//! state: the attacker's accesses to its own ways flip the root-path
//! bits and steer which of the victim's ways gets evicted next —
//! observable exactly like the ordinary LRU channel. DAWG gives each
//! domain its own tree half, removing the shared bits.

use cache_sim::replacement::{Domain, PartitionedTreePlru, SetReplacement, TreePlru, WayMask};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of one partitioning experiment: how often the receiver's
/// next victim (within its own ways) differs depending on a single
/// sender access to the sender's own ways.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionLeak {
    /// Fraction of trials where the sender's access changed the
    /// receiver's victim choice (0 = no channel).
    pub victim_flip_rate: f64,
    /// Trials run.
    pub trials: usize,
}

/// Measures the channel through a *way-partitioned* cache set that
/// still shares one Tree-PLRU (the vulnerable design): the receiver
/// owns the even ways, the sender the odd ways (way partitions in
/// real proposals follow allocation needs, not tree topology), and
/// victims are mask-restricted — but `on_access` updates the shared
/// tree, so the sender's accesses steer the receiver's victims.
///
/// (A partition that happens to align with a whole subtree hides the
/// shared root bit from masked victim walks — aligning partitions to
/// subtrees *and* splitting the state is precisely what DAWG does.)
pub fn shared_plru_leak(trials: usize, seed: u64) -> PartitionLeak {
    let mut rng = SmallRng::seed_from_u64(seed);
    let receiver_ways = WayMask::single(0).with(2).with(4).with(6);
    let sender_ways = [1usize, 3, 5, 7];
    let mut flips = 0usize;
    for _ in 0..trials {
        let mut tree = TreePlru::new(8);
        // Random prior history across all ways.
        for _ in 0..rng.gen_range(4..24) {
            let w = rng.gen_range(0..8);
            tree.touch(w);
        }
        let mut with_sender = tree.clone();
        // Receiver touches its ways in order (its init phase).
        for w in [0usize, 2, 4, 6] {
            tree.touch(w);
            with_sender.touch(w);
        }
        // Sender (its own way) touches once in one world only.
        with_sender.touch(sender_ways[rng.gen_range(0..4usize)]);
        let v_quiet = tree.victim_among(receiver_ways, Domain::PRIMARY);
        let v_noisy = with_sender.victim_among(receiver_ways, Domain::PRIMARY);
        if v_quiet != v_noisy {
            flips += 1;
        }
    }
    PartitionLeak {
        victim_flip_rate: flips as f64 / trials as f64,
        trials,
    }
}

/// The same experiment against DAWG-style partitioned state: the
/// sender's accesses touch only its own half-tree, so the receiver's
/// victim can never depend on them.
pub fn dawg_partitioned_leak(trials: usize, seed: u64) -> PartitionLeak {
    let mut rng = SmallRng::seed_from_u64(seed);
    let all = WayMask::all(8);
    let mut flips = 0usize;
    for _ in 0..trials {
        let mut state = PartitionedTreePlru::new(8);
        for _ in 0..rng.gen_range(4..24) {
            let w = rng.gen_range(0..8);
            let domain = if w < 4 {
                Domain::PRIMARY
            } else {
                Domain::SECONDARY
            };
            state.on_access(w, domain);
        }
        let mut with_sender = state.clone();
        for w in 0..4 {
            state.on_access(w, Domain::PRIMARY);
            with_sender.on_access(w, Domain::PRIMARY);
        }
        with_sender.on_access(rng.gen_range(4..8), Domain::SECONDARY);
        let v_quiet = state.victim_among(all, Domain::PRIMARY);
        let v_noisy = with_sender.victim_among(all, Domain::PRIMARY);
        if v_quiet != v_noisy {
            flips += 1;
        }
    }
    PartitionLeak {
        victim_flip_rate: flips as f64 / trials as f64,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_tree_leaks_through_way_partitioning() {
        let leak = shared_plru_leak(2_000, 1);
        assert!(
            leak.victim_flip_rate > 0.2,
            "way-partitioned shared-PLRU must leak, got {:.3}",
            leak.victim_flip_rate
        );
    }

    #[test]
    fn dawg_partitioned_state_does_not_leak() {
        let leak = dawg_partitioned_leak(2_000, 1);
        assert_eq!(
            leak.victim_flip_rate, 0.0,
            "DAWG-partitioned state must never flip the victim"
        );
    }

    #[test]
    fn experiments_are_deterministic() {
        assert_eq!(shared_plru_leak(500, 9), shared_plru_leak(500, 9));
        assert_eq!(dawg_partitioned_leak(500, 9), dawg_partitioned_leak(500, 9));
    }
}
