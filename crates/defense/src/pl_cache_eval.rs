//! Fig. 11: the PL-cache case study.
//!
//! The sender locks its `line N`, then signals with Algorithm 2.
//! In the original PL cache a locked-line *hit* still updates the
//! Tree-PLRU bits, so the receiver's timed `line 0` access follows
//! the sender's bit (Fig. 11 top); in the fixed design the state is
//! frozen for locked lines and the two bit values become
//! indistinguishable (Fig. 11 bottom).

use cache_sim::addr::PhysAddr;
use cache_sim::geometry::CacheGeometry;
use cache_sim::plcache::{PlCache, PlDesign, PlRequest};
use cache_sim::replacement::PolicyKind;

/// One receiver observation in the PL-cache experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlTracePoint {
    /// The bit the sender encoded this iteration.
    pub bit: bool,
    /// Whether the receiver's timed `line 0` access hit.
    pub hit: bool,
    /// The latency the receiver observes (L1-hit or L1-miss cycles).
    pub latency: u32,
}

/// Result of a PL-cache Algorithm-2 run.
#[derive(Debug, Clone)]
pub struct PlRun {
    /// Which design was simulated.
    pub design: PlDesign,
    /// Per-iteration observations.
    pub trace: Vec<PlTracePoint>,
}

impl PlRun {
    /// P(hit | bit = 1) − P(hit | bit = 0): zero means the receiver
    /// learns nothing; the original design shows a large gap.
    pub fn distinguishability(&self) -> f64 {
        let frac = |bit: bool| {
            let of_bit: Vec<_> = self.trace.iter().filter(|p| p.bit == bit).collect();
            if of_bit.is_empty() {
                return 0.0;
            }
            of_bit.iter().filter(|p| p.hit).count() as f64 / of_bit.len() as f64
        };
        (frac(true) - frac(false)).abs()
    }
}

/// Runs Algorithm 2 against a PL cache (the GEM5 experiment of
/// Fig. 11): the sender's `line N` is locked up front; each
/// iteration the receiver sweeps its lines `0..N-1` and then times
/// `line 0`, while on `1` bits the sender's hit on the locked line
/// lands at a random position inside the receiver's sweep
/// (hyper-threaded interleaving, as in the paper's channel runs).
///
/// In the original design that locked-line hit rotates the shared
/// Tree-PLRU and redirects the sweep's replacement onto `line 0`
/// about a quarter of the time; in the fixed design the locked
/// line's hits are invisible and the receiver *always* observes a
/// hit — the paper's exact wording for Fig. 11 (bottom).
///
/// Latencies use the paper's GEM5 configuration (L1 hit 4 cycles,
/// L1 miss → L2 hit 8 cycles).
pub fn pl_cache_alg2_trace(design: PlDesign, bits: &[bool], d: usize, seed: u64) -> PlRun {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let geom = CacheGeometry::l1d_paper();
    let mut cache = PlCache::new(geom, PolicyKind::TreePlru, design, seed);
    let line = |i: u64| PhysAddr::new(i * geom.set_stride());
    let ways = geom.ways() as u64;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x91_u64 ^ 0xf16);

    // The sender locks line N (its own line) once, up front.
    cache.request(line(ways), PlRequest::Lock);
    let _ = d; // `d` splits init/decode; the sweep below covers both
               // phases, with the sender interleaved anywhere in it.

    let mut trace = Vec::with_capacity(bits.len());
    for &bit in bits {
        // Receiver pass: lines 0..N-1 in order; the sender's encode
        // loop (locked-line hits) interleaves at random slots — a
        // hyper-threaded sender touches its line many times per
        // receiver iteration.
        for i in 0..ways {
            if bit && rng.gen_bool(0.5) {
                cache.request(line(ways), PlRequest::Access);
            }
            cache.request(line(i), PlRequest::Access);
        }
        // Timed access of line 0.
        let hit = cache.probe(line(0));
        cache.request(line(0), PlRequest::Access);
        trace.push(PlTracePoint {
            bit,
            hit,
            latency: if hit { 4 } else { 8 },
        });
    }
    PlRun { design, trace }
}

/// The paired Fig. 11 experiment: alternating bits on both designs.
pub fn fig11(iterations: usize, d: usize, seed: u64) -> (PlRun, PlRun) {
    let bits: Vec<bool> = (0..iterations).map(|i| i % 2 == 1).collect();
    (
        pl_cache_alg2_trace(PlDesign::Original, &bits, d, seed),
        pl_cache_alg2_trace(PlDesign::Fixed, &bits, d, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_pl_cache_leaks() {
        let (original, _) = fig11(200, 1, 1);
        assert!(
            original.distinguishability() > 0.3,
            "original PL cache must leak, got {:.3}",
            original.distinguishability()
        );
    }

    #[test]
    fn fixed_pl_cache_does_not_leak() {
        let (_, fixed) = fig11(200, 1, 1);
        assert!(
            fixed.distinguishability() < 0.02,
            "fixed PL cache must not leak, got {:.3}",
            fixed.distinguishability()
        );
    }

    #[test]
    fn fixed_trace_is_bit_independent() {
        // Stronger than distinguishability: the full hit sequence is
        // identical whatever the sender sends.
        let ones = pl_cache_alg2_trace(PlDesign::Fixed, &[true; 50], 4, 2);
        let zeros = pl_cache_alg2_trace(PlDesign::Fixed, &[false; 50], 4, 2);
        let h1: Vec<bool> = ones.trace.iter().map(|p| p.hit).collect();
        let h0: Vec<bool> = zeros.trace.iter().map(|p| p.hit).collect();
        assert_eq!(h1, h0);
    }

    #[test]
    fn locked_line_survives_throughout() {
        let geom = CacheGeometry::l1d_paper();
        let run = pl_cache_alg2_trace(PlDesign::Original, &[true; 20], 4, 3);
        assert_eq!(run.trace.len(), 20);
        // Re-run manually to check the lock held (the trace itself
        // proves nothing about line N).
        let mut cache = PlCache::new(geom, PolicyKind::TreePlru, PlDesign::Original, 3);
        cache.request(PhysAddr::new(8 * geom.set_stride()), PlRequest::Lock);
        for i in 0..100u64 {
            cache.request(
                PhysAddr::new((i % 8) * geom.set_stride()),
                PlRequest::Access,
            );
        }
        assert!(cache.is_locked(PhysAddr::new(8 * geom.set_stride())));
    }

    #[test]
    fn distinguishability_of_constant_trace_is_zero() {
        let run = PlRun {
            design: PlDesign::Fixed,
            trace: vec![
                PlTracePoint {
                    bit: true,
                    hit: true,
                    latency: 4,
                },
                PlTracePoint {
                    bit: false,
                    hit: true,
                    latency: 4,
                },
            ],
        };
        assert_eq!(run.distinguishability(), 0.0);
    }
}
