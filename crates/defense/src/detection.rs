//! Detection by hardware performance counters (§VII, §X).
//!
//! CloudRadar-style detectors watch for the miss signature of cache
//! attacks — "the root cause of the existing cache side channel is
//! cache misses". The LRU channel's sender encodes with cache *hits*,
//! so a miss-based detector either misses it or cannot separate it
//! from benign co-scheduling.

use attacks::miss_rates::{sender_miss_rates, MissRateRow, SenderScenario};
use lru_channel::params::Platform;

/// A miss-rate-threshold detector over the sender's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissRateDetector {
    /// Flag if the L2 miss rate exceeds this.
    pub l2_threshold: f64,
    /// Flag if the LLC miss rate exceeds this.
    pub llc_threshold: f64,
    /// Minimum beyond-L1 traffic before the detector trusts the
    /// rates (tiny denominators are noise).
    pub min_l2_accesses: u64,
}

impl Default for MissRateDetector {
    fn default() -> Self {
        // Tuned to catch Flush+Reload(mem) comfortably.
        Self {
            l2_threshold: 0.4,
            llc_threshold: 0.4,
            min_l2_accesses: 20,
        }
    }
}

/// One detector verdict.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Scenario label.
    pub label: &'static str,
    /// Whether the detector flags the sender as an attacker.
    pub flagged: bool,
    /// The row the verdict was computed from.
    pub row: MissRateRow,
}

impl MissRateDetector {
    /// Applies the detector to a sender's counters.
    pub fn judge(&self, row: MissRateRow) -> Verdict {
        let enough_traffic = row.counters.l2_accesses >= self.min_l2_accesses;
        let flagged = enough_traffic
            && (row.rates.l2 > self.l2_threshold || row.rates.llc > self.llc_threshold);
        Verdict {
            label: row.label,
            flagged,
            row,
        }
    }
}

/// Runs the §VII detection study: every Table VI sender scenario
/// through the detector.
pub fn detection_study(platform: Platform, bits: usize, seed: u64) -> Vec<Verdict> {
    let detector = MissRateDetector::default();
    SenderScenario::ALL
        .iter()
        .map(|&s| detector.judge(sender_miss_rates(platform, s, bits, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_flags_flush_reload_mem() {
        let detector = MissRateDetector::default();
        let row = sender_miss_rates(Platform::e5_2690(), SenderScenario::FlushReloadMem, 300, 1);
        assert!(
            detector.judge(row).flagged,
            "F+R(mem)'s memory hammering must be visible"
        );
    }

    #[test]
    fn detector_does_not_flag_lru_sender() {
        let detector = MissRateDetector::default();
        for scenario in [SenderScenario::LruAlg1, SenderScenario::LruAlg2] {
            let row = sender_miss_rates(Platform::e5_2690(), scenario, 300, 2);
            assert!(
                !detector.judge(row).flagged,
                "{scenario:?}: the hit-based LRU sender must evade the detector"
            );
        }
    }

    #[test]
    fn benign_cosched_is_not_flagged_either() {
        // If the detector were tightened until it caught the LRU
        // sender, it would flag benign co-runners too — the paper's
        // indistinguishability argument. Here: at default settings
        // both stay unflagged.
        let detector = MissRateDetector::default();
        let row = sender_miss_rates(Platform::e5_2690(), SenderScenario::SenderAndGcc, 300, 3);
        assert!(!detector.judge(row).flagged);
    }

    #[test]
    fn study_covers_all_scenarios() {
        let verdicts = detection_study(Platform::e5_2690(), 60, 4);
        assert_eq!(verdicts.len(), 6);
    }
}
