//! Fig. 9: the performance price of replacing Tree-PLRU with FIFO or
//! Random in the L1D.

use cache_sim::profiles::MicroArch;
use cache_sim::replacement::PolicyKind;
use workloads::cpi::{measure_benchmark, BenchmarkResult};
use workloads::spec_like::{Benchmark, SUITE};

/// One benchmark's Fig. 9 data: results for Tree-PLRU, FIFO and
/// Random, plus the normalizations the figure plots.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Per-policy results, in [`PolicyKind::FIG9`] order
    /// (Tree-PLRU, FIFO, Random).
    pub results: [BenchmarkResult; 3],
}

impl Fig9Row {
    /// L1D miss rate of each policy divided by Tree-PLRU's (the top
    /// panel of Fig. 9).
    pub fn normalized_miss_rates(&self) -> [f64; 3] {
        let base = self.results[0].l1d_miss_rate.max(1e-9);
        [
            1.0,
            self.results[1].l1d_miss_rate / base,
            self.results[2].l1d_miss_rate / base,
        ]
    }

    /// CPI of each policy divided by Tree-PLRU's (the bottom panel).
    pub fn normalized_cpi(&self) -> [f64; 3] {
        let base = self.results[0].cpi.max(1e-9);
        [1.0, self.results[1].cpi / base, self.results[2].cpi / base]
    }
}

/// Runs the Fig. 9 study: the whole suite on the paper's GEM5
/// configuration under all three policies.
pub fn fig9(accesses_per_benchmark: u64, seed: u64) -> Vec<Fig9Row> {
    let arch = MicroArch::gem5_fig9();
    SUITE
        .iter()
        .map(|&b| fig9_row(b, &arch, accesses_per_benchmark, seed))
        .collect()
}

/// One benchmark of the Fig. 9 study.
pub fn fig9_row(bench: Benchmark, arch: &MicroArch, accesses: u64, seed: u64) -> Fig9Row {
    let results =
        PolicyKind::FIG9.map(|policy| measure_benchmark(bench, arch, policy, accesses, seed));
    Fig9Row {
        name: bench.name,
        results,
    }
}

/// Geometric-mean normalized CPI across rows per policy — the
/// summary number behind the paper's "<2%" claim.
pub fn geomean_normalized_cpi(rows: &[Fig9Row]) -> [f64; 3] {
    let mut acc = [0.0f64; 3];
    for row in rows {
        let n = row.normalized_cpi();
        for k in 0..3 {
            acc[k] += n[k].max(1e-12).ln();
        }
    }
    acc.map(|a| (a / rows.len().max(1) as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 15_000;

    #[test]
    fn cpi_cost_of_defense_policies_is_small() {
        // The Fig. 9 bottom-panel claim: overall CPI change < 2%
        // (we allow 4% for the shorter synthetic runs).
        let rows: Vec<Fig9Row> = ["bzip2", "gcc", "hmmer", "libquantum", "namd"]
            .iter()
            .map(|n| {
                fig9_row(
                    Benchmark::by_name(n).unwrap(),
                    &MicroArch::gem5_fig9(),
                    N,
                    3,
                )
            })
            .collect();
        let geo = geomean_normalized_cpi(&rows);
        assert!((geo[0] - 1.0).abs() < 1e-9);
        for (k, label) in [(1, "FIFO"), (2, "Random")] {
            assert!(
                (geo[k] - 1.0).abs() < 0.04,
                "{label} geomean CPI delta too large: {:.4}",
                geo[k]
            );
        }
    }

    #[test]
    fn miss_rate_deltas_are_modest() {
        // Fig. 9 top panel: FIFO/Random miss-rate changes are small
        // overall (some benchmarks better, some worse).
        let row = fig9_row(
            Benchmark::by_name("gcc").unwrap(),
            &MicroArch::gem5_fig9(),
            N,
            4,
        );
        let n = row.normalized_miss_rates();
        for k in [1, 2] {
            assert!(
                (0.5..2.0).contains(&n[k]),
                "policy {k} miss-rate ratio out of band: {:.3}",
                n[k]
            );
        }
    }

    #[test]
    fn rows_carry_all_three_policies() {
        let row = fig9_row(
            Benchmark::by_name("hmmer").unwrap(),
            &MicroArch::gem5_fig9(),
            4_000,
            5,
        );
        assert_eq!(row.results[0].policy, PolicyKind::TreePlru);
        assert_eq!(row.results[1].policy, PolicyKind::Fifo);
        assert_eq!(row.results[2].policy, PolicyKind::Random);
    }
}
