//! Parallel multi-set exfiltration (§IV: "several sets can be used
//! in parallel to increase the transmission rate"): ship a whole
//! string through 8 cache sets at once, as one multi-set scenario.
//!
//! Run with `cargo run --release --example parallel_exfil`.

use lru_leak::lru_channel::params::ChannelParams;
use lru_leak::scenario::spec::{ExperimentKind, MessageSource, Scenario};

const PAYLOAD: &str = "LRU metadata is a bus.";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One byte per frame: bit i of each byte rides set i. The text
    // message source is all the experiment needs — frame splitting
    // and decoding live behind the scenario surface.
    let (ts, tr) = (20_000, 2_400);
    let scenario = Scenario::builder()
        .params(ChannelParams {
            d: 8,
            target_set: 0,
            ts,
            tr,
        })
        .message(MessageSource::Text(PAYLOAD.into()))
        .kind(ExperimentKind::MultiSet {
            sets: 8,
            frames: PAYLOAD.len(),
        })
        .seed(0xf00d)
        .build()?;

    let outcome = scenario.run();
    println!(
        "aggregate nominal rate: {:.2} Mbps over 8 sets ({} samples)",
        outcome.get("rate_bps").unwrap().as_f64().unwrap() / 1e6,
        outcome.get("samples").unwrap().as_u64().unwrap()
    );

    let text = outcome.get("decoded_text").unwrap().as_str().unwrap();
    println!("sent:      {PAYLOAD:?}");
    println!("recovered: {text:?}");
    assert_eq!(text, PAYLOAD);
    println!("one byte per frame, one frame per {ts} cycles — a whole covert bus ✔");
    Ok(())
}
