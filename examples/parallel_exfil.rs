//! Parallel multi-set exfiltration (§IV: "several sets can be used
//! in parallel to increase the transmission rate"): ship a whole
//! string through 8 cache sets at once.
//!
//! Run with `cargo run --release --example parallel_exfil`.

use lru_leak::lru_channel::multiset::run_parallel_alg1;
use lru_leak::lru_channel::params::Platform;

const PAYLOAD: &str = "LRU metadata is a bus.";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::e5_2690();
    let sets: Vec<usize> = (0..8).collect();

    // One byte per frame: bit i of the byte rides set i.
    let frames: Vec<Vec<bool>> = PAYLOAD
        .bytes()
        .map(|b| (0..8).map(|i| (b >> (7 - i)) & 1 == 1).collect())
        .collect();

    let (ts, tr) = (20_000, 2_400);
    let run = run_parallel_alg1(platform, &sets, 8, ts, tr, frames.clone(), 0xf00d)?;
    println!(
        "aggregate nominal rate: {:.2} Mbps over {} sets ({} samples)",
        run.rate_bps / 1e6,
        sets.len(),
        run.samples.len()
    );

    let decoded = run.decode_frames(sets.len(), ts, frames.len());
    let bytes: Vec<u8> = decoded
        .iter()
        .map(|f| f.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b)))
        .collect();
    let text = String::from_utf8_lossy(&bytes);
    println!("sent:      {PAYLOAD:?}");
    println!("recovered: {text:?}");
    assert_eq!(text, PAYLOAD);
    println!("one byte per frame, one frame per {ts} cycles — a whole covert bus ✔");
    Ok(())
}
