//! Break and fix the Partition-Locked (PL) cache (paper §IX-B,
//! Figs. 10/11), then tour the other defenses.
//!
//! Run with `cargo run --release --example secure_cache`.

use lru_leak::cache_sim::plcache::PlDesign;
use lru_leak::cache_sim::profiles::MicroArch;
use lru_leak::cache_sim::replacement::PolicyKind;
use lru_leak::defense::partition_eval::{dawg_partitioned_leak, shared_plru_leak};
use lru_leak::defense::pl_cache_eval::fig11;
use lru_leak::defense::policy_eval::{fig9_row, geomean_normalized_cpi};
use lru_leak::workloads::spec_like::Benchmark;

fn main() {
    println!("== PL cache (locked lines are never evicted) ==\n");
    let (original, fixed) = fig11(300, 1, 77);
    for run in [&original, &fixed] {
        println!(
            "{:?} design: receiver distinguishability = {:.1}%  {}",
            run.design,
            run.distinguishability() * 100.0,
            match run.design {
                PlDesign::Original =>
                    "→ the sender's hits on its LOCKED line still steer the Tree-PLRU: leak",
                PlDesign::Fixed =>
                    "→ locked lines frozen out of the LRU state: receiver always hits",
            }
        );
    }

    println!("\n== Partitioning the replacement state (DAWG) ==\n");
    let shared = shared_plru_leak(5_000, 1);
    let dawg = dawg_partitioned_leak(5_000, 1);
    println!(
        "way-partitioned set, shared Tree-PLRU: sender flips the victim {:.1}% of the time",
        shared.victim_flip_rate * 100.0
    );
    println!(
        "DAWG-partitioned Tree-PLRU state:      sender flips the victim {:.1}% of the time",
        dawg.victim_flip_rate * 100.0
    );

    println!("\n== Removing the state: FIFO / Random in the L1D (Fig. 9) ==\n");
    let arch = MicroArch::gem5_fig9();
    let rows: Vec<_> = ["gcc", "mcf", "hmmer", "libquantum"]
        .iter()
        .map(|n| fig9_row(Benchmark::by_name(n).unwrap(), &arch, 60_000, 5))
        .collect();
    for r in &rows {
        let n = r.normalized_cpi();
        println!(
            "{:<12} normalized CPI — Tree-PLRU 1.000, FIFO {:.3}, Random {:.3}",
            r.name, n[1], n[2]
        );
    }
    let geo = geomean_normalized_cpi(&rows);
    println!(
        "\ngeomean CPI cost of the defense: FIFO {:+.2}%, Random {:+.2}%  (paper: < 2%)",
        (geo[1] - 1.0) * 100.0,
        (geo[2] - 1.0) * 100.0
    );
    let _ = PolicyKind::Fifo; // (the policies under test)
}
