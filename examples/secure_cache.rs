//! Break and fix the Partition-Locked (PL) cache (paper §IX-B,
//! Figs. 10/11), then tour the other defenses — each one a
//! defense-eval scenario on the same declarative surface.
//!
//! Run with `cargo run --release --example secure_cache`.

use lru_leak::scenario::spec::{DefenseId, ExperimentKind, Scenario, WorkloadId};
use lru_leak::scenario::Value;

fn eval(defense: DefenseId, trials: usize, seed: u64) -> Result<Value, Box<dyn std::error::Error>> {
    let mut b = Scenario::builder()
        .defense(defense)
        .kind(ExperimentKind::DefenseEval { trials })
        .seed(seed);
    if defense == DefenseId::PlCacheOriginal || defense == DefenseId::PlCacheFixed {
        b = b.d(1); // the Fig. 11 configuration
    }
    Ok(b.build()?.run())
}

fn num(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or_default()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== PL cache (locked lines are never evicted) ==\n");
    for (defense, verdict) in [
        (
            DefenseId::PlCacheOriginal,
            "→ the sender's hits on its LOCKED line still steer the Tree-PLRU: leak",
        ),
        (
            DefenseId::PlCacheFixed,
            "→ locked lines frozen out of the LRU state: receiver always hits",
        ),
    ] {
        let out = eval(defense, 300, 77)?;
        println!(
            "{:?} design: receiver distinguishability = {:.1}%  {}",
            defense,
            num(&out, "distinguishability") * 100.0,
            verdict
        );
    }

    println!("\n== Partitioning the replacement state (DAWG) ==\n");
    let shared = eval(DefenseId::SharedPartition, 5_000, 1)?;
    let dawg = eval(DefenseId::DawgPartition, 5_000, 1)?;
    println!(
        "way-partitioned set, shared Tree-PLRU: sender flips the victim {:.1}% of the time",
        num(&shared, "victim_flip_rate") * 100.0
    );
    println!(
        "DAWG-partitioned Tree-PLRU state:      sender flips the victim {:.1}% of the time",
        num(&dawg, "victim_flip_rate") * 100.0
    );

    println!("\n== Removing the state: FIFO / Random in the L1D (Fig. 9) ==\n");
    let mut norms = Vec::new();
    for name in ["gcc", "mcf", "hmmer", "libquantum"] {
        let out = Scenario::builder()
            .workload(WorkloadId::Benchmark(name.into()))
            .kind(ExperimentKind::PolicyPerf { accesses: 60_000 })
            .seed(5)
            .build()?
            .run();
        let n: Vec<f64> = out
            .get("normalized_cpi")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .filter_map(Value::as_f64)
            .collect();
        println!(
            "{name:<12} normalized CPI — Tree-PLRU 1.000, FIFO {:.3}, Random {:.3}",
            n[1], n[2]
        );
        norms.push(n);
    }
    let geo = |idx: usize| {
        lru_leak::scenario::fmt::geomean(&norms.iter().map(|n| n[idx]).collect::<Vec<_>>())
    };
    println!(
        "\ngeomean CPI cost of the defense: FIFO {:+.2}%, Random {:+.2}%  (paper: < 2%)",
        (geo(1) - 1.0) * 100.0,
        (geo(2) - 1.0) * 100.0
    );
    Ok(())
}
