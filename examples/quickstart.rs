//! Quickstart: send one byte through the LRU state of a single cache
//! set, exactly as in §IV-A of the paper.
//!
//! Run with `cargo run --release --example quickstart`.

use lru_leak::lru_channel::covert::{CovertConfig, Sharing, Variant};
use lru_leak::lru_channel::decode::{self, BitConvention};
use lru_leak::lru_channel::params::{ChannelParams, Platform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The byte to exfiltrate.
    let secret: u8 = 0b1011_0010;
    let message: Vec<bool> = (0..8).rev().map(|i| (secret >> i) & 1 == 1).collect();

    // Paper Fig. 5 (top) configuration: shared-memory Algorithm 1 on
    // a simulated Xeon E5-2690, both parties hyper-threaded on one
    // core, d = 8, Ts = 6000 cycles per bit, receiver samples every
    // Tr = 600 cycles.
    let platform = Platform::e5_2690();
    let params = ChannelParams::paper_alg1_default();
    let run = CovertConfig {
        platform,
        params,
        variant: Variant::SharedMemory,
        sharing: Sharing::HyperThreaded,
        message: message.clone(),
        seed: 42,
    }
    .run()?;

    println!(
        "receiver took {} timed observations (threshold: {} cycles, rate ≈ {:.0} Kbit/s)",
        run.samples.len(),
        run.hit_threshold,
        run.rate_bps / 1e3
    );

    // Decode: a fast (L1-hit) observation means the sender touched
    // line 0 during that bit period ⇒ bit 1.
    let bits = decode::bits_by_window(
        &run.samples,
        params.ts,
        run.hit_threshold,
        BitConvention::HitIsOne,
    );
    let mut recovered: u8 = 0;
    for &b in bits.iter().take(8) {
        recovered = (recovered << 1) | u8::from(b);
    }
    println!("sent      {secret:#010b}");
    println!("recovered {recovered:#010b}");
    assert_eq!(
        secret, recovered,
        "the channel should be error-free at this rate"
    );
    println!("byte transferred through nothing but Tree-PLRU metadata ✔");
    Ok(())
}
