//! Quickstart: send one byte through the LRU state of a single cache
//! set, exactly as in §IV-A of the paper — described as a
//! [`Scenario`], the workspace's one experiment surface.
//!
//! Run with `cargo run --release --example quickstart`.

use lru_leak::scenario::spec::{MessageSource, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The byte to exfiltrate.
    let secret: u8 = 0b1011_0010;
    let message: Vec<bool> = (0..8).rev().map(|i| (secret >> i) & 1 == 1).collect();

    // Paper Fig. 5 (top) configuration — the builder's defaults:
    // shared-memory Algorithm 1 on a simulated Xeon E5-2690, both
    // parties hyper-threaded on one core, d = 8, Ts = 6000 cycles
    // per bit, receiver samples every Tr = 600 cycles.
    let scenario = Scenario::builder()
        .message(MessageSource::Bits(message))
        .seed(42)
        .build()?;

    // The scenario serializes losslessly — this exact experiment can
    // be replayed with `lru-leak adhoc '<json>'`.
    println!("scenario: {}", scenario.to_json());

    let outcome = scenario.run();
    println!(
        "\nreceiver took {} timed observations (threshold: {} cycles, rate ≈ {:.0} Kbit/s)",
        outcome.get("samples").unwrap().as_u64().unwrap(),
        outcome.get("hit_threshold").unwrap().as_u64().unwrap(),
        outcome.get("rate_bps").unwrap().as_f64().unwrap() / 1e3
    );

    // Decode: a fast (L1-hit) observation means the sender touched
    // line 0 during that bit period ⇒ bit 1. The experiment already
    // ran the decoder; read the bits back.
    let decoded = outcome.get("decoded").unwrap().as_str().unwrap();
    let mut recovered: u8 = 0;
    for b in decoded.chars().take(8) {
        recovered = (recovered << 1) | u8::from(b == '1');
    }
    println!("sent      {secret:#010b}");
    println!("recovered {recovered:#010b}");
    assert_eq!(
        secret, recovered,
        "the channel should be error-free at this rate"
    );
    println!("byte transferred through nothing but Tree-PLRU metadata ✔");
    Ok(())
}
