//! Cross-platform covert-channel tour: both algorithms on all three
//! simulated CPUs, with the error metric of the paper (§V, §VI) —
//! one scenario per configuration, no hand-wired setup.
//!
//! Run with `cargo run --release --example covert_channel`.

use lru_leak::lru_channel::covert::Variant;
use lru_leak::lru_channel::params::ChannelParams;
use lru_leak::scenario::spec::{MessageSource, PlatformId, Scenario};

fn run(
    name: &str,
    platform: PlatformId,
    variant: Variant,
    params: ChannelParams,
) -> Result<(), Box<dyn std::error::Error>> {
    // 128 seed-derived random bits; the experiment decodes with the
    // platform's convention (per-window threshold on Intel, moving
    // average over the coarse AMD counter — §VI-A / Fig. 7).
    let scenario = Scenario::builder()
        .platform(platform)
        .variant(variant)
        .params(params)
        .message(MessageSource::Random {
            bits: 128,
            repeats: 1,
        })
        .seed(9)
        .build()?;
    let outcome = scenario.run();
    println!(
        "{name:<46} rate ≈ {:>7.1} Kbps   error {:>5.1}%",
        outcome.get("rate_bps").unwrap().as_f64().unwrap() / 1e3,
        outcome.get("error_rate").unwrap().as_f64().unwrap() * 100.0
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("128 random bits over one L1 set, hyper-threaded sharing:\n");
    let fast1 = ChannelParams::paper_alg1_default();
    let fast2 = ChannelParams::paper_alg2_default();
    // The AMD timer is coarse: the channel needs a slower bit period
    // (paper Fig. 7 uses Ts = 1e5).
    let amd1 = ChannelParams {
        ts: 100_000,
        tr: 1_000,
        ..fast1
    };
    let amd2 = ChannelParams {
        ts: 100_000,
        tr: 1_000,
        ..fast2
    };

    run(
        "E5-2690  / Alg.1 (shared memory)",
        PlatformId::E5_2690,
        Variant::SharedMemory,
        fast1,
    )?;
    run(
        "E5-2690  / Alg.2 (no shared memory)",
        PlatformId::E5_2690,
        Variant::NoSharedMemory,
        fast2,
    )?;
    run(
        "E3-1245v5/ Alg.1 (shared memory)",
        PlatformId::E3_1245V5,
        Variant::SharedMemory,
        fast1,
    )?;
    run(
        "E3-1245v5/ Alg.2 (no shared memory)",
        PlatformId::E3_1245V5,
        Variant::NoSharedMemory,
        fast2,
    )?;
    run(
        "EPYC 7571/ Alg.1 (threads, shared AS)",
        PlatformId::Epyc7571,
        Variant::SharedMemoryThreads,
        amd1,
    )?;
    run(
        "EPYC 7571/ Alg.2 (no shared memory)",
        PlatformId::Epyc7571,
        Variant::NoSharedMemory,
        amd2,
    )?;

    println!("\nAs in the paper: Intel runs at hundreds of Kbps; the AMD channel is an order");
    println!("of magnitude slower (coarse timestamp counter + lower clock), and cross-process");
    println!(
        "Alg.1 on AMD additionally fights the µtag way predictor (see example amd_way_predictor)."
    );
    Ok(())
}
