//! Cross-platform covert-channel tour: both algorithms on all three
//! simulated CPUs, with the error metric of the paper (§V, §VI).
//!
//! Run with `cargo run --release --example covert_channel`.

use lru_leak::lru_channel::covert::{CovertConfig, Sharing, Variant};
use lru_leak::lru_channel::decode::{self, BitConvention};
use lru_leak::lru_channel::edit_distance::error_rate;
use lru_leak::lru_channel::params::{ChannelParams, Platform};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn run(
    name: &str,
    platform: Platform,
    variant: Variant,
    params: ChannelParams,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(0xc0de);
    let message: Vec<bool> = (0..128).map(|_| rng.gen_bool(0.5)).collect();
    let run = CovertConfig {
        platform,
        params,
        variant,
        sharing: Sharing::HyperThreaded,
        message: message.clone(),
        seed: 9,
    }
    .run()?;
    let conv = match variant {
        Variant::NoSharedMemory => BitConvention::MissIsOne,
        _ => BitConvention::HitIsOne,
    };
    // The coarse AMD counter cannot be thresholded per sample; the
    // receiver averages (paper §VI-A / Fig. 7). Intel readouts can
    // be classified one by one.
    let bits = if platform.tsc.granularity > 1 {
        let period = (run.samples.len() / message.len()).max(1);
        let avg = decode::moving_average(&run.samples, period);
        decode::bits_from_moving_average(&avg, period, conv)
    } else {
        let ratio = if conv == BitConvention::MissIsOne {
            0.25
        } else {
            0.5
        };
        decode::bits_by_window_ratio(&run.samples, params.ts, run.hit_threshold, conv, ratio)
    };
    let err = error_rate(&message, &bits[..message.len().min(bits.len())]);
    println!(
        "{name:<46} rate ≈ {:>7.1} Kbps   error {:>5.1}%",
        run.rate_bps / 1e3,
        err * 100.0
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("128 random bits over one L1 set, hyper-threaded sharing:\n");
    let fast1 = ChannelParams::paper_alg1_default();
    let fast2 = ChannelParams::paper_alg2_default();
    // The AMD timer is coarse: the channel needs a slower bit period
    // (paper Fig. 7 uses Ts = 1e5).
    let amd1 = ChannelParams {
        ts: 100_000,
        tr: 1_000,
        ..fast1
    };
    let amd2 = ChannelParams {
        ts: 100_000,
        tr: 1_000,
        ..fast2
    };

    run(
        "E5-2690  / Alg.1 (shared memory)",
        Platform::e5_2690(),
        Variant::SharedMemory,
        fast1,
    )?;
    run(
        "E5-2690  / Alg.2 (no shared memory)",
        Platform::e5_2690(),
        Variant::NoSharedMemory,
        fast2,
    )?;
    run(
        "E3-1245v5/ Alg.1 (shared memory)",
        Platform::e3_1245v5(),
        Variant::SharedMemory,
        fast1,
    )?;
    run(
        "E3-1245v5/ Alg.2 (no shared memory)",
        Platform::e3_1245v5(),
        Variant::NoSharedMemory,
        fast2,
    )?;
    run(
        "EPYC 7571/ Alg.1 (threads, shared AS)",
        Platform::epyc_7571(),
        Variant::SharedMemoryThreads,
        amd1,
    )?;
    run(
        "EPYC 7571/ Alg.2 (no shared memory)",
        Platform::epyc_7571(),
        Variant::NoSharedMemory,
        amd2,
    )?;

    println!("\nAs in the paper: Intel runs at hundreds of Kbps; the AMD channel is an order");
    println!("of magnitude slower (coarse timestamp counter + lower clock), and cross-process");
    println!(
        "Alg.1 on AMD additionally fights the µtag way predictor (see example amd_way_predictor)."
    );
    Ok(())
}
