//! Spectre v1 with the LRU channel as the disclosure primitive
//! (paper §VIII): recover a secret string the victim never
//! architecturally reads out of bounds — one spectre scenario per
//! disclosure channel, plus the Table VII miss-rate footprints.
//!
//! Run with `cargo run --release --example spectre_attack`.

use lru_leak::scenario::spec::{ChannelId, ExperimentKind, MessageSource, Scenario};
use lru_leak::scenario::Value;

const SECRET: &str = "The Magic Words are Squeamish Ossifrage";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("victim secret: {SECRET:?}\n");

    for channel in [
        ChannelId::FlushReloadMem,
        ChannelId::LruAlg1,
        ChannelId::LruAlg2,
    ] {
        // Recovery through this channel…
        let recovery = Scenario::builder()
            .message(MessageSource::Text(SECRET.into()))
            .kind(ExperimentKind::Spectre {
                channel,
                rounds: 7,
                prefetcher: false,
            })
            .seed(0xfeed)
            .build()?
            .run();
        // …and the attack's performance-counter footprint over the
        // same secret (Table VII: what `perf` would see).
        let footprint = Scenario::builder()
            .message(MessageSource::Text(SECRET.into()))
            .kind(ExperimentKind::SpectreMissRates { channel })
            .seed(0xfeed)
            .build()?
            .run();

        let pct = |key: &str| footprint.get(key).and_then(Value::as_f64).unwrap() * 100.0;
        println!(
            "{:<12} recovered: {:?}",
            channel.label(),
            recovery.get("recovered").unwrap().as_str().unwrap()
        );
        println!(
            "{:<12} attack miss profile: L1D {:.2}% / L2 {:.2}% / LLC {:.2}%  ({} LLC accesses)\n",
            "",
            pct("l1d_miss_rate"),
            pct("l2_miss_rate"),
            pct("llc_miss_rate"),
            footprint.get("llc_accesses").unwrap().as_u64().unwrap()
        );
    }
    println!("note the Table VII shape: Flush+Reload misses beyond the L2 *constantly*");
    println!("(every probe reload comes from memory), while the LRU-channel attacks make");
    println!("almost no traffic beyond the L1 at all — their non-zero LLC percentages sit");
    println!("on a few dozen compulsory accesses, invisible to a rate-based detector.");
    Ok(())
}
