//! Spectre v1 with the LRU channel as the disclosure primitive
//! (paper §VIII): recover a secret string the victim never
//! architecturally reads out of bounds.
//!
//! Run with `cargo run --release --example spectre_attack`.

use lru_leak::attacks::primitive::{FlushReloadPrimitive, LruAlg1Primitive, LruAlg2Primitive};
use lru_leak::attacks::spectre::{decode_symbols, encode_symbols, SpectreAttack};
use lru_leak::cache_sim::replacement::PolicyKind;
use lru_leak::exec_sim::machine::Machine;
use lru_leak::exec_sim::speculation::build_victim;
use lru_leak::lru_channel::params::Platform;

const SECRET: &str = "The Magic Words are Squeamish Ossifrage";

fn main() {
    let platform = Platform::e5_2690();
    println!("victim secret: {SECRET:?}\n");

    for which in ["F+R (mem)", "LRU Alg.1", "LRU Alg.2"] {
        let mut machine = Machine::new(platform.arch, PolicyKind::TreePlru, 0xfeed);
        let symbols = encode_symbols(SECRET);
        let (mut victim, secret_offset) = build_victim(&mut machine, &symbols, 8);
        let attack = SpectreAttack::default();

        // Warm up on the first symbol, then reset the counters so
        // the miss profile reflects the steady-state attack (the
        // view `perf` would give over a long run), as in Table VII.
        let recovered = match which {
            "F+R (mem)" => {
                let mut p = FlushReloadPrimitive::new(victim.pid, victim.array2, platform);
                attack.recover(&mut machine, &mut victim, &mut p, secret_offset, 1);
                machine.reset_counters();
                attack.recover(
                    &mut machine,
                    &mut victim,
                    &mut p,
                    secret_offset,
                    symbols.len(),
                )
            }
            "LRU Alg.1" => {
                // The stealthy variant: the victim's transient probe
                // access *hits* in L1 — only the Tree-PLRU bits move.
                let mut p =
                    LruAlg1Primitive::new(&mut machine, victim.pid, victim.array2, platform);
                attack.recover(&mut machine, &mut victim, &mut p, secret_offset, 1);
                machine.reset_counters();
                attack.recover(
                    &mut machine,
                    &mut victim,
                    &mut p,
                    secret_offset,
                    symbols.len(),
                )
            }
            _ => {
                let mut p =
                    LruAlg2Primitive::new(&mut machine, victim.pid, victim.array2, platform);
                attack.recover(&mut machine, &mut victim, &mut p, secret_offset, 1);
                machine.reset_counters();
                attack.recover(
                    &mut machine,
                    &mut victim,
                    &mut p,
                    secret_offset,
                    symbols.len(),
                )
            }
        };
        let text = decode_symbols(&recovered);
        let c = machine.counters(victim.pid);
        let rates = c.miss_rates();
        println!("{which:<10} recovered: {text:?}");
        println!(
            "{:<10} attack miss profile: {rates}  ({} L1D / {} L2 / {} LLC accesses)\n",
            "", c.l1d_accesses, c.l2_accesses, c.llc_accesses
        );
    }
    println!("note the Table VII shape: Flush+Reload misses beyond the L2 *constantly*");
    println!("(every probe reload comes from memory), while the LRU-channel attacks make");
    println!("almost no traffic beyond the L1 at all — their non-zero LLC percentages sit");
    println!("on a few dozen compulsory accesses, invisible to a rate-based detector.");
}
