//! The AMD µtag way predictor (paper §VI-B): why cross-process
//! Algorithm 1 degrades on Zen while the same-address-space variant
//! works. The mechanism demo drives the machine directly (it shows
//! single accesses, below the experiment surface); the channel
//! comparison is two scenarios differing only in the variant axis.
//!
//! Run with `cargo run --release --example amd_way_predictor`.

use lru_leak::cache_sim::hierarchy::HitLevel;
use lru_leak::cache_sim::replacement::PolicyKind;
use lru_leak::exec_sim::machine::Machine;
use lru_leak::lru_channel::covert::Variant;
use lru_leak::lru_channel::params::{ChannelParams, Platform};
use lru_leak::scenario::spec::{MessageSource, PlatformId, Scenario};

fn mechanism_demo() {
    println!("== Mechanism: one shared physical line, two linear addresses ==\n");
    let platform = Platform::epyc_7571();
    let mut m = Machine::new(platform.arch, PolicyKind::TreePlru, 1);
    let a = m.create_process();
    let b = m.create_process();
    let (va_a, va_b) = m.map_shared_page(a, b);

    m.access(a, va_a); // A loads: line cached, µtag trained to A's address
    let out_a = m.access(a, va_a);
    println!(
        "A re-loads through its own address:   {:?}, {} cycles (fast hit)",
        out_a.level, out_a.cycles
    );
    let out_b = m.access(b, va_b);
    println!(
        "B loads the SAME line, own address:   {:?}, {} cycles (µtag mispredict{})",
        out_b.level,
        out_b.cycles,
        if out_b.utag_mispredict { "!" } else { "?" }
    );
    assert_eq!(out_b.level, HitLevel::L1, "the data never left L1");
    assert!(out_b.cycles > out_a.cycles);
    let out_a2 = m.access(a, va_a);
    println!(
        "A loads again (B retrained the µtag): {:?}, {} cycles (mispredict again)",
        out_a2.level, out_a2.cycles
    );
    println!("\n→ every cross-address-space reload observes an L1-miss latency, so the");
    println!("  receiver of cross-process Algorithm 1 can no longer read the channel.\n");
}

fn channel_comparison() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Channel impact on the EPYC 7571 (Ts = 1e5, Tr = 1e3) ==\n");
    for (label, variant) in [
        (
            "Alg.1, two threads of one address space",
            Variant::SharedMemoryThreads,
        ),
        ("Alg.1, two separate processes", Variant::SharedMemory),
    ] {
        // Identical scenarios except the variant axis; the
        // experiment applies the moving-average decoding the coarse
        // AMD counter requires (§VI-A).
        let outcome = Scenario::builder()
            .platform(PlatformId::Epyc7571)
            .variant(variant)
            .params(ChannelParams {
                d: 8,
                target_set: 0,
                ts: 100_000,
                tr: 1_000,
            })
            .message(MessageSource::Alternating { bits: 32 })
            .seed(3)
            .build()?
            .run();
        println!(
            "{label:<42} error rate {:>5.1}%",
            outcome.get("error_rate").unwrap().as_f64().unwrap() * 100.0
        );
    }
    println!("\n→ same-address-space threads keep the channel (paper Fig. 7 top); across");
    println!("  processes the µtag thrash destroys the hit/miss signal (§VI-B).");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    mechanism_demo();
    channel_comparison()
}
