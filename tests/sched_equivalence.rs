//! The fast-forwarding execution engine's contract: observationally
//! identical to the op-at-a-time interpreter.
//!
//! `exec_sim::sched` now runs two engines over the same schedule —
//! the batched/fast-forwarding default and the original interpreter
//! retained as `sched::reference`. This suite pins them against each
//! other at three levels:
//!
//! * **registry artifacts** — every artifact (in particular all
//!   time-sliced and hyper-threaded covert/percent-ones grids)
//!   renders byte-identical `Report { text, metrics }` under both
//!   engines;
//! * **natural-parameter percent-ones runs** — fig6-style cells at
//!   `Tr = 1e8`, clean and under both disjoint-footprint noise
//!   (exercising the analytic quantum fast-forward) and overlapping
//!   noise (exercising the tight-loop path);
//! * **property tests** — random short programs on 1–3 threads,
//!   random scheduler timings: identical `SchedulerReport`, machine
//!   counters and per-op results under `reference` and the fast
//!   engine, for both sharing models, including fast-forward-eligible
//!   paced co-runners.

use std::sync::{Mutex, MutexGuard, PoisonError};

use lru_leak::cache_sim::profiles::MicroArch;
use lru_leak::cache_sim::replacement::PolicyKind;
use lru_leak::exec_sim::machine::Machine;
use lru_leak::exec_sim::noise::RandomTouches;
use lru_leak::exec_sim::program::{Op, Script};
use lru_leak::exec_sim::sched::{
    self, reference, Engine, HyperThreaded, SchedulerReport, ThreadHandle, TimeSliced,
};
use lru_leak::exec_sim::LatencyProbe;
use lru_leak::exec_sim::TscModel;
use lru_leak::lru_channel::covert::{percent_ones, percent_ones_noisy, Variant};
use lru_leak::lru_channel::noise::NoiseModel;
use lru_leak::lru_channel::params::{ChannelParams, Platform};
use lru_leak::scenario::registry::{self, RunOpts};
use proptest::prelude::*;

/// The engine selector is process-global; tests that flip it
/// serialize on this lock and restore the default when done.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

struct EngineGuard<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl EngineGuard<'_> {
    fn lock() -> EngineGuard<'static> {
        EngineGuard(ENGINE_LOCK.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl Drop for EngineGuard<'_> {
    fn drop(&mut self) {
        sched::set_engine(Engine::FastForward);
    }
}

/// Runs `f` under each engine and returns (fast, reference) results.
fn under_both_engines<T>(mut f: impl FnMut() -> T) -> (T, T) {
    sched::set_engine(Engine::FastForward);
    let fast = f();
    sched::set_engine(Engine::Reference);
    let refr = f();
    sched::set_engine(Engine::FastForward);
    (fast, refr)
}

#[test]
fn every_registry_artifact_is_engine_invariant() {
    let _guard = EngineGuard::lock();
    let opts = RunOpts {
        trials: Some(1),
        seed: 0xe4e4_5eed,
    };
    for id in registry::ids() {
        let artifact = registry::get(id).unwrap();
        // run_buffered: sequential, so the comparison is pure engine
        // behaviour, independent of the worker pool.
        let (fast, refr) = under_both_engines(|| artifact.run_buffered(&opts));
        assert_eq!(
            fast.text, refr.text,
            "{id}: fast-forward text differs from the reference interpreter"
        );
        assert_eq!(
            fast.metrics.to_string(),
            refr.metrics.to_string(),
            "{id}: fast-forward metrics differ from the reference interpreter"
        );
    }
}

/// Fig. 6-shaped cells at the paper's 1e8-cycle periods: the exact
/// workload the fast-forward engine was built for.
#[test]
fn timesliced_percent_ones_is_engine_invariant_at_natural_periods() {
    let _guard = EngineGuard::lock();
    let platform = Platform::e5_2690();
    for (target_set, bit, seed) in [(0usize, false, 5u64), (0, true, 5), (32, true, 9)] {
        let params = ChannelParams {
            d: 8,
            target_set,
            ts: 100_000_000,
            tr: 100_000_000,
        };
        let (fast, refr) = under_both_engines(|| {
            percent_ones(platform, params, Variant::SharedMemory, bit, 25, seed).unwrap()
        });
        assert_eq!(
            fast, refr,
            "percent_ones(set={target_set}, bit={bit}) diverged between engines"
        );
    }
}

/// Noise co-runners: a buffer clear of the target and probe sets is
/// analytically fast-forwarded, an overlapping one runs through the
/// tight loop — both must reproduce the interpreter exactly.
#[test]
fn noisy_percent_ones_is_engine_invariant() {
    let _guard = EngineGuard::lock();
    let platform = Platform::e5_2690();
    let params = ChannelParams {
        d: 8,
        target_set: 32,
        ts: 100_000_000,
        tr: 100_000_000,
    };
    for noise in [
        // Sets 0..16: disjoint from target set 32 and probe set 63 —
        // the analytic fast-forward fires.
        NoiseModel::RandomEviction {
            lines: 16,
            gap_cycles: 60_000,
        },
        // Sets 0..64 at 8-way pressure: overlaps the channel — every
        // touch is simulated.
        NoiseModel::RandomEviction {
            lines: 512,
            gap_cycles: 60_000,
        },
        NoiseModel::PeriodicBurst {
            period_cycles: 1_000_000,
            burst_lines: 64,
        },
        NoiseModel::Bernoulli { p: 0.6, lines: 4 },
    ] {
        for bit in [false, true] {
            let (fast, refr) = under_both_engines(|| {
                percent_ones_noisy(platform, params, Variant::SharedMemory, bit, 20, noise, 11)
                    .unwrap()
            });
            assert_eq!(
                fast,
                refr,
                "noisy percent_ones diverged between engines ({}, bit={bit})",
                noise.label()
            );
        }
    }
}

// ---- property tests: random short programs, random timings ----

/// Everything two engine runs must agree on.
#[derive(Debug, PartialEq)]
struct Observed {
    report: SchedulerReport,
    counters: Vec<lru_leak::cache_sim::counters::PerfCounters>,
    results: Vec<Vec<lru_leak::exec_sim::OpResult>>,
}

/// Scheduler configuration under test.
#[derive(Debug, Clone)]
enum SchedCfg {
    Ts(TimeSliced),
    Ht(HyperThreaded),
}

/// Builds a machine plus per-thread scripts from op blueprints, runs
/// one engine over them and returns the observables. Processes are
/// created deterministically, thread 0 carries a probe (so
/// `TimedAccess` is exercised); op addresses index into a per-thread
/// 4-page arena.
fn observe_scripts(
    blueprints: &[Vec<(u8, u32)>],
    sched_cfg: &SchedCfg,
    limit: u64,
    use_reference: bool,
) -> Observed {
    let mut machine = Machine::new(MicroArch::sandy_bridge_e5_2690(), PolicyKind::TreePlru, 77);
    let mut pids = Vec::new();
    let mut arenas = Vec::new();
    for _ in blueprints {
        let pid = machine.create_process();
        let arena = machine.alloc_pages(pid, 4);
        pids.push(pid);
        arenas.push(arena);
    }
    let probe = LatencyProbe::new(&mut machine, pids[0], TscModel::intel(), 63);
    let mut programs: Vec<Script> = blueprints
        .iter()
        .enumerate()
        .map(|(t, ops)| {
            Script::new(
                ops.iter()
                    .map(|&(kind, x)| {
                        let line = u64::from(x) % (4 * 64);
                        let va = arenas[t].add(line * 64);
                        match kind {
                            0 => Op::Access(va),
                            1 => Op::Compute(x % 500),
                            2 => Op::SpinUntil(u64::from(x) % (2 * limit)),
                            3 => Op::Flush(va),
                            _ if t == 0 => Op::TimedAccess(va),
                            _ => Op::Access(va),
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    let report = {
        let mut handles: Vec<ThreadHandle<'_>> = programs
            .iter_mut()
            .enumerate()
            .map(|(t, p)| {
                if t == 0 {
                    ThreadHandle::with_probe(pids[0], p, probe.clone())
                } else {
                    ThreadHandle::new(pids[t], p)
                }
            })
            .collect();
        match (sched_cfg, use_reference) {
            (SchedCfg::Ts(cfg), true) => {
                reference::run_time_sliced(cfg, &mut machine, &mut handles, limit)
            }
            (SchedCfg::Ts(cfg), false) => cfg.run(&mut machine, &mut handles, limit),
            (SchedCfg::Ht(cfg), true) => {
                reference::run_hyper_threaded(cfg, &mut machine, &mut handles, limit)
            }
            (SchedCfg::Ht(cfg), false) => cfg.run(&mut machine, &mut handles, limit),
        }
    };
    Observed {
        report,
        counters: pids.iter().map(|&p| *machine.counters(p)).collect(),
        results: programs.into_iter().map(|p| p.results).collect(),
    }
}

/// Paced co-runners (the fast-forward-eligible shape): each thread
/// is a `RandomTouches` over its own line range of a private page.
fn observe_paced(
    threads: &[(u64, u64, u32)], // (first_line, lines, gap)
    sched_cfg: &SchedCfg,
    limit: u64,
    use_reference: bool,
) -> (
    SchedulerReport,
    Vec<lru_leak::cache_sim::counters::PerfCounters>,
) {
    let mut machine = Machine::new(MicroArch::sandy_bridge_e5_2690(), PolicyKind::TreePlru, 3);
    let mut pids = Vec::new();
    let mut programs = Vec::new();
    for (i, &(first_line, lines, gap)) in threads.iter().enumerate() {
        let pid = machine.create_process();
        let arena = machine.alloc_pages(pid, 1);
        pids.push(pid);
        programs.push(RandomTouches::new(
            arena.add(first_line * 64),
            lines,
            64,
            gap,
            i as u64 + 1,
        ));
    }
    let report = {
        let mut handles: Vec<ThreadHandle<'_>> = programs
            .iter_mut()
            .enumerate()
            .map(|(t, p)| ThreadHandle::new(pids[t], p))
            .collect();
        match (sched_cfg, use_reference) {
            (SchedCfg::Ts(cfg), true) => {
                reference::run_time_sliced(cfg, &mut machine, &mut handles, limit)
            }
            (SchedCfg::Ts(cfg), false) => cfg.run(&mut machine, &mut handles, limit),
            (SchedCfg::Ht(cfg), true) => {
                reference::run_hyper_threaded(cfg, &mut machine, &mut handles, limit)
            }
            (SchedCfg::Ht(cfg), false) => cfg.run(&mut machine, &mut handles, limit),
        }
    };
    (report, pids.iter().map(|&p| *machine.counters(p)).collect())
}

/// Strategy: one short random program as (op kind, payload) pairs.
fn blueprint() -> impl Strategy<Value = Vec<(u8, u32)>> {
    proptest::collection::vec((0u8..5, 0u32..=u32::MAX), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random short programs, 1–3 threads, random valid time-sliced
    /// timing: identical reports, counters and per-op results.
    #[test]
    fn time_sliced_engines_agree_on_random_programs(
        blueprints in proptest::collection::vec(blueprint(), 1..=3),
        quantum in 200u64..5_000,
        jitter_frac in 0u64..=200,
        switch_cost in 0u64..100,
        seed in 0u64..=u64::MAX,
    ) {
        let cfg = SchedCfg::Ts(TimeSliced::with_timing(
            quantum,
            quantum * jitter_frac / 100,
            switch_cost,
            seed,
        ).expect("valid timing"));
        let limit = 60_000;
        let fast = observe_scripts(&blueprints, &cfg, limit, false);
        let refr = observe_scripts(&blueprints, &cfg, limit, true);
        prop_assert_eq!(fast, refr);
    }

    /// The same under hyper-threading (per-op jitter, per-op
    /// interleaving).
    #[test]
    fn hyper_threaded_engines_agree_on_random_programs(
        blueprints in proptest::collection::vec(blueprint(), 1..=3),
        jitter in 0u32..4,
        seed in 0u64..=u64::MAX,
    ) {
        let cfg = SchedCfg::Ht(HyperThreaded { jitter, seed });
        let limit = 60_000;
        let fast = observe_scripts(&blueprints, &cfg, limit, false);
        let refr = observe_scripts(&blueprints, &cfg, limit, true);
        prop_assert_eq!(fast, refr);
    }

    /// Paced co-runners with random (possibly overlapping, possibly
    /// disjoint) footprints: the analytic fast-forward and the tight
    /// loop must both reproduce the interpreter, for gaps above and
    /// below the hit cost.
    #[test]
    fn fast_forward_eligible_corunners_agree(
        shapes in proptest::collection::vec(
            (0u64..48, 1u64..16, 1u32..40_000), 1..=3),
        quantum in 2_000u64..40_000,
        switch_cost in 0u64..200,
        seed in 0u64..=u64::MAX,
    ) {
        let cfg = SchedCfg::Ts(TimeSliced::with_timing(
            quantum, quantum / 2, switch_cost, seed,
        ).expect("valid timing"));
        // Clamp ranges into the 64-line page.
        let shapes: Vec<(u64, u64, u32)> = shapes
            .into_iter()
            .map(|(first, lines, gap)| (first.min(63), lines.min(64 - first.min(63)), gap))
            .collect();
        let limit = 400_000;
        let fast = observe_paced(&shapes, &cfg, limit, false);
        let refr = observe_paced(&shapes, &cfg, limit, true);
        prop_assert_eq!(fast, refr);
    }
}
