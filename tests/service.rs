//! The experiment service's contract, pinned end to end over real
//! TCP connections:
//!
//! 1. **The protocol round-trips.** A `run` request's body is
//!    byte-identical to `lru-leak run <id> --json`; an `adhoc`
//!    request's body to `lru-leak adhoc <sc> --json`; `status`
//!    reports the counters.
//! 2. **Identical concurrent requests coalesce.** N clients asking
//!    for the same artifact cost exactly one simulation
//!    (counter-verified) and every one of them receives the same
//!    bytes; the shared result cache backs the guarantee for
//!    stragglers that miss the single-flight window.
//! 3. **Deadlines are structured.** A request whose budget expires —
//!    even while queued — gets an `error` event with status
//!    `timeout`, not a hang or a dropped connection.
//! 4. **Disconnects cancel.** A client that goes away mid-job stops
//!    paying for it: the server cancels the job cooperatively.
//! 5. **Shutdown drains.** Queued jobs complete and their clients
//!    get results before `Server::run` returns.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use lru_leak::scenario::Value;
use lru_leak_cli::run_cli;
use lru_leak_server::{client, Server, ServerConfig, ServerHandle};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Binds a server on an ephemeral port, runs it on its own thread,
/// and returns `(addr, handle, join)`.
fn spawn_server(
    config: ServerConfig,
) -> (
    String,
    ServerHandle,
    thread::JoinHandle<std::io::Result<lru_leak_server::ServerSummary>>,
) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("bind");
    let addr = server.local_addr().expect("local_addr").to_string();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, join)
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lru-leak-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A `run` request for `fig5`, pinned to a tiny deterministic
/// configuration so the suite stays fast.
fn fig5_request() -> Value {
    Value::obj()
        .with("cmd", "run")
        .with("artifact", "fig5")
        .with("trials", 2u64)
        .with("seed", 99u64)
}

/// What the CLI prints for the same configuration.
fn fig5_cli_body() -> String {
    run_cli(&args(&[
        "run", "fig5", "--json", "--trials", "2", "--seed", "99",
    ]))
    .expect("cli run")
}

fn body_of(event: &Value) -> String {
    assert_eq!(
        event.get("event").and_then(Value::as_str),
        Some("result"),
        "expected a result event, got {event}"
    );
    event
        .get("body")
        .and_then(Value::as_str)
        .expect("result body")
        .to_string()
}

#[test]
fn run_and_adhoc_bodies_match_the_cli_byte_for_byte() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());

    // Artifact request == `lru-leak run fig5 --json ...`. The
    // accepted event announces up front that the job rides the
    // lockstep batch path (fig5 is covert + hyper-threaded +
    // noiseless, so every cell is eligible under the engine's default
    // `auto` mode).
    let mut accepted = Vec::new();
    let event =
        client::request(&addr, &fig5_request(), |e| accepted.push(e.clone())).expect("run request");
    assert_eq!(
        accepted
            .first()
            .and_then(|e| e.get("lockstep"))
            .and_then(Value::as_bool),
        Some(true),
        "accepted event flags lockstep jobs"
    );
    assert_eq!(body_of(&event), fig5_cli_body());
    let status = event.get("status").expect("job status");
    assert_eq!(status.get("cells").and_then(Value::as_u64), Some(2));
    assert_eq!(
        status.get("lockstep_cells").and_then(Value::as_u64),
        Some(2),
        "both fig5 cells ran lockstep"
    );

    // Adhoc request == `lru-leak adhoc <sc> --json`.
    let sc = lru_leak::scenario::Scenario::builder()
        .message(lru_leak::scenario::MessageSource::Alternating { bits: 8 })
        .seed(7)
        .build()
        .unwrap();
    let adhoc = Value::obj()
        .with("cmd", "adhoc")
        .with("scenario", sc.to_json());
    let event = client::request(&addr, &adhoc, |_| {}).expect("adhoc request");
    let reference =
        run_cli(&args(&["adhoc", &sc.to_json().to_string(), "--json"])).expect("cli adhoc");
    assert_eq!(body_of(&event), reference);

    // Status reflects what just happened.
    let status = client::status(&addr).expect("status");
    assert_eq!(status.get("event").and_then(Value::as_str), Some("status"));
    assert_eq!(status.get("requests").and_then(Value::as_u64), Some(2));
    assert_eq!(status.get("completed").and_then(Value::as_u64), Some(2));
    assert_eq!(status.get("failed").and_then(Value::as_u64), Some(0));
    // fig5's two cells plus the (eligible) adhoc scenario.
    assert_eq!(
        status.get("lockstep_cells").and_then(Value::as_u64),
        Some(3)
    );

    // A malformed request is a structured error, not a dropped
    // connection.
    let bad = Value::obj().with("cmd", "run").with("artifact", "fig99");
    let event = client::request(&addr, &bad, |_| {}).expect("bad request");
    assert_eq!(event.get("event").and_then(Value::as_str), Some("error"));
    assert_eq!(
        event.get("status").and_then(Value::as_str),
        Some("bad_request")
    );

    handle.begin_shutdown();
    let summary = join.join().unwrap().expect("server run");
    assert_eq!(summary.completed, 2);
    assert_eq!(summary.failed, 1);
}

#[test]
fn identical_concurrent_requests_cost_exactly_one_simulation() {
    let dir = tmp_dir("coalesce");
    // The artificial 800ms job delay holds the single-flight window
    // open so the followers reliably join the leader's flight.
    let (addr, handle, join) = spawn_server(ServerConfig {
        cache_dir: Some(dir.clone()),
        job_delay: Some(Duration::from_millis(800)),
        ..ServerConfig::default()
    });

    let leader = {
        let addr = addr.clone();
        thread::spawn(move || client::request(&addr, &fig5_request(), |_| {}).expect("leader"))
    };
    // Give the leader time to be admitted and start its delay.
    thread::sleep(Duration::from_millis(150));
    let followers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || {
                client::request(&addr, &fig5_request(), |_| {}).expect("follower")
            })
        })
        .collect();

    let reference = fig5_cli_body();
    let lead_body = body_of(&leader.join().unwrap());
    assert_eq!(lead_body, reference, "leader body differs from the CLI");
    for f in followers {
        assert_eq!(
            body_of(&f.join().unwrap()),
            reference,
            "follower body differs from the CLI"
        );
    }

    // The core guarantee: four requests, one simulation. fig5 has
    // two grid cells; exactly those two were computed, regardless of
    // whether a straggler coalesced or was served from the cache.
    let s = handle.summary();
    assert_eq!(s.requests, 4);
    assert_eq!(s.completed, 4);
    assert_eq!(s.computed_cells, 2, "more than one simulation ran");
    assert!(s.coalesced >= 1, "no follower joined the flight");

    // A warm repeat is a pure cache hit — still zero new work, still
    // the same bytes.
    let event = client::request(&addr, &fig5_request(), |_| {}).expect("warm request");
    assert_eq!(body_of(&event), reference);
    let s = handle.summary();
    assert_eq!(s.computed_cells, 2, "the warm request recomputed");
    assert!(s.cached_cells >= 2, "the warm request missed the cache");

    handle.begin_shutdown();
    join.join().unwrap().expect("server run");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_expired_deadline_is_a_structured_timeout() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        job_delay: Some(Duration::from_millis(1300)),
        ..ServerConfig::default()
    });

    let request = fig5_request().with("timeout_secs", 1u64);
    let event = client::request(&addr, &request, |_| {}).expect("request");
    assert_eq!(event.get("event").and_then(Value::as_str), Some("error"));
    assert_eq!(event.get("status").and_then(Value::as_str), Some("timeout"));
    assert!(
        event.get("message").and_then(Value::as_str).is_some(),
        "timeout carries a message"
    );

    handle.begin_shutdown();
    let summary = join.join().unwrap().expect("server run");
    assert_eq!(summary.failed, 1);
    assert_eq!(summary.completed, 0);
}

#[test]
fn a_client_disconnect_cancels_the_job() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        job_delay: Some(Duration::from_millis(2000)),
        ..ServerConfig::default()
    });

    // Speak the protocol by hand so the connection can be dropped
    // mid-job: send the request, wait for `accepted`, hang up.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .write_all(format!("{}\n", fig5_request()).as_bytes())
            .expect("send");
        let mut line = String::new();
        BufReader::new(&stream).read_line(&mut line).expect("recv");
        let accepted = Value::parse(line.trim()).expect("accepted event");
        assert_eq!(
            accepted.get("event").and_then(Value::as_str),
            Some("accepted")
        );
    } // <- the stream drops here, while the job is still in its delay

    // The reader thread notices the hangup and cancels the request's
    // token; the job fails as `cancelled` well before it would have
    // finished naturally.
    let t0 = Instant::now();
    while handle.summary().failed == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "disconnect was never noticed: {:?}",
            handle.summary()
        );
        thread::sleep(Duration::from_millis(25));
    }
    let s = handle.summary();
    assert_eq!(s.failed, 1);
    assert_eq!(s.completed, 0);
    assert_eq!(s.computed_cells, 0, "the cancelled job still simulated");

    handle.begin_shutdown();
    join.join().unwrap().expect("server run");
}

#[test]
fn shutdown_drains_queued_jobs_before_returning() {
    // Capacity 1 trial-unit: any job is admissible on an idle ledger,
    // but a second job must queue until the first completes.
    let (addr, handle, join) = spawn_server(ServerConfig {
        max_inflight_trials: 1,
        job_delay: Some(Duration::from_millis(400)),
        ..ServerConfig::default()
    });

    let first = {
        let addr = addr.clone();
        thread::spawn(move || client::request(&addr, &fig5_request(), |_| {}).expect("first"))
    };
    thread::sleep(Duration::from_millis(100));
    let queued = {
        let addr = addr.clone();
        let request = Value::obj()
            .with("cmd", "run")
            .with("artifact", "table3")
            .with("trials", 1u64)
            .with("seed", 99u64);
        thread::spawn(move || client::request(&addr, &request, |_| {}).expect("queued"))
    };
    thread::sleep(Duration::from_millis(100));

    // Drain begins while the first job is still running and the
    // second is still waiting for admission credits.
    handle.begin_shutdown();

    // Both clients still get their results…
    assert_eq!(
        body_of(&first.join().unwrap()),
        fig5_cli_body(),
        "in-flight job lost to the drain"
    );
    let queued_body = body_of(&queued.join().unwrap());
    let reference = run_cli(&args(&[
        "run", "table3", "--json", "--trials", "1", "--seed", "99",
    ]))
    .expect("cli table3");
    assert_eq!(queued_body, reference, "queued job lost to the drain");

    // …and the server then comes down cleanly with the books
    // balanced.
    let summary = join.join().unwrap().expect("server run");
    assert_eq!(summary.requests, 2);
    assert_eq!(summary.completed, 2);
    assert_eq!(summary.failed, 0);
}
