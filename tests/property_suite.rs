//! Cross-crate property tests: invariants that must hold for any
//! access sequence, message, or configuration.

use lru_leak::cache_sim::addr::PhysAddr;
use lru_leak::cache_sim::cache::Cache;
use lru_leak::cache_sim::counters::PerfCounters;
use lru_leak::cache_sim::geometry::CacheGeometry;
use lru_leak::cache_sim::hierarchy::HitLevel;
use lru_leak::cache_sim::profiles::MicroArch;
use lru_leak::cache_sim::replacement::{Domain, PolicyKind};
use lru_leak::exec_sim::machine::Machine;
use lru_leak::exec_sim::program::{Op, Script};
use lru_leak::exec_sim::sched::{HyperThreaded, ThreadHandle, TimeSliced};
use lru_leak::lru_channel::analysis::Histogram;
use lru_leak::lru_channel::decode::{self, BitConvention};
use lru_leak::lru_channel::protocol::Sample;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full hierarchy serves every repeated access from L1, for
    /// any address stream and policy.
    #[test]
    fn second_access_always_hits_l1(
        addrs in proptest::collection::vec(0u64..1 << 18, 1..60),
        policy_idx in 0usize..5,
    ) {
        let policy = [
            PolicyKind::Lru,
            PolicyKind::TreePlru,
            PolicyKind::BitPlru,
            PolicyKind::Fifo,
            PolicyKind::Random,
        ][policy_idx];
        let mut h = MicroArch::sandy_bridge_e5_2690().build_hierarchy(policy, 1);
        let mut c = PerfCounters::new();
        for &raw in &addrs {
            let va = lru_leak::cache_sim::addr::VirtAddr::new(raw);
            let pa = PhysAddr::new(raw);
            h.access(va, pa, &mut c, Domain::PRIMARY);
            let again = h.access(va, pa, &mut c, Domain::PRIMARY);
            prop_assert_eq!(again.level, HitLevel::L1);
        }
    }

    /// Counter consistency at the hierarchy level: L2 accesses equal
    /// L1 misses; LLC accesses equal L2 misses.
    #[test]
    fn counter_chain_is_consistent(
        addrs in proptest::collection::vec(0u64..1 << 20, 1..200),
    ) {
        let mut h = MicroArch::sandy_bridge_e5_2690()
            .build_hierarchy(PolicyKind::TreePlru, 2);
        let mut c = PerfCounters::new();
        for &raw in &addrs {
            let va = lru_leak::cache_sim::addr::VirtAddr::new(raw);
            h.access(va, PhysAddr::new(raw), &mut c, Domain::PRIMARY);
        }
        prop_assert_eq!(c.l2_accesses, c.l1d_misses);
        prop_assert_eq!(c.llc_accesses, c.l2_misses);
        prop_assert!(c.llc_misses <= c.llc_accesses);
    }

    /// A flushed line is gone from every level, whatever happened
    /// before.
    #[test]
    fn flush_is_total(
        addrs in proptest::collection::vec(0u64..1 << 16, 1..80),
        victim_idx in 0usize..80,
    ) {
        let mut h = MicroArch::skylake_e3_1245v5()
            .build_hierarchy(PolicyKind::TreePlru, 3);
        let mut c = PerfCounters::new();
        for &raw in &addrs {
            let va = lru_leak::cache_sim::addr::VirtAddr::new(raw);
            h.access(va, PhysAddr::new(raw), &mut c, Domain::PRIMARY);
        }
        let victim = PhysAddr::new(addrs[victim_idx % addrs.len()]);
        h.flush(victim);
        prop_assert_eq!(h.probe_level(victim), HitLevel::Mem);
    }

    /// Scheduler conservation: every op of every script is executed
    /// exactly once, under both sharing modes, whatever the op mix.
    #[test]
    fn schedulers_execute_every_op(
        a_ops in 1usize..40,
        b_ops in 1usize..40,
        time_sliced in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let mut m = Machine::new(
            MicroArch::sandy_bridge_e5_2690(),
            PolicyKind::TreePlru,
            seed,
        );
        let pa = m.create_process();
        let pb = m.create_process();
        let va_a = m.alloc_pages(pa, 1);
        let va_b = m.alloc_pages(pb, 1);
        let mut sa = Script::new(
            (0..a_ops)
                .map(|i| if i % 3 == 0 { Op::Compute(7) } else { Op::Access(va_a) })
                .collect(),
        );
        let mut sb = Script::new(
            (0..b_ops)
                .map(|i| if i % 4 == 0 { Op::Flush(va_b) } else { Op::Access(va_b) })
                .collect(),
        );
        let mut threads = [ThreadHandle::new(pa, &mut sa), ThreadHandle::new(pb, &mut sb)];
        let report = if time_sliced {
            TimeSliced {
                quantum: 500,
                quantum_jitter: 100,
                switch_cost: 20,
                seed,
            }
            .run(&mut m, &mut threads, u64::MAX / 4)
        } else {
            HyperThreaded::new(seed).run(&mut m, &mut threads, u64::MAX / 4)
        };
        prop_assert_eq!(report.ops_executed[0] as usize, a_ops);
        prop_assert_eq!(report.ops_executed[1] as usize, b_ops);
        prop_assert_eq!(sa.results.len(), a_ops);
    }

    /// Decoder sanity for arbitrary traces: output length covers the
    /// last window, percent_ones is a fraction, the moving average
    /// stays inside the data's range.
    #[test]
    fn decoders_are_well_behaved(
        raw in proptest::collection::vec((0u64..100_000, 20u32..80), 1..100),
        ts in 500u64..5000,
        threshold in 30u32..60,
        window in 1usize..20,
    ) {
        let mut samples: Vec<Sample> = raw
            .iter()
            .map(|&(at, measured)| Sample {
                at,
                measured,
                level: HitLevel::L1,
            })
            .collect();
        samples.sort_by_key(|s| s.at);
        let bits = decode::bits_by_window(&samples, ts, threshold, BitConvention::HitIsOne);
        let last_window = (samples.last().unwrap().at / ts) as usize;
        prop_assert_eq!(bits.len(), last_window + 1);

        let p = decode::percent_ones(&samples, threshold, BitConvention::MissIsOne);
        prop_assert!((0.0..=1.0).contains(&p));

        let avg = decode::moving_average(&samples, window);
        prop_assert_eq!(avg.len(), samples.len());
        let lo = samples.iter().map(|s| s.measured).min().unwrap() as f64;
        let hi = samples.iter().map(|s| s.measured).max().unwrap() as f64;
        for &v in &avg {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    /// The two bit conventions are exact complements of each other on
    /// any trace with samples in every window.
    #[test]
    fn conventions_are_complementary(
        measured in proptest::collection::vec(20u32..80, 1..60),
        threshold in 30u32..60,
    ) {
        let samples: Vec<Sample> = measured
            .iter()
            .enumerate()
            .map(|(i, &m)| Sample {
                at: i as u64 * 100,
                measured: m,
                level: HitLevel::L1,
            })
            .collect();
        // One sample per window => no carried bits; majority of one.
        let hit1 = decode::bits_by_window(&samples, 100, threshold, BitConvention::HitIsOne);
        let miss1 = decode::bits_by_window(&samples, 100, threshold, BitConvention::MissIsOne);
        for (a, b) in hit1.iter().zip(&miss1) {
            prop_assert_ne!(a, b);
        }
    }

    /// Histogram frequencies sum to 1 and overlap is symmetric.
    #[test]
    fn histogram_axioms(
        a in proptest::collection::vec(0u32..50, 1..100),
        b in proptest::collection::vec(0u32..50, 1..100),
    ) {
        let ha: Histogram = a.iter().copied().collect();
        let hb: Histogram = b.iter().copied().collect();
        let total: f64 = ha.rows().iter().map(|(_, f)| f).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!((ha.overlap(&hb) - hb.overlap(&ha)).abs() < 1e-9);
        prop_assert!((ha.overlap(&ha) - 1.0).abs() < 1e-9);
    }

    /// PL cache invariant: a locked line survives any request
    /// sequence that does not unlock it.
    #[test]
    fn locked_lines_are_immortal(
        requests in proptest::collection::vec(0u64..12, 1..200),
        design_fixed in any::<bool>(),
    ) {
        use lru_leak::cache_sim::plcache::{PlCache, PlDesign, PlRequest};
        let geom = CacheGeometry::l1d_paper();
        let design = if design_fixed { PlDesign::Fixed } else { PlDesign::Original };
        let mut pl = PlCache::new(geom, PolicyKind::TreePlru, design, 1);
        let locked = PhysAddr::new(99 * geom.set_stride());
        pl.request(locked, PlRequest::Lock);
        for &i in &requests {
            pl.request(PhysAddr::new(i * geom.set_stride()), PlRequest::Access);
        }
        prop_assert!(pl.probe(locked));
        prop_assert!(pl.is_locked(locked));
    }

    /// Cache clear really empties: after clear, every previously
    /// accessed line misses.
    #[test]
    fn clear_forgets_everything(
        addrs in proptest::collection::vec(0u64..1 << 14, 1..50),
    ) {
        let mut c = Cache::new(CacheGeometry::l1d_paper(), PolicyKind::TreePlru, 4);
        for &a in &addrs {
            c.access(PhysAddr::new(a));
        }
        c.clear();
        for &a in &addrs {
            prop_assert!(!c.probe(PhysAddr::new(a)));
        }
    }
}
