//! Crash-safety contract, pinned end to end: the durable job journal
//! and `--recover` replay, overload shedding, and the slow-reader
//! watchdog.
//!
//! 1. **Recovery serves the same bytes.** A server restarted with
//!    `--recover` over a journal holding a pending job recomputes it
//!    in original admission order, while `done` jobs verify against
//!    the result cache and are served from it — every response stays
//!    byte-identical to `lru-leak run <id> --json`, and nothing that
//!    already completed is recomputed.
//! 2. **Overload is shed, not queued without bound.** Past the
//!    admission-queue bound, a request gets a structured `overloaded`
//!    rejection with a `retry_after_ms` hint (HTTP: `503` +
//!    `Retry-After`), and a retrying client that honors the hint
//!    lands the job once capacity frees up.
//! 3. **A client that stops draining cannot pin the server.** The
//!    write watchdog fails a stalled progress write, the job is
//!    cancelled, and the ledger's credits come back.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use lru_leak::scenario::Value;
use lru_leak_cli::run_cli;
use lru_leak_server::proto::{parse_request, Request};
use lru_leak_server::{client, journal, Server, ServerConfig, ServerHandle};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn spawn_server(
    config: ServerConfig,
) -> (
    String,
    ServerHandle,
    thread::JoinHandle<std::io::Result<lru_leak_server::ServerSummary>>,
) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("bind");
    let addr = server.local_addr().expect("local_addr").to_string();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, join)
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lru-leak-crashsafe-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fig5_request() -> Value {
    Value::obj()
        .with("cmd", "run")
        .with("artifact", "fig5")
        .with("trials", 2u64)
        .with("seed", 99u64)
}

fn fig5_cli_body() -> String {
    run_cli(&args(&[
        "run", "fig5", "--json", "--trials", "2", "--seed", "99",
    ]))
    .expect("cli run")
}

fn table3_request() -> Value {
    Value::obj()
        .with("cmd", "run")
        .with("artifact", "table3")
        .with("trials", 1u64)
        .with("seed", 99u64)
}

fn table3_cli_body() -> String {
    run_cli(&args(&[
        "run", "table3", "--json", "--trials", "1", "--seed", "99",
    ]))
    .expect("cli run")
}

fn body_of(event: &Value) -> String {
    assert_eq!(
        event.get("event").and_then(Value::as_str),
        Some("result"),
        "expected a result event, got {event}"
    );
    event
        .get("body")
        .and_then(Value::as_str)
        .expect("result body")
        .to_string()
}

#[test]
fn recovery_replays_pending_jobs_and_serves_done_jobs_from_cache() {
    let dir = tmp_dir("recover");

    // Life before the crash: one job completes normally, so the
    // journal holds its accepted/started/done records and the result
    // cache holds its cells.
    {
        let (addr, handle, join) = spawn_server(ServerConfig {
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        });
        let event = client::request(&addr, &fig5_request(), |_| {}).expect("pre-crash request");
        assert_eq!(body_of(&event), fig5_cli_body());
        handle.begin_shutdown();
        join.join().unwrap().expect("server run");
    }

    // The crash: a job was accepted (journaled, fsync'd, acknowledged)
    // but the process died before it ran. Forge exactly the record the
    // server would have appended — this also pins the on-disk grammar
    // from outside the journal module.
    let Ok(Request::Run(run)) = parse_request(&table3_request().to_string()) else {
        panic!("table3 request must parse");
    };
    let record = format!(
        "{{\"rec\":\"accepted\",\"v\":{},\"seq\":9,\"key\":\"{:016x}\",\"request\":{}}}\n",
        journal::JOURNAL_FORMAT_VERSION,
        run.content_key(),
        run.journal_json()
    );
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join(journal::JOURNAL_FILE))
        .expect("journal file");
    file.write_all(record.as_bytes()).expect("forge record");
    drop(file);

    // The restart: `--recover` verifies the done job against the cache
    // and replays the pending one.
    let (addr, handle, join) = spawn_server(ServerConfig {
        cache_dir: Some(dir.clone()),
        recover: true,
        ..ServerConfig::default()
    });
    let s = handle.summary();
    assert_eq!(s.recovered_done, 1, "the completed job verified in cache");
    assert_eq!(s.recovered_pending, 1, "the accepted job replays");

    // Both jobs answer with the CLI's exact bytes: the recovered one
    // recomputed, the done one came straight from the cache.
    let event = client::request(&addr, &table3_request(), |_| {}).expect("recovered request");
    assert_eq!(body_of(&event), table3_cli_body());
    let event = client::request(&addr, &fig5_request(), |_| {}).expect("cached request");
    assert_eq!(body_of(&event), fig5_cli_body());

    // Idempotency: re-asking for both computes nothing new.
    let computed = handle.summary().computed_cells;
    client::request(&addr, &table3_request(), |_| {}).expect("repeat");
    client::request(&addr, &fig5_request(), |_| {}).expect("repeat");
    let s = handle.summary();
    assert_eq!(s.computed_cells, computed, "a repeat request recomputed");
    assert!(
        s.cached_cells >= 2,
        "the pre-crash cells never hit the cache"
    );

    handle.begin_shutdown();
    join.join().unwrap().expect("server run");

    // The journal settled: nothing is pending after a clean recovery.
    let (_journal, report) = journal::Journal::recover(&dir, None).expect("re-open");
    assert!(
        report.pending.is_empty(),
        "recovery left pending records behind: {:?}",
        report.pending
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_without_a_cache_dir_is_a_config_error() {
    let err = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        recover: true,
        ..ServerConfig::default()
    })
    .expect_err("--recover without --cache-dir must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}

#[test]
fn overload_is_shed_with_a_structured_rejection_and_a_retry_lands() {
    // Capacity 1 trial-unit and a zero-length admission queue: while
    // one job runs, any non-coalescing request must be shed.
    let (addr, handle, join) = spawn_server(ServerConfig {
        max_inflight_trials: 1,
        max_queued: Some(0),
        job_delay: Some(Duration::from_millis(900)),
        ..ServerConfig::default()
    });

    let leader = {
        let addr = addr.clone();
        thread::spawn(move || client::request(&addr, &fig5_request(), |_| {}).expect("leader"))
    };
    thread::sleep(Duration::from_millis(200));

    // NDJSON path: a structured `overloaded` error with a retry hint.
    let event = client::request(&addr, &table3_request(), |_| {}).expect("shed request");
    assert_eq!(event.get("event").and_then(Value::as_str), Some("error"));
    assert_eq!(
        event.get("status").and_then(Value::as_str),
        Some("overloaded")
    );
    let hint = event
        .get("retry_after_ms")
        .and_then(Value::as_u64)
        .expect("overloaded rejections carry retry_after_ms");
    assert!(hint > 0, "the hint must be an actual backoff");
    assert_eq!(handle.summary().shed, 1);

    // HTTP shim: the same rejection as 503 + Retry-After.
    {
        let body = table3_request().to_string();
        let mut stream = TcpStream::connect(&addr).expect("http connect");
        write!(
            stream,
            "POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .expect("http send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("http recv");
        assert!(
            response.starts_with("HTTP/1.1 503 "),
            "expected a 503, got: {response}"
        );
        assert!(
            response.contains("Retry-After:"),
            "503 must carry Retry-After: {response}"
        );
        assert!(response.contains("\"status\":\"overloaded\""));
    }

    // A retrying client honors the hint and lands the job once the
    // leader's credits come back.
    let policy = client::RetryPolicy::new(8, Duration::from_millis(50));
    let event = client::request_with_retry(&addr, &table3_request(), &policy, |_| {})
        .expect("retry until admitted");
    assert_eq!(body_of(&event), table3_cli_body());
    assert_eq!(body_of(&leader.join().unwrap()), fig5_cli_body());

    let s = handle.summary();
    assert!(
        s.shed >= 2,
        "the retry loop should have been shed at least once"
    );
    handle.begin_shutdown();
    join.join().unwrap().expect("server run");
}

#[test]
fn a_client_that_stops_draining_trips_the_watchdog() {
    // Dense progress (an event per trial) against a short write
    // timeout: a reader that never drains fills the socket buffers in
    // well under a second of simulation, the stalled write fails, and
    // the watchdog cancels the job.
    let (addr, handle, join) = spawn_server(ServerConfig {
        write_timeout: Some(Duration::from_millis(250)),
        progress_every: Some(1),
        ..ServerConfig::default()
    });

    // Time-sliced sharing keeps the job off the lockstep batch path,
    // so the observer really fires once per trial — the event volume
    // is what pins the watchdog, dozens of megabytes against a socket
    // nobody reads.
    let scenario = lru_leak::scenario::Scenario::builder()
        .sharing(lru_leak::lru_channel::covert::Sharing::TimeSliced)
        .message(lru_leak::scenario::MessageSource::Alternating { bits: 8 })
        .trials(150_000)
        .seed(1)
        .build()
        .expect("scenario");
    let request = Value::obj()
        .with("cmd", "adhoc")
        .with("scenario", scenario.to_json())
        .with("stream", true);
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(format!("{request}\n").as_bytes())
        .expect("send");
    stream.flush().expect("flush");
    // ... and never read a byte.

    let t0 = Instant::now();
    while handle.summary().failed == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "the watchdog never fired: {:?}",
            handle.summary()
        );
        thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(handle.summary().completed, 0);

    // The stalled job's credits are back: a well-behaved client is
    // served immediately.
    let event = client::request(&addr, &fig5_request(), |_| {}).expect("post-watchdog request");
    assert_eq!(body_of(&event), fig5_cli_body());

    drop(stream);
    handle.begin_shutdown();
    join.join().unwrap().expect("server run");
}
