//! Back-invalidation vs. the fast-forwarding engine.
//!
//! The back-invalidating hierarchy deliberately violates the quantum
//! fast-forward soundness condition: a co-runner's L2 eviction can
//! reach *another* thread's L1 lines, so a thread's quantum can no
//! longer be summarised from its own footprint alone. The engine
//! consults `CacheHierarchy::quantum_ff_safe()` next to
//! `Program::footprint` and demotes every thread to block execution
//! on such a machine — which must leave it byte-identical to the
//! op-at-a-time interpreter retained as `sched::reference`.
//!
//! This suite pins that demotion:
//!
//! * fixed covert-channel cells (`percent_ones_with_hierarchy`) are
//!   engine-invariant under all three inclusion models;
//! * property tests run random short programs with a `RandomTouches`
//!   co-runner on the back-invalidating machine and require identical
//!   `SchedulerReport`s, per-process counters and per-op results
//!   under both engines and both sharing models.

use std::sync::{Mutex, MutexGuard, PoisonError};

use lru_leak::cache_sim::hierarchy::Inclusion;
use lru_leak::cache_sim::profiles::MicroArch;
use lru_leak::cache_sim::replacement::PolicyKind;
use lru_leak::exec_sim::machine::Machine;
use lru_leak::exec_sim::noise::RandomTouches;
use lru_leak::exec_sim::program::{Op, Script};
use lru_leak::exec_sim::sched::{
    self, reference, Engine, HyperThreaded, SchedulerReport, ThreadHandle, TimeSliced,
};
use lru_leak::exec_sim::LatencyProbe;
use lru_leak::exec_sim::TscModel;
use lru_leak::lru_channel::covert::{percent_ones_with_hierarchy, Variant};
use lru_leak::lru_channel::params::{ChannelParams, Platform};
use proptest::prelude::*;

/// The engine selector is process-global; tests that flip it
/// serialize on this lock and restore the default when done.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

struct EngineGuard<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl EngineGuard<'_> {
    fn lock() -> EngineGuard<'static> {
        EngineGuard(ENGINE_LOCK.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl Drop for EngineGuard<'_> {
    fn drop(&mut self) {
        sched::set_engine(Engine::FastForward);
    }
}

/// Runs `f` under each engine and returns (fast, reference) results.
fn under_both_engines<T>(mut f: impl FnMut() -> T) -> (T, T) {
    sched::set_engine(Engine::FastForward);
    let fast = f();
    sched::set_engine(Engine::Reference);
    let refr = f();
    sched::set_engine(Engine::FastForward);
    (fast, refr)
}

/// A machine whose hierarchy has been swapped to `inclusion`.
fn machine_with(inclusion: Inclusion, seed: u64) -> Machine {
    let mut machine = Machine::new(
        MicroArch::sandy_bridge_e5_2690(),
        PolicyKind::TreePlru,
        seed,
    );
    if inclusion != Inclusion::Inclusive {
        let swapped = machine.hierarchy().clone().with_inclusion(inclusion);
        *machine.hierarchy_mut() = swapped;
    }
    machine
}

#[test]
fn covert_cells_are_engine_invariant_under_every_inclusion() {
    let _guard = EngineGuard::lock();
    let platform = Platform::e5_2690();
    let params = ChannelParams {
        d: 8,
        target_set: 32,
        ts: 100_000_000,
        tr: 100_000_000,
    };
    for inclusion in [
        Inclusion::Inclusive,
        Inclusion::NonInclusive,
        Inclusion::BackInvalidate,
    ] {
        for bit in [false, true] {
            let (fast, refr) = under_both_engines(|| {
                percent_ones_with_hierarchy(
                    platform,
                    params,
                    Variant::SharedMemory,
                    bit,
                    20,
                    inclusion,
                    13,
                )
                .unwrap()
            });
            assert_eq!(
                fast, refr,
                "percent_ones({inclusion:?}, bit={bit}) diverged between engines"
            );
        }
    }
}

// ---- property tests: random programs on the unsafe hierarchy ----

/// Everything two engine runs must agree on.
#[derive(Debug, PartialEq)]
struct Observed {
    report: SchedulerReport,
    counters: Vec<lru_leak::cache_sim::counters::PerfCounters>,
    results: Vec<Vec<lru_leak::exec_sim::OpResult>>,
}

/// Scheduler configuration under test.
#[derive(Debug, Clone)]
enum SchedCfg {
    Ts(TimeSliced),
    Ht(HyperThreaded),
}

fn run_cfg(
    cfg: &SchedCfg,
    machine: &mut Machine,
    handles: &mut [ThreadHandle<'_>],
    limit: u64,
    use_reference: bool,
) -> SchedulerReport {
    match (cfg, use_reference) {
        (SchedCfg::Ts(cfg), true) => reference::run_time_sliced(cfg, machine, handles, limit),
        (SchedCfg::Ts(cfg), false) => cfg.run(machine, handles, limit),
        (SchedCfg::Ht(cfg), true) => reference::run_hyper_threaded(cfg, machine, handles, limit),
        (SchedCfg::Ht(cfg), false) => cfg.run(machine, handles, limit),
    }
}

/// Thread 0 runs a random script (with a latency probe so
/// `TimedAccess` is exercised); one more process runs a
/// `RandomTouches` co-runner — the fast-forward-eligible shape that
/// the capability bit must veto on a back-invalidating machine.
fn observe_mixed(
    blueprint: &[(u8, u32)],
    touches: (u64, u64, u32), // (first_line, lines, gap)
    inclusion: Inclusion,
    sched_cfg: &SchedCfg,
    limit: u64,
    use_reference: bool,
) -> Observed {
    let mut machine = machine_with(inclusion, 77);
    let script_pid = machine.create_process();
    let script_arena = machine.alloc_pages(script_pid, 4);
    let touch_pid = machine.create_process();
    let touch_arena = machine.alloc_pages(touch_pid, 1);
    let probe = LatencyProbe::new(&mut machine, script_pid, TscModel::intel(), 63);
    let mut script = Script::new(
        blueprint
            .iter()
            .map(|&(kind, x)| {
                let line = u64::from(x) % (4 * 64);
                let va = script_arena.add(line * 64);
                match kind {
                    0 => Op::Access(va),
                    1 => Op::Compute(x % 500),
                    2 => Op::SpinUntil(u64::from(x) % (2 * limit)),
                    3 => Op::Flush(va),
                    _ => Op::TimedAccess(va),
                }
            })
            .collect(),
    );
    let (first_line, lines, gap) = touches;
    let mut co_runner = RandomTouches::new(touch_arena.add(first_line * 64), lines, 64, gap, 2);
    let report = {
        let mut handles = vec![
            ThreadHandle::with_probe(script_pid, &mut script, probe),
            ThreadHandle::new(touch_pid, &mut co_runner),
        ];
        run_cfg(sched_cfg, &mut machine, &mut handles, limit, use_reference)
    };
    Observed {
        report,
        counters: [script_pid, touch_pid]
            .iter()
            .map(|&p| *machine.counters(p))
            .collect(),
        results: vec![script.results],
    }
}

/// Strategy: one short random program as (op kind, payload) pairs.
fn blueprint() -> impl Strategy<Value = Vec<(u8, u32)>> {
    proptest::collection::vec((0u8..5, 0u32..=u32::MAX), 0..40)
}

/// Clamps a raw `RandomTouches` shape into its 64-line page.
fn clamp(shape: (u64, u64, u32)) -> (u64, u64, u32) {
    let (first, lines, gap) = shape;
    (first.min(63), lines.min(64 - first.min(63)), gap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random program + paced co-runner on the back-invalidating
    /// machine, time-sliced: the demoted fast engine must match the
    /// interpreter exactly.
    #[test]
    fn back_invalidation_pins_time_sliced_engines_together(
        bp in blueprint(),
        shape in (0u64..48, 1u64..16, 1u32..40_000),
        quantum in 2_000u64..40_000,
        switch_cost in 0u64..200,
        seed in 0u64..=u64::MAX,
    ) {
        let cfg = SchedCfg::Ts(
            TimeSliced::with_timing(quantum, quantum / 2, switch_cost, seed)
                .expect("valid timing"),
        );
        let limit = 200_000;
        let fast = observe_mixed(&bp, clamp(shape), Inclusion::BackInvalidate, &cfg, limit, false);
        let refr = observe_mixed(&bp, clamp(shape), Inclusion::BackInvalidate, &cfg, limit, true);
        prop_assert_eq!(fast, refr);
    }

    /// The same under hyper-threading.
    #[test]
    fn back_invalidation_pins_hyper_threaded_engines_together(
        bp in blueprint(),
        shape in (0u64..48, 1u64..16, 1u32..40_000),
        jitter in 0u32..4,
        seed in 0u64..=u64::MAX,
    ) {
        let cfg = SchedCfg::Ht(HyperThreaded { jitter, seed });
        let limit = 60_000;
        let fast = observe_mixed(&bp, clamp(shape), Inclusion::BackInvalidate, &cfg, limit, false);
        let refr = observe_mixed(&bp, clamp(shape), Inclusion::BackInvalidate, &cfg, limit, true);
        prop_assert_eq!(fast, refr);
    }

    /// Control: the safe non-inclusive hierarchy (capability bit set)
    /// still agrees — the demotion is not the only reason the engines
    /// match.
    #[test]
    fn non_inclusive_hierarchy_keeps_engines_together(
        bp in blueprint(),
        shape in (0u64..48, 1u64..16, 1u32..40_000),
        quantum in 2_000u64..40_000,
        seed in 0u64..=u64::MAX,
    ) {
        let cfg = SchedCfg::Ts(
            TimeSliced::with_timing(quantum, quantum / 2, 50, seed).expect("valid timing"),
        );
        let limit = 200_000;
        let fast = observe_mixed(&bp, clamp(shape), Inclusion::NonInclusive, &cfg, limit, false);
        let refr = observe_mixed(&bp, clamp(shape), Inclusion::NonInclusive, &cfg, limit, true);
        prop_assert_eq!(fast, refr);
    }
}
