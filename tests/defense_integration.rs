//! Defense integration: each §IX mitigation actually stops the
//! channel it targets, at the claimed cost.

use lru_leak::cache_sim::plcache::PlDesign;
use lru_leak::cache_sim::replacement::PolicyKind;
use lru_leak::defense::delayed_update::{spectre_under_mode, Channel};
use lru_leak::defense::detection::{detection_study, MissRateDetector};
use lru_leak::defense::partition_eval::{dawg_partitioned_leak, shared_plru_leak};
use lru_leak::defense::pl_cache_eval::fig11;
use lru_leak::defense::policy_eval::{fig9_row, geomean_normalized_cpi};
use lru_leak::exec_sim::machine::Machine;
use lru_leak::exec_sim::speculation::SpecMode;
use lru_leak::lru_channel::covert::{CovertConfig, Sharing, Variant};
use lru_leak::lru_channel::decode::{self, BitConvention};
use lru_leak::lru_channel::edit_distance::error_rate;
use lru_leak::lru_channel::params::{ChannelParams, Platform};
use lru_leak::workloads::spec_like::Benchmark;

fn alg1_error_under_policy(policy: PolicyKind) -> f64 {
    let platform = Platform::e5_2690();
    let message: Vec<bool> = (0..40).map(|i| i % 2 == 1).collect();
    let cfg = CovertConfig {
        platform,
        params: ChannelParams::paper_alg1_default(),
        variant: Variant::SharedMemory,
        sharing: Sharing::HyperThreaded,
        message: message.clone(),
        seed: 40,
    };
    let mut machine = Machine::new(platform.arch, policy, 40);
    let run = cfg.run_on(&mut machine).unwrap();
    let bits = decode::bits_by_window(
        &run.samples,
        cfg.params.ts,
        run.hit_threshold,
        BitConvention::HitIsOne,
    );
    error_rate(&message, &bits[..message.len().min(bits.len())])
}

#[test]
fn policy_substitution_kills_the_channel() {
    // §IX-A: with FIFO or Random in the L1D the Algorithm 1 channel
    // must degrade to noise, while PLRU variants carry it cleanly.
    let plru = alg1_error_under_policy(PolicyKind::TreePlru);
    let fifo = alg1_error_under_policy(PolicyKind::Fifo);
    let random = alg1_error_under_policy(PolicyKind::Random);
    assert!(plru < 0.1, "Tree-PLRU should carry the channel, err {plru}");
    assert!(fifo > 0.3, "FIFO must break the channel, err {fifo}");
    assert!(random > 0.3, "Random must break the channel, err {random}");
}

#[test]
fn policy_substitution_is_cheap() {
    // §IX-A / Fig. 9: the performance cost is small.
    let arch = lru_leak::cache_sim::profiles::MicroArch::gem5_fig9();
    let rows: Vec<_> = ["bzip2", "hmmer", "libquantum", "gcc"]
        .iter()
        .map(|n| fig9_row(Benchmark::by_name(n).unwrap(), &arch, 20_000, 41))
        .collect();
    let geo = geomean_normalized_cpi(&rows);
    assert!((geo[1] - 1.0).abs() < 0.05, "FIFO CPI cost {:.3}", geo[1]);
    assert!((geo[2] - 1.0).abs() < 0.05, "Random CPI cost {:.3}", geo[2]);
}

#[test]
fn pl_cache_fix_closes_the_lock_channel() {
    let (original, fixed) = fig11(300, 1, 42);
    assert!(original.distinguishability() > 0.1);
    assert!(fixed.distinguishability() < 0.01);
    assert_eq!(original.design, PlDesign::Original);
    assert_eq!(fixed.design, PlDesign::Fixed);
    // The paper's exact wording: with the new design the receiver
    // always observes a cache hit.
    assert!(fixed.trace.iter().all(|p| p.hit));
}

#[test]
fn dawg_partitioning_closes_what_way_partitioning_leaves_open() {
    let shared = shared_plru_leak(3_000, 43);
    let dawg = dawg_partitioned_leak(3_000, 43);
    assert!(shared.victim_flip_rate > 0.2);
    assert_eq!(dawg.victim_flip_rate, 0.0);
}

#[test]
fn invisible_speculation_stops_spectre_but_baseline_leaks() {
    for channel in [Channel::FlushReload, Channel::LruAlg1, Channel::LruAlg2] {
        let base = spectre_under_mode(channel, SpecMode::Baseline, "ok", 44);
        let inv = spectre_under_mode(channel, SpecMode::Invisible, "ok", 44);
        assert!(
            base.accuracy > 0.99,
            "{channel:?} baseline {:.2}",
            base.accuracy
        );
        assert!(
            inv.accuracy < 0.5,
            "{channel:?} invisible {:.2}",
            inv.accuracy
        );
    }
}

#[test]
fn detector_separates_fr_from_lru_and_benign() {
    let verdicts = detection_study(Platform::e5_2690(), 250, 45);
    let flagged: Vec<&str> = verdicts
        .iter()
        .filter(|v| v.flagged)
        .map(|v| v.label)
        .collect();
    assert!(flagged.contains(&"F+R (mem)"), "flagged: {flagged:?}");
    for benign in [
        "L1 LRU Alg.1",
        "L1 LRU Alg.2",
        "sender & gcc",
        "sender only",
    ] {
        assert!(
            !flagged.contains(&benign),
            "{benign} wrongly flagged (flagged: {flagged:?})"
        );
    }
    let _ = MissRateDetector::default();
}
