//! End-to-end covert-channel integration: both algorithms, all three
//! simulated platforms, text payloads.

use lru_leak::lru_channel::covert::{CovertConfig, Sharing, Variant};
use lru_leak::lru_channel::decode::{self, BitConvention};
use lru_leak::lru_channel::edit_distance::error_rate;
use lru_leak::lru_channel::params::{ChannelParams, Platform};

fn text_to_bits(text: &str) -> Vec<bool> {
    text.bytes()
        .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
        .collect()
}

fn bits_to_text(bits: &[bool]) -> String {
    bits.chunks(8)
        .filter(|c| c.len() == 8)
        .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b)) as char)
        .collect()
}

#[test]
fn alg1_transfers_ascii_text_on_intel() {
    let payload = "LRU states leak!";
    let message = text_to_bits(payload);
    let params = ChannelParams::paper_alg1_default();
    let run = CovertConfig {
        platform: Platform::e5_2690(),
        params,
        variant: Variant::SharedMemory,
        sharing: Sharing::HyperThreaded,
        message: message.clone(),
        seed: 1,
    }
    .run()
    .unwrap();
    let bits = decode::bits_by_window(
        &run.samples,
        params.ts,
        run.hit_threshold,
        BitConvention::HitIsOne,
    );
    assert_eq!(bits_to_text(&bits[..message.len()]), payload);
}

#[test]
fn alg2_transfers_bits_with_low_error_on_both_intel_parts() {
    let message: Vec<bool> = (0..64).map(|i| (i * 7) % 3 == 0).collect();
    for platform in [Platform::e5_2690(), Platform::e3_1245v5()] {
        let params = ChannelParams::paper_alg2_default();
        let run = CovertConfig {
            platform,
            params,
            variant: Variant::NoSharedMemory,
            sharing: Sharing::HyperThreaded,
            message: message.clone(),
            seed: 2,
        }
        .run()
        .unwrap();
        let bits = decode::bits_by_window_ratio(
            &run.samples,
            params.ts,
            run.hit_threshold,
            BitConvention::MissIsOne,
            0.25,
        );
        let err = error_rate(&message, &bits[..message.len().min(bits.len())]);
        assert!(err < 0.2, "{}: Alg2 error rate {err}", platform.arch.model);
    }
}

#[test]
fn amd_channel_works_through_moving_average() {
    // Paper Fig. 7 top: Alg.1 between threads of one address space.
    let message: Vec<bool> = (0..24).map(|i| i % 2 == 0).collect();
    let params = ChannelParams {
        d: 8,
        target_set: 0,
        ts: 100_000,
        tr: 1_000,
    };
    let run = CovertConfig {
        platform: Platform::epyc_7571(),
        params,
        variant: Variant::SharedMemoryThreads,
        sharing: Sharing::HyperThreaded,
        message: message.clone(),
        seed: 3,
    }
    .run()
    .unwrap();
    let period = (run.samples.len() / message.len()).max(1);
    let avg = decode::moving_average(&run.samples, period);
    let bits = decode::bits_from_moving_average(&avg, period, BitConvention::HitIsOne);
    let err = error_rate(&message, &bits[..message.len().min(bits.len())]);
    assert!(err < 0.2, "AMD moving-average decode error rate {err}");
}

#[test]
fn amd_cross_process_alg1_is_degraded_by_way_predictor() {
    // §VI-B: the µtag way predictor breaks cross-address-space
    // Algorithm 1 on Zen; the same run works between threads.
    let message: Vec<bool> = (0..24).map(|i| i % 2 == 0).collect();
    let params = ChannelParams {
        d: 8,
        target_set: 0,
        ts: 100_000,
        tr: 1_000,
    };
    let mut errors = Vec::new();
    for variant in [Variant::SharedMemoryThreads, Variant::SharedMemory] {
        let run = CovertConfig {
            platform: Platform::epyc_7571(),
            params,
            variant,
            sharing: Sharing::HyperThreaded,
            message: message.clone(),
            seed: 4,
        }
        .run()
        .unwrap();
        let period = (run.samples.len() / message.len()).max(1);
        let avg = decode::moving_average(&run.samples, period);
        let bits = decode::bits_from_moving_average(&avg, period, BitConvention::HitIsOne);
        errors.push(error_rate(&message, &bits[..message.len().min(bits.len())]));
    }
    assert!(
        errors[1] > errors[0] + 0.15,
        "cross-process ({:.2}) must be much worse than same-AS ({:.2})",
        errors[1],
        errors[0]
    );
}

#[test]
fn time_sliced_channel_distinguishes_constant_bits() {
    use lru_leak::lru_channel::covert::percent_ones;
    let platform = Platform::e5_2690();
    let tr = 100_000_000;
    let params = ChannelParams {
        d: 8,
        target_set: 0,
        ts: tr,
        tr,
    };
    let p0 = percent_ones(platform, params, Variant::SharedMemory, false, 80, 5).unwrap();
    let p1 = percent_ones(platform, params, Variant::SharedMemory, true, 80, 5).unwrap();
    assert!(p0 < 0.1, "sending 0 should read ~all zeros, got {p0:.2}");
    assert!(p1 > 0.15, "sending 1 must show up, got {p1:.2}");
}

#[test]
fn channel_runs_are_deterministic_given_seed() {
    let cfg = CovertConfig {
        platform: Platform::e5_2690(),
        params: ChannelParams::paper_alg1_default(),
        variant: Variant::SharedMemory,
        sharing: Sharing::HyperThreaded,
        message: vec![true, false, true],
        seed: 99,
    };
    let a = cfg.run().unwrap();
    let b = cfg.run().unwrap();
    assert_eq!(a.samples, b.samples);
}

#[test]
fn different_target_sets_work_equally() {
    for target_set in [0usize, 17, 33, 62] {
        let params = ChannelParams {
            target_set,
            ..ChannelParams::paper_alg1_default()
        };
        let message = vec![true, false, true, true];
        let run = CovertConfig {
            platform: Platform::e5_2690(),
            params,
            variant: Variant::SharedMemory,
            sharing: Sharing::HyperThreaded,
            message: message.clone(),
            seed: 6,
        }
        .run()
        .unwrap();
        let bits = decode::bits_by_window(
            &run.samples,
            params.ts,
            run.hit_threshold,
            BitConvention::HitIsOne,
        );
        assert_eq!(
            &bits[..4],
            &message[..],
            "channel must work on set {target_set}"
        );
    }
}

#[test]
fn benign_noise_kills_time_sliced_alg2() {
    // §V-B: the paper could not observe time-sliced Algorithm 2 —
    // any other process running during the large Tr pollutes the
    // target set. With a benign co-runner in the slice rotation, the
    // receiver's percent-of-ones stops depending on the sender's bit.
    use lru_leak::lru_channel::covert::percent_ones_with_noise;
    let platform = Platform::e5_2690();
    let tr = 100_000_000;
    let params = ChannelParams {
        d: 8,
        target_set: 0,
        ts: tr,
        tr,
    };
    let p0 =
        percent_ones_with_noise(platform, params, Variant::NoSharedMemory, false, 60, 8).unwrap();
    let p1 =
        percent_ones_with_noise(platform, params, Variant::NoSharedMemory, true, 60, 8).unwrap();
    // Both polluted toward "miss": the gap collapses.
    assert!(
        (p1 - p0).abs() < 0.15,
        "noise should collapse the Alg2 time-sliced gap, got p0={p0:.2} p1={p1:.2}"
    );
    assert!(
        p0 > 0.1,
        "noise pollutes the set even when the sender idles, got {p0:.2}"
    );
}

#[test]
fn alg1_is_robust_across_seeds() {
    // The headline configuration must not depend on a lucky seed:
    // an 8-bit pattern decodes exactly for 20 different seeds.
    let message = vec![true, false, true, true, false, false, true, false];
    for seed in 100..120u64 {
        let params = ChannelParams::paper_alg1_default();
        let run = CovertConfig {
            platform: Platform::e5_2690(),
            params,
            variant: Variant::SharedMemory,
            sharing: Sharing::HyperThreaded,
            message: message.clone(),
            seed,
        }
        .run()
        .unwrap();
        let bits = decode::bits_by_window(
            &run.samples,
            params.ts,
            run.hit_threshold,
            BitConvention::HitIsOne,
        );
        assert_eq!(&bits[..message.len()], &message[..], "seed {seed} failed");
    }
}
