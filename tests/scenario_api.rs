//! Integration tests of the unified scenario surface: the builder's
//! validation, lossless serialization, registry completeness, and
//! the CLI contract (deterministic JSON, registry-equivalent text).

use lru_leak::lru_channel::params::ParamError;
use lru_leak::scenario::registry::{self, RunOpts};
use lru_leak::scenario::spec::{ExperimentKind, MessageSource, PlatformId, Scenario};
use lru_leak::scenario::{ScenarioError, Value};

/// Every paper-artifact bench target in `crates/bench/benches/`
/// (`micro` and `bench_perf_smoke` measure the library itself, not a
/// paper artifact, and are deliberately absent).
const BENCH_TARGETS: [&str; 26] = [
    "fig3_pointer_chase",
    "fig4_error_rates",
    "fig5_traces",
    "fig6_timesliced",
    "fig7_amd_traces",
    "fig8_amd_timesliced",
    "fig9_policy_perf",
    "fig11_pl_cache",
    "fig13_rdtscp",
    "fig14_e3_traces",
    "fig15_e3_timesliced",
    "table1_plru_eviction",
    "table2_latencies",
    "table3_platforms",
    "table4_rates",
    "table5_encoding",
    "table6_sender_miss",
    "table7_spectre_miss",
    "ablation_defenses",
    "ablation_multiset",
    "ablation_prefetcher",
    "ablation_noise_ber",
    "ablation_noise_capacity",
    "ablation_noise_grid",
    "l2_lru_channel",
    "l2_inclusion_victim",
];

#[test]
fn registry_resolves_every_bench_artifact() {
    for bench in BENCH_TARGETS {
        let artifact = registry::get(bench)
            .unwrap_or_else(|| panic!("bench target {bench} has no registry artifact"));
        assert_eq!(artifact.bench, bench);
        // The short ID resolves to the same artifact.
        assert!(std::ptr::eq(registry::get(artifact.id).unwrap(), artifact));
        // And its grid is non-empty with pre-validated scenarios.
        let grid = artifact.scenarios(&RunOpts {
            trials: Some(2),
            ..RunOpts::default()
        });
        assert!(!grid.is_empty(), "{bench} grid is empty");
    }
    assert_eq!(
        registry::ids().len(),
        BENCH_TARGETS.len(),
        "registry and bench-target list must stay in sync"
    );
}

#[test]
fn builder_rejects_geometry_incompatible_params_via_param_error() {
    // d beyond the 8 ways of every simulated L1.
    let err = Scenario::builder().d(9).build().unwrap_err();
    assert!(matches!(
        err,
        ScenarioError::Param(ParamError::BadD { d: 9, ways: 8 })
    ));
    // Set index beyond the 64 sets.
    let err = Scenario::builder()
        .platform(PlatformId::Epyc7571)
        .target_set(1_000)
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        ScenarioError::Param(ParamError::BadTargetSet {
            set: 1_000,
            num_sets: 64
        })
    ));
    // Receiver period longer than the sender period.
    let err = Scenario::builder().ts(500).tr(600).build().unwrap_err();
    assert!(matches!(
        err,
        ScenarioError::Param(ParamError::BadTiming { ts: 500, tr: 600 })
    ));
}

#[test]
fn scenarios_round_trip_losslessly_through_json() {
    // Every scenario of every registered grid survives
    // serialize → parse → revalidate, and re-serializes to the
    // same bytes.
    let opts = RunOpts {
        trials: Some(2),
        ..RunOpts::default()
    };
    for id in registry::ids() {
        for sc in registry::get(id).unwrap().scenarios(&opts) {
            let text = sc.to_json().to_string();
            let back = Scenario::from_json_str(&text)
                .unwrap_or_else(|e| panic!("{id}: {e}\nscenario: {text}"));
            assert_eq!(back, sc, "{id} round trip");
            assert_eq!(back.to_json().to_string(), text, "{id} fixed point");
        }
    }
}

// ---- The noise axis: JSON edge cases and the backward-
// ---- compatibility pin ----

/// The exact bytes `Scenario::builder().build().to_json()` produced
/// *before* the noise subsystem existed. Default-noise scenarios
/// must keep encoding to these bytes forever — the noise axis is
/// omitted at its default, not serialized as a new field.
const PRE_NOISE_DEFAULT_JSON: &str = r#"{"platform":"e5-2690","policy":"tree-plru","variant":"alg1-shared-memory","sharing":"hyper-threaded","defense":"none","workload":"idle","params":{"d":8,"target_set":0,"ts":6000,"tr":600},"message":{"alternating":20},"kind":{"covert":{}},"trials":1,"seed":298501349}"#;

/// Same pin for a registry grid cell (the first fig6 scenario).
const PRE_NOISE_FIG6_CELL_JSON: &str = r#"{"platform":"e5-2690","policy":"tree-plru","variant":"alg1-shared-memory","sharing":"time-sliced","defense":"none","workload":"idle","params":{"d":1,"target_set":0,"ts":50000000,"tr":50000000},"message":{"constant":{"bit":false,"bits":1}},"kind":{"percent-ones":{"samples":150}},"trials":1,"seed":321926244}"#;

#[test]
fn default_noise_scenarios_keep_their_pre_noise_encoding() {
    let s = Scenario::builder().build().unwrap();
    assert_eq!(s.to_json().to_string(), PRE_NOISE_DEFAULT_JSON);
    // And the pre-noise bytes parse back to the same scenario.
    assert_eq!(Scenario::from_json_str(PRE_NOISE_DEFAULT_JSON).unwrap(), s);

    let fig6 = registry::get("fig6")
        .unwrap()
        .scenarios(&RunOpts::default());
    assert_eq!(fig6[0].to_json().to_string(), PRE_NOISE_FIG6_CELL_JSON);
    assert_eq!(
        Scenario::from_json_str(PRE_NOISE_FIG6_CELL_JSON).unwrap(),
        fig6[0]
    );
}

#[test]
fn unknown_noise_models_are_rejected_with_a_clear_error() {
    for noise in [
        r#""thermal""#,
        r#"{"thermal":{"degrees":451}}"#,
        r#"{"bernoulli":{"p":0.5,"lines":64},"extra":{}}"#,
        "42",
    ] {
        let text = PRE_NOISE_DEFAULT_JSON
            .replace(r#","params""#, &format!(r#","noise":{noise},"params""#));
        let err = Scenario::from_json_str(&text).unwrap_err();
        let ScenarioError::Parse(msg) = &err else {
            panic!("noise={noise}: expected a parse error, got {err:?}");
        };
        assert!(
            msg.contains("noise"),
            "noise={noise}: error should name the noise field, got {msg:?}"
        );
    }
    // Unknown model names list the valid ones.
    let text =
        PRE_NOISE_DEFAULT_JSON.replace(r#","params""#, r#","noise":{"thermal":{}},"params""#);
    let msg = Scenario::from_json_str(&text).unwrap_err().to_string();
    assert!(
        msg.contains("random-eviction") && msg.contains("bernoulli"),
        "error should list the valid models, got {msg:?}"
    );
}

#[test]
fn noise_axes_round_trip_losslessly() {
    use lru_leak::scenario::NoiseModel;
    for noise in [
        NoiseModel::RandomEviction {
            lines: 512,
            gap_cycles: 75,
        },
        NoiseModel::PeriodicBurst {
            period_cycles: 3_700,
            burst_lines: 128,
        },
        NoiseModel::Bernoulli { p: 0.45, lines: 4 },
    ] {
        let s = Scenario::builder()
            .noise(noise)
            .message(MessageSource::Random {
                bits: 16,
                repeats: 1,
            })
            .build()
            .unwrap();
        let text = s.to_json().to_string();
        assert!(text.contains("\"noise\""), "non-default noise serializes");
        let back = Scenario::from_json_str(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json().to_string(), text, "fixed point");
    }
}

#[test]
fn noise_validation_rejects_degenerate_and_misplaced_models() {
    use lru_leak::scenario::NoiseModel;
    // Bad parameters surface as incompatible-scenario errors.
    let err = Scenario::builder()
        .noise(NoiseModel::Bernoulli { p: 2.0, lines: 4 })
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::Incompatible(_)), "{err}");
    // Kinds outside the scheduled channel reject the axis.
    let err = Scenario::builder()
        .noise(NoiseModel::Bernoulli { p: 0.5, lines: 4 })
        .kind(ExperimentKind::PlatformSpec)
        .build()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::Incompatible(_)), "{err}");
}

#[test]
fn to_json_full_spells_out_the_default_noise_axis() {
    let s = Scenario::builder().build().unwrap();
    let full = s.to_json_full();
    assert_eq!(
        full.get("noise").and_then(Value::as_str),
        Some("none"),
        "to_json_full must not hide the default axis"
    );
    // Explicit "none" parses back to the same scenario, whose
    // canonical encoding is still the pre-noise bytes.
    let back = Scenario::from_json(&full).unwrap();
    assert_eq!(back, s);
    assert_eq!(back.to_json().to_string(), PRE_NOISE_DEFAULT_JSON);
}

#[test]
fn cli_json_is_bit_identical_across_runs() {
    let args: Vec<String> = ["run", "table3", "--json", "--seed", "7"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let first = lru_leak_cli::run_cli(&args).expect("CLI run succeeds");
    let second = lru_leak_cli::run_cli(&args).expect("CLI run succeeds");
    assert_eq!(first, second, "JSON output must be byte-identical");
    let parsed = Value::parse(first.trim()).expect("CLI emits valid JSON");
    assert_eq!(parsed.get("id").and_then(Value::as_str), Some("table3"));
    assert_eq!(parsed.get("seed").and_then(Value::as_u64), Some(7));
    assert!(parsed.get("scenarios").and_then(Value::as_arr).is_some());
}

#[test]
fn cli_text_matches_the_registry_report() {
    let report = registry::get("table3").unwrap().run(&RunOpts::default());
    let args: Vec<String> = ["run", "table3"].iter().map(|s| s.to_string()).collect();
    let cli = lru_leak_cli::run_cli(&args).unwrap();
    assert_eq!(cli, report.text, "CLI `run` must print the bench text");
}

#[test]
fn cli_adhoc_runs_a_serialized_scenario_deterministically() {
    let sc = Scenario::builder()
        .kind(ExperimentKind::PlruEviction {
            sequence: lru_leak::scenario::spec::SequenceId::Seq1,
            init: lru_leak::scenario::spec::InitId::Random,
            iterations: 8,
            trials: 200,
        })
        .message(MessageSource::Alternating { bits: 1 })
        .seed(11)
        .build()
        .unwrap();
    let args: Vec<String> = ["adhoc", &sc.to_json().to_string(), "--json"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let first = lru_leak_cli::run_cli(&args).unwrap();
    let second = lru_leak_cli::run_cli(&args).unwrap();
    assert_eq!(first, second);
    let parsed = Value::parse(first.trim()).unwrap();
    let steady = parsed
        .get("outcome")
        .and_then(|o| o.get("steady_state"))
        .and_then(Value::as_f64)
        .expect("outcome carries the eviction curve");
    assert!(
        steady > 0.9,
        "Tree-PLRU Seq1 reaches eviction, got {steady}"
    );
}

// ---- CLI robustness: bad input must exit non-zero with a message,
// ---- never panic ----

fn cli(args: &[&str]) -> Result<String, lru_leak_cli::CliError> {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    lru_leak_cli::run_cli(&args)
}

#[test]
fn unknown_artifact_ids_exit_nonzero_with_a_message() {
    for cmd in ["run", "show"] {
        let err = cli(&[cmd, "fig99"]).unwrap_err();
        assert_eq!(err.code, 1, "{cmd} fig99 must exit 1");
        assert!(
            err.message.contains("fig99") && err.message.contains("list"),
            "{cmd}: message should name the artifact and point at `list`, got {:?}",
            err.message
        );
    }
}

#[test]
fn malformed_adhoc_json_exits_nonzero_with_a_message() {
    // Truncated JSON, valid JSON of the wrong shape, an unknown
    // enum value, a geometry violation, and a missing @file: every
    // one is a clean error, not a panic.
    for (bad, needle) in [
        (r#"{"platform":"#, "cannot parse"),
        ("[1,2,3]", "platform"),
        (r#"{"platform":"z80"}"#, "platform"),
        ("@/no/such/file.json", "cannot read"),
    ] {
        let err = cli(&["adhoc", bad, "--json"]).unwrap_err();
        assert_eq!(err.code, 1, "adhoc {bad:?} must exit 1");
        assert!(
            err.message.contains(needle),
            "adhoc {bad:?}: expected {needle:?} in {:?}",
            err.message
        );
    }
    // A structurally valid scenario that violates cache geometry.
    let mut sc = Scenario::builder()
        .message(MessageSource::Alternating { bits: 4 })
        .build()
        .unwrap();
    sc.params.d = 9;
    let err = cli(&["adhoc", &sc.to_json().to_string()]).unwrap_err();
    assert_eq!(err.code, 1);
    assert!(err.message.contains('d'), "got {:?}", err.message);
}

#[test]
fn run_all_rejects_bad_usage() {
    let err = cli(&["run-all", "fig5"]).unwrap_err();
    assert_eq!(
        err.code, 2,
        "run-all with a positional arg is a usage error"
    );
    let err = cli(&["run-all", "--frobnicate"]).unwrap_err();
    assert_eq!(err.code, 2);
    let err = cli(&["run-all", "--summary"]).unwrap_err();
    assert_eq!(err.code, 2, "--summary is adhoc-only");
    let err = cli(&["run", "fig5", "--summary"]).unwrap_err();
    assert_eq!(err.code, 2, "--summary is adhoc-only");
    let err = cli(&["show", "fig5", "--summary"]).unwrap_err();
    assert_eq!(err.code, 2, "--summary is adhoc-only");
    let err = cli(&["show", "fig5", "--progress"]).unwrap_err();
    assert_eq!(err.code, 2, "show has nothing to report progress on");
}

#[test]
fn run_all_executes_every_artifact_in_one_batch() {
    let out = cli(&["run-all", "--trials", "1", "--json", "--seed", "3"]).unwrap();
    let v = Value::parse(out.trim()).expect("run-all emits valid JSON");
    assert_eq!(v.get("command").and_then(Value::as_str), Some("run-all"));
    assert_eq!(v.get("seed").and_then(Value::as_u64), Some(3));
    let arts = v.get("artifacts").and_then(Value::as_arr).unwrap();
    assert_eq!(
        arts.len(),
        registry::ids().len(),
        "run-all must cover the whole registry"
    );
    for (artifact, id) in arts.iter().zip(registry::ids()) {
        assert_eq!(artifact.get("id").and_then(Value::as_str), Some(id));
        assert!(artifact.get("scenarios").is_some(), "{id} carries its grid");
    }
    // The summary block reports the batch and per-artifact wall
    // clocks: one timing entry per artifact, in registry order.
    assert!(v.get("wall_millis").and_then(Value::as_u64).is_some());
    let timings = v.get("timings").and_then(Value::as_arr).unwrap();
    assert_eq!(timings.len(), registry::ids().len());
    for (t, id) in timings.iter().zip(registry::ids()) {
        assert_eq!(t.get("id").and_then(Value::as_str), Some(id));
        assert!(t.get("millis").and_then(Value::as_u64).is_some());
        assert_eq!(t.get("status").and_then(Value::as_str), Some("ok"));
    }
}

#[test]
fn run_all_csv_dir_writes_one_csv_per_artifact() {
    let dir = std::env::temp_dir().join(format!("lru_leak_csv_{}", std::process::id()));
    let dir_s = dir.to_str().unwrap().to_string();
    let out = cli(&[
        "run-all",
        "--trials",
        "1",
        "--seed",
        "3",
        "--csv-dir",
        &dir_s,
    ])
    .unwrap();
    assert!(
        out.contains("run-all:"),
        "stdout keeps the text report alongside the CSV export"
    );
    for id in registry::ids() {
        let path = dir.join(format!("{id}.csv"));
        let csv = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{id}.csv must be written: {e}"));
        let mut lines = csv.lines();
        let headline = lines.next().unwrap_or_default();
        assert!(
            headline.starts_with("artifact"),
            "{id}.csv header row, got {headline:?}"
        );
        // Every data row is the artifact's and has the header's
        // column count (flattening is rectangular).
        let cols = headline.split(',').count();
        for line in lines {
            assert!(line.starts_with(id), "{id}.csv row {line:?}");
            // Quoted cells may embed commas; a simple count is only
            // valid for rows without quotes.
            if !line.contains('"') {
                assert_eq!(line.split(',').count(), cols, "{id}.csv row {line:?}");
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn progress_goes_to_the_sink_not_stdout() {
    use std::sync::Mutex;
    let lines = Mutex::new(Vec::new());
    let sink = |line: &str| lines.lock().unwrap().push(line.to_string());
    let args: Vec<String> = ["run", "table3", "--progress"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let out = lru_leak_cli::run_cli_with(&args, &sink).unwrap();
    let progress = lines.into_inner().unwrap();
    assert!(
        progress
            .iter()
            .any(|l| l.contains("table3") && l.contains("scenarios")),
        "expected table3 progress lines, got {progress:?}"
    );
    // stdout is the same bytes as a run without --progress.
    let plain = cli(&["run", "table3"]).unwrap();
    assert_eq!(out, plain, "--progress must not change stdout");
}

#[test]
fn adhoc_summary_streams_a_constant_memory_aggregate() {
    let sc = Scenario::builder()
        .kind(ExperimentKind::PlruEviction {
            sequence: lru_leak::scenario::spec::SequenceId::Seq1,
            init: lru_leak::scenario::spec::InitId::Random,
            iterations: 2,
            trials: 1,
        })
        .message(MessageSource::Alternating { bits: 1 })
        .trials(300)
        .seed(21)
        .build()
        .unwrap();
    let out = cli(&["adhoc", &sc.to_json().to_string(), "--summary", "--json"]).unwrap();
    let v = Value::parse(out.trim()).unwrap();
    let outcome = v.get("outcome").unwrap();
    assert_eq!(
        outcome.get("aggregate").and_then(Value::as_str),
        Some("stats"),
        "summary must be the streaming aggregate, got {outcome}"
    );
    let stat = outcome
        .get("keys")
        .and_then(|k| k.get("steady_state"))
        .expect("steady_state stats");
    assert_eq!(stat.get("count").and_then(Value::as_u64), Some(300));
}

#[test]
fn trials_override_scales_grids() {
    let small = registry::get("fig6").unwrap().scenarios(&RunOpts {
        trials: Some(3),
        ..RunOpts::default()
    });
    for sc in &small {
        assert_eq!(sc.kind, ExperimentKind::PercentOnes { samples: 3 });
    }
}
