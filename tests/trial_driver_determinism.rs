//! The parallel trial driver must be bit-identical to sequential
//! execution: trial results depend only on the trial index (and the
//! seed derived from it), never on scheduling, worker count or
//! completion order.

use lru_leak::lru_channel::covert::{percent_ones_grid, GridPoint, Variant};
use lru_leak::lru_channel::params::{ChannelParams, Platform};
use lru_leak::lru_channel::trials::{
    derive_seed, fold_chunk_size, run_trials, run_trials_fold_on, run_trials_on,
};

/// A small but real grid: every point runs the full time-sliced
/// channel simulation (machine, scheduler, probe).
fn small_grid() -> Vec<GridPoint> {
    let mut points = Vec::new();
    for bit in [false, true] {
        for d in [4usize, 8] {
            let tr = 2_000_000u64;
            points.push(GridPoint {
                params: ChannelParams {
                    d,
                    target_set: 0,
                    ts: tr,
                    tr,
                },
                bit,
                seed: derive_seed(0xf1e6, (d as u64) << 1 | u64::from(bit)),
            });
        }
    }
    points
}

#[test]
fn parallel_grid_matches_sequential_grid() {
    let platform = Platform::e5_2690();
    let points = small_grid();
    // Sequential oracle: map the same closure in index order on one
    // thread.
    let seq: Vec<f64> = points
        .iter()
        .map(|p| {
            lru_leak::lru_channel::covert::percent_ones(
                platform,
                p.params,
                Variant::SharedMemory,
                p.bit,
                12,
                p.seed,
            )
            .unwrap()
        })
        .collect();
    let par = percent_ones_grid(platform, Variant::SharedMemory, &points, 12).unwrap();
    assert_eq!(
        seq, par,
        "parallel grid must be bit-identical to sequential"
    );
}

#[test]
fn worker_count_does_not_change_results() {
    let f = |i: usize| {
        // A deterministic but non-trivial per-trial computation.
        let mut acc = derive_seed(0xabc, i as u64);
        for _ in 0..1000 {
            acc = acc.rotate_left(7) ^ acc.wrapping_mul(0x2545_f491_4f6c_dd1d);
        }
        acc
    };
    let one = run_trials_on(1, 64, f);
    for workers in [2, 3, 4, 8, 64] {
        assert_eq!(run_trials_on(workers, 64, f), one, "workers={workers}");
    }
}

#[test]
fn default_driver_matches_sequential() {
    let f = |i: usize| derive_seed(7, i as u64) % 1000;
    assert_eq!(run_trials(100, f), run_trials_on(1, 100, f));
}

#[test]
fn per_trial_seeds_are_unique() {
    let mut seen = std::collections::HashSet::new();
    for i in 0..10_000u64 {
        assert!(seen.insert(derive_seed(0x1234, i)), "duplicate seed at {i}");
    }
}

#[test]
fn fold_pipeline_is_bit_identical_for_floating_point_reductions() {
    // A floating-point mean-of-error-rates shape: (a + b) + c differs
    // from a + (b + c) in the last ulp, so only a fixed combination
    // order reproduces. The fold driver pins chunk layout and merge
    // order as functions of n alone.
    let mean_on = |workers: usize, n: usize| {
        let sum = run_trials_fold_on(
            workers,
            n,
            |i| 1.0 / (derive_seed(0x44, i as u64) % 997 + 1) as f64,
            || 0.0f64,
            |acc, _i, x| *acc += x,
            |acc, part| *acc += part,
        );
        sum / n as f64
    };
    for n in [1usize, 63, 64, 65, 4096, 10_007] {
        let seq = mean_on(1, n);
        for workers in [2, 4, 8] {
            assert_eq!(
                seq.to_bits(),
                mean_on(workers, n).to_bits(),
                "n={n} workers={workers}"
            );
        }
    }
}

#[test]
fn fold_pipeline_matches_a_plain_sequential_fold_over_collected_results() {
    // Integer reduction: the chunked fold must agree exactly with
    // folding the collected per-trial results in index order.
    let trial = |i: usize| derive_seed(9, i as u64) % 100_000;
    let n = 5_000;
    let collected: u64 = run_trials_on(1, n, trial).into_iter().sum();
    let streamed = run_trials_fold_on(
        4,
        n,
        trial,
        || 0u64,
        |acc, _i, v| *acc += v,
        |acc, part| *acc += part,
    );
    assert_eq!(collected, streamed);
}

#[test]
fn chunk_layout_is_a_function_of_n_alone() {
    // The invariant the worker-count determinism rests on: chunk
    // boundaries never depend on how many threads execute the sweep.
    for n in [0usize, 1, 100, 40_000, 1_000_000] {
        let c = fold_chunk_size(n);
        assert!((1..=64).contains(&c), "chunk {c} out of range for n={n}");
    }
    assert_eq!(fold_chunk_size(1_000_000), 64);
}
