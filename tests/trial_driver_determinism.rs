//! The parallel trial driver must be bit-identical to sequential
//! execution: trial results depend only on the trial index (and the
//! seed derived from it), never on scheduling, worker count or
//! completion order.

use lru_leak::lru_channel::covert::{percent_ones_grid, GridPoint, Variant};
use lru_leak::lru_channel::params::{ChannelParams, Platform};
use lru_leak::lru_channel::trials::{derive_seed, run_trials, run_trials_on};

/// A small but real grid: every point runs the full time-sliced
/// channel simulation (machine, scheduler, probe).
fn small_grid() -> Vec<GridPoint> {
    let mut points = Vec::new();
    for bit in [false, true] {
        for d in [4usize, 8] {
            let tr = 2_000_000u64;
            points.push(GridPoint {
                params: ChannelParams {
                    d,
                    target_set: 0,
                    ts: tr,
                    tr,
                },
                bit,
                seed: derive_seed(0xf1e6, (d as u64) << 1 | u64::from(bit)),
            });
        }
    }
    points
}

#[test]
fn parallel_grid_matches_sequential_grid() {
    let platform = Platform::e5_2690();
    let points = small_grid();
    // Sequential oracle: map the same closure in index order on one
    // thread.
    let seq: Vec<f64> = points
        .iter()
        .map(|p| {
            lru_leak::lru_channel::covert::percent_ones(
                platform,
                p.params,
                Variant::SharedMemory,
                p.bit,
                12,
                p.seed,
            )
            .unwrap()
        })
        .collect();
    let par = percent_ones_grid(platform, Variant::SharedMemory, &points, 12).unwrap();
    assert_eq!(
        seq, par,
        "parallel grid must be bit-identical to sequential"
    );
}

#[test]
fn worker_count_does_not_change_results() {
    let f = |i: usize| {
        // A deterministic but non-trivial per-trial computation.
        let mut acc = derive_seed(0xabc, i as u64);
        for _ in 0..1000 {
            acc = acc.rotate_left(7) ^ acc.wrapping_mul(0x2545_f491_4f6c_dd1d);
        }
        acc
    };
    let one = run_trials_on(1, 64, f);
    for workers in [2, 3, 4, 8, 64] {
        assert_eq!(run_trials_on(workers, 64, f), one, "workers={workers}");
    }
}

#[test]
fn default_driver_matches_sequential() {
    let f = |i: usize| derive_seed(7, i as u64) % 1000;
    assert_eq!(run_trials(100, f), run_trials_on(1, 100, f));
}

#[test]
fn per_trial_seeds_are_unique() {
    let mut seen = std::collections::HashSet::new();
    for i in 0..10_000u64 {
        assert!(seen.insert(derive_seed(0x1234, i)), "duplicate seed at {i}");
    }
}
