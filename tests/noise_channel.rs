//! Integration tests of the noise-injection subsystem: interference
//! must actually disturb the channel, stay fully deterministic, and
//! surface through the scenario/registry/CLI layers.

use lru_leak::lru_channel::covert::{percent_ones_noisy, CovertConfig, Sharing, Variant};
use lru_leak::lru_channel::decode::{self, BitConvention};
use lru_leak::lru_channel::edit_distance::error_rate;
use lru_leak::lru_channel::noise::NoiseModel;
use lru_leak::lru_channel::params::{ChannelParams, Platform};
use lru_leak::scenario::registry;
use lru_leak::scenario::spec::{ExperimentKind, MessageSource, Scenario};
use lru_leak::scenario::Value;

use cache_sim::replacement::PolicyKind;
use exec_sim::machine::Machine;

fn alg2_error(noise: NoiseModel, seed: u64) -> f64 {
    let msg: Vec<bool> = (0..24).map(|i| i % 2 == 1).collect();
    let params = ChannelParams::paper_alg2_default();
    let cfg = CovertConfig {
        platform: Platform::e5_2690(),
        params,
        variant: Variant::NoSharedMemory,
        sharing: Sharing::HyperThreaded,
        message: msg.clone(),
        seed,
    };
    let mut machine = Machine::new(cfg.platform.arch, PolicyKind::TreePlru, seed);
    let run = cfg.run_on_with_noise(&mut machine, noise).unwrap();
    let bits = decode::bits_by_window_ratio(
        &run.samples,
        params.ts,
        run.hit_threshold,
        BitConvention::MissIsOne,
        0.25,
    );
    error_rate(&msg, &bits[..msg.len().min(bits.len())])
}

#[test]
fn heavy_interference_degrades_algorithm_2() {
    let clean = alg2_error(NoiseModel::None, 1);
    let noisy = alg2_error(
        NoiseModel::PeriodicBurst {
            period_cycles: 2_400,
            burst_lines: 128,
        },
        1,
    );
    assert!(
        noisy > clean + 0.1,
        "dense bursts must hurt the whole-set readout (clean {clean:.3}, noisy {noisy:.3})"
    );
}

#[test]
fn noise_none_is_byte_identical_to_the_two_thread_path() {
    let msg: Vec<bool> = (0..12).map(|i| i % 2 == 1).collect();
    let cfg = CovertConfig {
        platform: Platform::e5_2690(),
        params: ChannelParams::paper_alg1_default(),
        variant: Variant::SharedMemory,
        sharing: Sharing::HyperThreaded,
        message: msg,
        seed: 7,
    };
    let mut m1 = Machine::new(cfg.platform.arch, PolicyKind::TreePlru, 7);
    let mut m2 = Machine::new(cfg.platform.arch, PolicyKind::TreePlru, 7);
    let plain = cfg.run_on(&mut m1).unwrap();
    let with_none = cfg.run_on_with_noise(&mut m2, NoiseModel::None).unwrap();
    assert_eq!(plain.samples, with_none.samples);
    assert_eq!(plain.hit_threshold, with_none.hit_threshold);
}

#[test]
fn noisy_runs_are_deterministic_per_seed() {
    let noise = NoiseModel::RandomEviction {
        lines: 512,
        gap_cycles: 40,
    };
    assert_eq!(alg2_error(noise, 3), alg2_error(noise, 3));
    // And the interference stream really depends on the seed: the
    // receiver's raw sample trace must differ between seeds (the
    // decoded error rate may coincidentally agree).
    let trace = |seed| {
        let cfg = CovertConfig {
            platform: Platform::e5_2690(),
            params: ChannelParams::paper_alg2_default(),
            variant: Variant::NoSharedMemory,
            sharing: Sharing::HyperThreaded,
            message: vec![true; 12],
            seed,
        };
        let mut m = Machine::new(cfg.platform.arch, PolicyKind::TreePlru, seed);
        cfg.run_on_with_noise(&mut m, noise)
            .unwrap()
            .samples
            .iter()
            .map(|s| s.measured)
            .collect::<Vec<_>>()
    };
    assert_ne!(trace(3), trace(4));
}

#[test]
fn percent_ones_noisy_none_delegates_and_noise_perturbs() {
    use lru_leak::lru_channel::covert::percent_ones;
    let platform = Platform::e5_2690();
    let params = ChannelParams {
        d: 8,
        target_set: 0,
        ts: 100_000_000,
        tr: 100_000_000,
    };
    let clean = percent_ones(platform, params, Variant::SharedMemory, true, 12, 5).unwrap();
    let delegated = percent_ones_noisy(
        platform,
        params,
        Variant::SharedMemory,
        true,
        12,
        NoiseModel::None,
        5,
    )
    .unwrap();
    assert_eq!(clean, delegated, "None must take the exact clean path");
    let noisy = percent_ones_noisy(
        platform,
        params,
        Variant::SharedMemory,
        true,
        12,
        NoiseModel::RandomEviction {
            lines: 512,
            gap_cycles: 40,
        },
        5,
    )
    .unwrap();
    assert_eq!(
        noisy,
        percent_ones_noisy(
            platform,
            params,
            Variant::SharedMemory,
            true,
            12,
            NoiseModel::RandomEviction {
                lines: 512,
                gap_cycles: 40,
            },
            5,
        )
        .unwrap(),
        "noisy percent-ones must be deterministic"
    );
}

#[test]
fn noise_artifacts_are_registered_with_valid_grids() {
    for id in ["ablation_noise_ber", "ablation_noise_capacity"] {
        let a = registry::get(id).unwrap_or_else(|| panic!("{id} missing from registry"));
        let grid = a.scenarios(&registry::RunOpts {
            trials: Some(1),
            ..registry::RunOpts::default()
        });
        assert!(!grid.is_empty());
        // Every cell round-trips (the noise axis serializes) and at
        // least one cell is genuinely noisy.
        for sc in &grid {
            let back = Scenario::from_json_str(&sc.to_json().to_string()).unwrap();
            assert_eq!(&back, sc);
        }
        assert!(
            grid.iter().any(|sc| !sc.noise.is_none()),
            "{id} must sweep a noise axis"
        );
        assert!(
            grid.iter().any(|sc| sc.noise.is_none()),
            "{id} must keep a clean baseline"
        );
    }
}

#[test]
fn noisy_covert_summary_streams_the_capacity_estimate() {
    let sc = Scenario::builder()
        .noise(NoiseModel::Bernoulli { p: 0.5, lines: 4 })
        .message(MessageSource::Random {
            bits: 12,
            repeats: 1,
        })
        .trials(6)
        .seed(9)
        .build()
        .unwrap();
    assert_eq!(sc.kind, ExperimentKind::Covert);
    let summary = sc.run_summary();
    assert_eq!(
        summary.get("aggregate").and_then(Value::as_str),
        Some("capacity"),
        "noisy covert scenarios default to the capacity aggregate, got {summary}"
    );
    let cap = summary
        .get("capacity_bits_per_use")
        .and_then(Value::as_f64)
        .expect("capacity estimate present");
    assert!((0.0..=1.0).contains(&cap), "capacity {cap} out of range");
    assert_eq!(
        summary
            .get("error_rate")
            .and_then(|e| e.get("count"))
            .and_then(Value::as_u64),
        Some(6),
        "all trials fold into the estimate"
    );
}
