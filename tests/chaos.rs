//! Chaos-proxy regression suite: the NDJSON protocol under a hostile
//! network, pinned end to end.
//!
//! Every test routes real client connections through
//! [`lru_leak_server::chaos::ChaosProxy`] — a seed-deterministic
//! in-process TCP proxy that splits writes at byte granularity,
//! injects delays, severs connections, and truncates response streams
//! mid-frame — and asserts the crash-safety contract:
//!
//! * **Split frames never corrupt.** The server's NDJSON reader and
//!   the client both buffer until the terminating newline, so a
//!   request or event sliced into 1–9-byte TCP segments still parses,
//!   and the response body stays byte-identical to the CLI.
//! * **Torn responses are detected, not trusted.** A response
//!   truncated mid-frame surfaces as a typed I/O error (mid-frame
//!   death or a failed [`proto::body_crc`] checksum), and the retry
//!   succeeds with the correct bytes.
//! * **Retries are idempotent.** A re-submitted request coalesces in
//!   flight or hits the shared result cache — the grid is simulated
//!   exactly once no matter how many times the network eats the
//!   answer.

use std::thread;
use std::time::Duration;

use lru_leak::scenario::Value;
use lru_leak_cli::run_cli;
use lru_leak_server::chaos::{ChaosPlan, ChaosProxy};
use lru_leak_server::{client, Server, ServerConfig, ServerHandle};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn spawn_server(
    config: ServerConfig,
) -> (
    String,
    ServerHandle,
    thread::JoinHandle<std::io::Result<lru_leak_server::ServerSummary>>,
) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("bind");
    let addr = server.local_addr().expect("local_addr").to_string();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, join)
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lru-leak-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fig5_request() -> Value {
    Value::obj()
        .with("cmd", "run")
        .with("artifact", "fig5")
        .with("trials", 2u64)
        .with("seed", 99u64)
}

fn fig5_cli_body() -> String {
    run_cli(&args(&[
        "run", "fig5", "--json", "--trials", "2", "--seed", "99",
    ]))
    .expect("cli run")
}

fn body_of(event: &Value) -> String {
    assert_eq!(
        event.get("event").and_then(Value::as_str),
        Some("result"),
        "expected a result event, got {event}"
    );
    event
        .get("body")
        .and_then(Value::as_str)
        .expect("result body")
        .to_string()
}

#[test]
fn split_writes_and_delays_never_corrupt_frames() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    // Both directions are sliced into 1–9-byte segments with small
    // jittered delays: the request line reaches the server's reader in
    // fragments, and every event line reaches the client in fragments.
    let proxy = ChaosProxy::start(
        &addr,
        ChaosPlan::seeded(7)
            .split_writes()
            .delay_up_to(Duration::from_millis(2)),
    )
    .expect("proxy");

    let reference = fig5_cli_body();
    for _ in 0..3 {
        let event = client::request(&proxy.addr(), &fig5_request(), |_| {}).expect("request");
        assert_eq!(
            body_of(&event),
            reference,
            "split frames corrupted the body"
        );
    }
    assert_eq!(proxy.connections(), 3, "every request used the proxy");

    proxy.stop();
    handle.begin_shutdown();
    let summary = join.join().unwrap().expect("server run");
    assert_eq!(summary.completed, 3);
    assert_eq!(summary.failed, 0);
}

#[test]
fn a_truncated_response_is_detected_and_the_retry_succeeds() {
    let dir = tmp_dir("truncate");
    let (addr, handle, join) = spawn_server(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    // Connection 0's response stream is cut after exactly 120 bytes —
    // enough for the `accepted` event plus a prefix of the `result`
    // frame, never its terminating newline.
    let proxy = ChaosProxy::start(&addr, ChaosPlan::seeded(11).truncate_at(0, 120)).expect("proxy");

    // A bare request sees the torn frame as a typed error, not a
    // truncated body. Deterministic: the same seed tears the same way.
    let err = client::request(&proxy.addr(), &fig5_request(), |_| {})
        .expect_err("a torn response must not parse as an answer");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
        ),
        "unexpected error kind: {err:?}"
    );

    // The retrying client re-submits on a fresh connection (index 1:
    // not truncated) and gets the right bytes.
    let policy = client::RetryPolicy::new(2, Duration::from_millis(10));
    let event = client::request_with_retry(&proxy.addr(), &fig5_request(), &policy, |_| {})
        .expect("retry after truncation");
    assert_eq!(body_of(&event), fig5_cli_body());

    // Idempotency: the first attempt's job completed server-side and
    // populated the cache; the retry re-read it instead of recomputing.
    let s = handle.summary();
    assert_eq!(s.computed_cells, 2, "the retry recomputed the grid");

    proxy.stop();
    handle.begin_shutdown();
    join.join().unwrap().expect("server run");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_dropped_connection_is_retried_transparently() {
    let dir = tmp_dir("drop");
    let (addr, handle, join) = spawn_server(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    // Connection 0 is severed before a single byte crosses.
    let proxy = ChaosProxy::start(&addr, ChaosPlan::seeded(13).drop_conn(0)).expect("proxy");

    let policy =
        client::RetryPolicy::new(3, Duration::from_millis(10)).seeded_by_request(&fig5_request());
    let event = client::request_with_retry(&proxy.addr(), &fig5_request(), &policy, |_| {})
        .expect("retry after drop");
    assert_eq!(body_of(&event), fig5_cli_body());
    assert!(
        proxy.connections() >= 2,
        "the drop should have forced at least one retry connection"
    );

    proxy.stop();
    handle.begin_shutdown();
    join.join().unwrap().expect("server run");
    let _ = std::fs::remove_dir_all(&dir);
}
