//! The streaming refactor's contract: stream-and-reduce must be
//! byte-identical to the pre-refactor buffer-then-fold path.
//!
//! `Artifact::run_buffered` / `Scenario::run_buffered` keep the old
//! semantics — run every trial sequentially, collect a `Vec`, then
//! render — as the oracle. The streamed path (chunked work-stealing
//! scheduler, in-order chunk merging) must reproduce the oracle's
//! `Report { text, metrics }` byte for byte on 1, 4 and 8 workers,
//! for every artifact in the registry.

use std::sync::{Mutex, MutexGuard};

use lru_leak::lru_channel::trials::set_worker_count;
use lru_leak::scenario::aggregate::{KeyHistogram, ScalarStats};
use lru_leak::scenario::registry::{self, RunOpts};
use lru_leak::scenario::spec::{ExperimentKind, InitId, MessageSource, Scenario, SequenceId};

/// The worker-count override is process-global; tests that flip it
/// serialize on this lock and restore the default when done.
static WORKERS: Mutex<()> = Mutex::new(());

struct WorkerGuard<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl WorkerGuard<'_> {
    fn lock() -> WorkerGuard<'static> {
        WorkerGuard(WORKERS.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        set_worker_count(0);
    }
}

#[test]
fn every_artifact_streams_bit_identical_to_the_buffered_path() {
    let _guard = WorkerGuard::lock();
    let opts = RunOpts {
        trials: Some(1),
        seed: 0x5eed_cafe,
    };
    for id in registry::ids() {
        let artifact = registry::get(id).unwrap();
        let reference = artifact.run_buffered(&opts);
        for workers in [1usize, 4, 8] {
            set_worker_count(workers);
            let streamed = artifact.run(&opts);
            assert_eq!(
                streamed.text, reference.text,
                "{id}: streamed text differs from the buffered oracle at {workers} workers"
            );
            assert_eq!(
                streamed.metrics.to_string(),
                reference.metrics.to_string(),
                "{id}: streamed metrics differ from the buffered oracle at {workers} workers"
            );
        }
    }
}

/// A cheap many-trial scenario (one PLRU eviction probe per trial).
fn plru_scenario(trials: usize) -> Scenario {
    Scenario::builder()
        .kind(ExperimentKind::PlruEviction {
            sequence: SequenceId::Seq1,
            init: InitId::Random,
            iterations: 2,
            trials: 1,
        })
        .message(MessageSource::Alternating { bits: 1 })
        .trials(trials)
        .seed(0xfeed)
        .build()
        .unwrap()
}

#[test]
fn scenario_run_matches_the_buffered_oracle_per_worker_count() {
    let _guard = WorkerGuard::lock();
    let sc = plru_scenario(97); // not a multiple of any chunk size
    let reference = sc.run_buffered();
    for workers in [1usize, 4, 8] {
        set_worker_count(workers);
        assert_eq!(
            sc.run().to_string(),
            reference.to_string(),
            "collected trials differ at {workers} workers"
        );
    }
}

#[test]
fn streaming_reducers_are_worker_count_invariant() {
    let _guard = WorkerGuard::lock();
    let sc = plru_scenario(500);
    // Non-associative floating-point state (sums) and associative
    // integer state (bins) must both reproduce exactly.
    let stats = ScalarStats::new(&["steady_state"]);
    let hist = KeyHistogram {
        key: "steady_state",
        bins: 8,
    };
    set_worker_count(1);
    let stats_seq = sc.run_reduced(&stats).to_string();
    let hist_seq = sc.run_reduced(&hist).to_string();
    let summary_seq = sc.run_summary().to_string();
    for workers in [4usize, 8] {
        set_worker_count(workers);
        assert_eq!(sc.run_reduced(&stats).to_string(), stats_seq);
        assert_eq!(sc.run_reduced(&hist).to_string(), hist_seq);
        assert_eq!(sc.run_summary().to_string(), summary_seq);
    }
}

#[test]
fn summary_aggregate_agrees_with_the_buffered_trials() {
    let _guard = WorkerGuard::lock();
    let sc = plru_scenario(64);
    let buffered = sc.run_buffered();
    let trials = buffered.as_arr().expect("trials array");
    let count = trials
        .iter()
        .filter(|t| t.get("steady_state").is_some())
        .count() as u64;
    let max = trials
        .iter()
        .filter_map(|t| {
            t.get("steady_state")
                .and_then(lru_leak::scenario::Value::as_f64)
        })
        .fold(f64::NEG_INFINITY, f64::max);
    let summary = sc.run_summary();
    let stat = summary
        .get("keys")
        .and_then(|k| k.get("steady_state"))
        .expect("summary stat");
    assert_eq!(
        stat.get("count")
            .and_then(lru_leak::scenario::Value::as_u64),
        Some(count)
    );
    assert_eq!(
        stat.get("max").and_then(lru_leak::scenario::Value::as_f64),
        Some(max)
    );
}
