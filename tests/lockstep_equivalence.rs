//! The lockstep batching contract: routing eligible covert trials
//! through [`cache_sim::batch::BatchCache`] must be invisible in the
//! output.
//!
//! For every registry artifact, the report produced with lockstep
//! batching enabled (`Auto` — the default everywhere — and `Force`)
//! must reproduce the scalar path's (`Off`) `Report { text, metrics }`
//! byte for byte on 1, 4 and 8 workers. Artifacts with no eligible
//! cell route identically under every mode, so they ride along as a
//! no-regression check for free.

use lru_leak::scenario::engine::{CancelToken, Engine};
use lru_leak::scenario::registry::{self, RunOpts};
use lru_leak::scenario::{LockstepMode, Scenario};

fn report(id: &str, opts: &RunOpts, mode: LockstepMode, workers: usize) -> (String, String) {
    let artifact = registry::get(id).unwrap();
    let engine = Engine::new().with_workers(workers).with_lockstep(mode);
    let (report, _status) = engine
        .run_artifact(artifact, opts, None, &CancelToken::new())
        .unwrap();
    (report.text, report.metrics.to_string())
}

/// Artifacts whose grid contains at least one lockstep-eligible cell.
fn eligible_ids(opts: &RunOpts) -> Vec<&'static str> {
    registry::ids()
        .into_iter()
        .filter(|id| {
            registry::get(id)
                .unwrap()
                .scenarios(opts)
                .iter()
                .any(|s| s.lockstep_spec().is_ok())
        })
        .collect()
}

#[test]
fn every_eligible_artifact_is_bit_identical_across_lockstep_modes_and_workers() {
    let opts = RunOpts {
        trials: Some(1),
        seed: 0x010c_57e9,
    };
    let eligible = eligible_ids(&opts);
    assert!(
        !eligible.is_empty(),
        "registry should contain lockstep-eligible artifacts"
    );
    for id in eligible {
        let scalar = report(id, &opts, LockstepMode::Off, 1);
        for workers in [1usize, 4, 8] {
            for mode in [LockstepMode::Auto, LockstepMode::Force] {
                let batched = report(id, &opts, mode, workers);
                assert_eq!(
                    batched.0,
                    scalar.0,
                    "{id}: lockstep {m} text differs from scalar at {workers} workers",
                    m = mode.name()
                );
                assert_eq!(
                    batched.1,
                    scalar.1,
                    "{id}: lockstep {m} metrics differ from scalar at {workers} workers",
                    m = mode.name()
                );
            }
        }
    }
}

/// Multi-trial sweeps are where the batching actually kicks in (one
/// `run_batch` per scheduler chunk); pin a fig4-style cell at a trial
/// count that spans several chunks.
#[test]
fn multi_trial_covert_sweep_is_bit_identical_across_modes() {
    let scenario = Scenario::builder()
        .trials(24)
        .seed(0x0ba7_c4ed)
        .build()
        .unwrap();
    assert!(scenario.lockstep_spec().is_ok());
    let scalar = scenario
        .run_reduced_ctrl_mode(
            &lru_leak::scenario::aggregate::CollectMetrics,
            None,
            &lru_leak::scenario::engine::RunCtrl::new(),
            LockstepMode::Off,
        )
        .unwrap();
    for workers in [1usize, 4, 8] {
        let ctrl = lru_leak::scenario::engine::RunCtrl::new().with_workers(workers);
        for mode in [LockstepMode::Auto, LockstepMode::Force] {
            let batched = scenario
                .run_reduced_ctrl_mode(
                    &lru_leak::scenario::aggregate::CollectMetrics,
                    None,
                    &ctrl,
                    mode,
                )
                .unwrap();
            assert_eq!(
                batched.to_string(),
                scalar.to_string(),
                "lockstep {m} differs from scalar at {workers} workers",
                m = mode.name()
            );
        }
    }
}

/// The eligibility oracle itself: the headline covert scenario is
/// eligible, and each gating axis flips it off with the right reason.
#[test]
fn lockstep_eligibility_reasons_are_structured() {
    use lru_leak::scenario::spec::NoiseModel;
    use lru_leak::scenario::LockstepIneligible;

    let base = Scenario::builder().build().unwrap();
    assert!(base.lockstep_spec().is_ok());

    let mut time_sliced = base.clone();
    time_sliced.sharing = lru_leak::lru_channel::covert::Sharing::TimeSliced;
    assert_eq!(
        time_sliced.lockstep_spec().unwrap_err(),
        LockstepIneligible::Sharing
    );

    let mut noisy = base.clone();
    noisy.noise = NoiseModel::RandomEviction {
        lines: 64,
        gap_cycles: 500,
    };
    assert_eq!(
        noisy.lockstep_spec().unwrap_err(),
        LockstepIneligible::Noise
    );

    let mut hierarchy = base.clone();
    hierarchy.hierarchy = lru_leak::scenario::HierarchyId::BackInvalidate;
    let reason = hierarchy.lockstep_spec().unwrap_err();
    assert_eq!(
        reason,
        LockstepIneligible::Hierarchy(lru_leak::scenario::HierarchyId::BackInvalidate)
    );
    assert!(
        reason.to_string().contains("back-invalidate"),
        "the hierarchy reason must name the backend: {reason}"
    );

    // Every reason renders a structured, human-readable message.
    for reason in [
        LockstepIneligible::Kind,
        LockstepIneligible::Sharing,
        LockstepIneligible::Noise,
        LockstepIneligible::Hierarchy(lru_leak::scenario::HierarchyId::NonInclusive),
        LockstepIneligible::WayPredictor,
    ] {
        let msg = reason.to_string();
        assert!(
            msg.starts_with("scenario is not lockstep-eligible: "),
            "unexpected message shape: {msg}"
        );
    }
}
