//! Full Spectre-v1 integration across the crates: victim model from
//! `exec-sim`, primitives from `attacks`, caches from `cache-sim`.

use lru_leak::attacks::primitive::{
    DisclosurePrimitive, FlushReloadPrimitive, LruAlg1Primitive, LruAlg2Primitive,
};
use lru_leak::attacks::spectre::{decode_symbols, encode_symbols, SpectreAttack};
use lru_leak::cache_sim::prefetcher::Prefetcher;
use lru_leak::cache_sim::profiles::MicroArch;
use lru_leak::cache_sim::replacement::PolicyKind;
use lru_leak::exec_sim::machine::Machine;
use lru_leak::exec_sim::speculation::{build_victim, SpecMode};
use lru_leak::lru_channel::params::Platform;

const SECRET: &str = "open sesame 42";

fn recover_with<F, P>(build: F, seed: u64) -> String
where
    P: DisclosurePrimitive,
    F: FnOnce(
        &mut Machine,
        lru_leak::exec_sim::machine::Pid,
        lru_leak::cache_sim::addr::VirtAddr,
    ) -> P,
{
    let platform = Platform::e5_2690();
    let mut machine = Machine::new(platform.arch, PolicyKind::TreePlru, seed);
    let symbols = encode_symbols(SECRET);
    let (mut victim, off) = build_victim(&mut machine, &symbols, 8);
    let mut prim = build(&mut machine, victim.pid, victim.array2);
    let got = SpectreAttack {
        seed,
        ..SpectreAttack::default()
    }
    .recover(&mut machine, &mut victim, &mut prim, off, symbols.len());
    decode_symbols(&got)
}

#[test]
fn all_three_primitives_recover_the_secret() {
    let platform = Platform::e5_2690();
    assert_eq!(
        recover_with(
            |_m, pid, a2| FlushReloadPrimitive::new(pid, a2, platform),
            10
        ),
        SECRET
    );
    assert_eq!(
        recover_with(|m, pid, a2| LruAlg1Primitive::new(m, pid, a2, platform), 11),
        SECRET
    );
    assert_eq!(
        recover_with(|m, pid, a2| LruAlg2Primitive::new(m, pid, a2, platform), 12),
        SECRET
    );
}

#[test]
fn secret_recovery_works_on_skylake_model_too() {
    let platform = Platform::e3_1245v5();
    let mut machine = Machine::new(platform.arch, PolicyKind::TreePlru, 13);
    let symbols = encode_symbols("skl");
    let (mut victim, off) = build_victim(&mut machine, &symbols, 8);
    let mut prim = LruAlg1Primitive::new(&mut machine, victim.pid, victim.array2, platform);
    let got = SpectreAttack::default().recover(&mut machine, &mut victim, &mut prim, off, 3);
    assert_eq!(decode_symbols(&got), "skl");
}

#[test]
fn lru_attack_survives_bit_plru_l1() {
    // Table I: Bit-PLRU converges to certain eviction too, so the
    // channel works on an MRU-based L1 as well.
    let platform = Platform::e5_2690();
    let mut machine = Machine::new(platform.arch, PolicyKind::BitPlru, 14);
    let symbols = encode_symbols("mru");
    let (mut victim, off) = build_victim(&mut machine, &symbols, 8);
    let mut prim = LruAlg2Primitive::new(&mut machine, victim.pid, victim.array2, platform);
    let got = SpectreAttack {
        rounds: 9,
        ..SpectreAttack::default()
    }
    .recover(&mut machine, &mut victim, &mut prim, off, 3);
    let correct = decode_symbols(&got)
        .bytes()
        .zip("mru".bytes())
        .filter(|(a, b)| a == b)
        .count();
    assert!(
        correct >= 2,
        "Bit-PLRU recovery too weak: {:?}",
        decode_symbols(&got)
    );
}

#[test]
fn invisible_speculation_blocks_every_primitive() {
    let platform = Platform::e5_2690();
    for seed in [20u64, 21, 22] {
        let mut machine = Machine::new(platform.arch, PolicyKind::TreePlru, seed);
        let symbols = encode_symbols("xyz");
        let (mut victim, off) = build_victim(&mut machine, &symbols, 8);
        let mut prim = LruAlg1Primitive::new(&mut machine, victim.pid, victim.array2, platform);
        let got = SpectreAttack {
            mode: SpecMode::Invisible,
            seed,
            ..SpectreAttack::default()
        }
        .recover(&mut machine, &mut victim, &mut prim, off, 3);
        assert_ne!(decode_symbols(&got), "xyz");
    }
}

#[test]
fn prefetcher_noise_is_survivable_with_rounds() {
    let platform = Platform::e5_2690();
    let mut machine = Machine::new(platform.arch, PolicyKind::TreePlru, 30);
    *machine.hierarchy_mut() = MicroArch::sandy_bridge_e5_2690()
        .build_hierarchy(PolicyKind::TreePlru, 30)
        .with_prefetcher(Prefetcher::next_line());
    let symbols = encode_symbols("noisy");
    let (mut victim, off) = build_victim(&mut machine, &symbols, 8);
    let mut prim = LruAlg2Primitive::new(&mut machine, victim.pid, victim.array2, platform);
    let got = SpectreAttack {
        rounds: 11,
        seed: 30,
        ..SpectreAttack::default()
    }
    .recover(&mut machine, &mut victim, &mut prim, off, symbols.len());
    let correct = decode_symbols(&got)
        .bytes()
        .zip("noisy".bytes())
        .filter(|(a, b)| a == b)
        .count();
    assert!(
        correct >= 4,
        "Appendix-C mitigation too weak under prefetch noise: {:?}",
        decode_symbols(&got)
    );
}

#[test]
fn small_speculation_window_still_fits_the_lru_channel() {
    // §VIII: the LRU disclosure needs only the gadget's two loads.
    let platform = Platform::e5_2690();
    let mut machine = Machine::new(platform.arch, PolicyKind::TreePlru, 31);
    let symbols = encode_symbols("w");
    let (mut victim, off) = build_victim(&mut machine, &symbols, 2); // minimal window
    let mut prim = LruAlg1Primitive::new(&mut machine, victim.pid, victim.array2, platform);
    let got = SpectreAttack::default().recover(&mut machine, &mut victim, &mut prim, off, 1);
    assert_eq!(decode_symbols(&got), "w");
}
