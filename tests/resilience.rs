//! The resilient job engine's contract, pinned end to end:
//!
//! 1. **Recovery is byte-exact.** For every registry artifact, a run
//!    with an injected chunk panic (caught, retried deterministically
//!    once) produces `Report { text, metrics }` byte-identical to an
//!    undisturbed run.
//! 2. **Failure is structured.** A persistent panic surfaces as
//!    `EngineError::ChunkPanicked` (CLI exit 1), never a process
//!    abort; cancellation and deadline expiry are distinguished.
//! 3. **The cache is sound.** Cold vs warm runs are byte-identical;
//!    an "interrupted" batch resumes from the cache; a cache entry
//!    never cross-serves when seed/trials differ; corrupt entries
//!    are recomputed, not trusted.
//! 4. **`run-all` degrades gracefully.** Failed artifacts are
//!    reported with status + cause in the JSON summary, completed
//!    artifacts keep their deterministic output, and the process
//!    exits 3 (partial failure).

use std::path::PathBuf;
use std::time::Duration;

use lru_leak::scenario::engine::{CancelToken, Engine, EngineError, FaultPlan, Job, ResultCache};
use lru_leak::scenario::registry::{self, RunOpts};
use lru_leak::scenario::Value;
use lru_leak_cli::{run_cli, run_cli_faulted};

const SEED: u64 = 0x5eed_cafe;

fn opts() -> RunOpts {
    RunOpts {
        trials: Some(1),
        seed: SEED,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("lru-leak-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn quiet(_line: &str) {}

// ---- axis 1 + 4: panic isolation and fault injection ----

#[test]
fn every_artifact_recovers_byte_identically_from_an_injected_panic() {
    let opts = opts();
    for id in registry::ids() {
        let artifact = registry::get(id).unwrap();
        let reference = artifact.run(&opts);
        // Cell 0 panics once; the chunk containing it is retried
        // deterministically and the report must not change a byte.
        let engine = Engine::new().with_fault_plan(FaultPlan::seeded(7).panic_at(&[0], 1));
        let (faulted, status) = engine
            .run_artifact(artifact, &opts, None, &CancelToken::new())
            .unwrap_or_else(|e| panic!("{id}: faulted run did not recover: {e}"));
        assert_eq!(
            faulted.text, reference.text,
            "{id}: faulted-then-retried text differs from the fault-free run"
        );
        assert_eq!(
            faulted.metrics.to_string(),
            reference.metrics.to_string(),
            "{id}: faulted-then-retried metrics differ from the fault-free run"
        );
        assert!(
            status.retried_chunks >= 1,
            "{id}: the injected fault never fired"
        );
    }
}

#[test]
fn persistent_panic_surfaces_a_structured_error_not_an_abort() {
    let artifact = registry::get("fig5").unwrap();
    let engine = Engine::new().with_fault_plan(FaultPlan::seeded(7).panic_at(&[0], u32::MAX));
    let err = engine
        .run_artifact(artifact, &opts(), None, &CancelToken::new())
        .unwrap_err();
    match &err {
        EngineError::ChunkPanicked { payload, .. } => {
            assert!(
                payload.contains("injected fault"),
                "payload should carry the panic message: {payload}"
            );
        }
        other => panic!("expected ChunkPanicked, got {other:?}"),
    }
    assert_eq!(err.status(), "panicked");
}

// ---- axis 2: cancellation and deadlines ----

#[test]
fn cancellation_and_deadline_are_distinguished() {
    let artifact = registry::get("fig5").unwrap();
    // A pre-cancelled token: nothing runs, the error says cancelled.
    let token = CancelToken::new();
    token.cancel();
    let err = Engine::new()
        .run_artifact(artifact, &opts(), None, &token)
        .unwrap_err();
    assert_eq!(err, EngineError::Cancelled);
    assert_eq!(err.status(), "cancelled");

    // A per-job deadline plus injected worker delays: every cell
    // sleeps well past the deadline, so the job must time out.
    let engine = Engine::new()
        .with_timeout(Duration::from_millis(5))
        .with_fault_plan(FaultPlan::seeded(7).delay_every(1, Duration::from_millis(40)));
    let err = engine
        .run_artifact(artifact, &opts(), None, &CancelToken::new())
        .unwrap_err();
    assert!(
        matches!(err, EngineError::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {err:?}"
    );
    assert_eq!(err.status(), "timeout");
}

// ---- axis 3: the content-addressed cache ----

#[test]
fn interrupted_run_all_resumes_from_the_cache_byte_identically() {
    let dir = tmp_dir("resume");
    let dir_s = dir.to_str().unwrap();
    let base_args = ["--json", "--trials", "1", "--seed", "1234"];

    // The undisturbed reference batch, no cache anywhere near it.
    let all = |extra: &[&str]| {
        let mut a = vec!["run-all"];
        a.extend_from_slice(&base_args);
        a.extend_from_slice(extra);
        run_cli(&args(&a)).unwrap()
    };
    let reference = all(&[]);

    // "Interrupt" a batch after two artifacts: run them individually
    // into the cache, as a batch that died partway would have.
    for id in ["fig3", "fig5"] {
        run_cli(&args(&[
            "run",
            id,
            "--json",
            "--trials",
            "1",
            "--seed",
            "1234",
            "--cache-dir",
            dir_s,
        ]))
        .unwrap();
    }
    let cache = ResultCache::open(&dir).unwrap();
    assert!(cache.entry_count() > 0, "the partial batch left entries");

    // A cached batch additionally reports its hit/miss counters, and
    // every batch reports its (run-dependent) wall clock; the
    // artifacts themselves must stay byte-identical to the cold run,
    // so the comparison strips exactly those top-level keys.
    let strip_cache = |out: &str| {
        let mut v = Value::parse(out.trim()).unwrap();
        if let Value::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "cache" && k != "wall_millis" && k != "timings");
        }
        format!("{}\n", v.pretty())
    };
    let counters = |out: &str| {
        let v = Value::parse(out.trim()).unwrap();
        let n = |k: &str| {
            v.get("cache")
                .and_then(|c| c.get(k))
                .and_then(Value::as_u64)
                .unwrap()
        };
        (n("hits"), n("misses"))
    };

    // The resumed batch serves the interrupted cells from the cache
    // and computes (and records) the rest.
    let resumed = all(&["--cache-dir", dir_s]);
    assert_eq!(
        strip_cache(&resumed),
        strip_cache(&reference),
        "resumed run-all differs from cold"
    );
    let (hits, misses) = counters(&resumed);
    assert!(hits > 0, "resume must hit the interrupted cells");
    assert!(misses > 0, "resume must compute the remaining cells");

    // And a fully warm rerun is byte-identical again, with every
    // cell a hit.
    let warm = all(&["--cache-dir", dir_s]);
    assert_eq!(
        strip_cache(&warm),
        strip_cache(&reference),
        "warm run-all differs from cold"
    );
    let (warm_hits, warm_misses) = counters(&warm);
    assert_eq!(warm_misses, 0, "warm rerun recomputed a cell");
    assert_eq!(warm_hits, hits + misses, "warm rerun must hit every cell");

    // The warm batch really came from the cache.
    let engine = Engine::new().with_cache(ResultCache::open(&dir).unwrap());
    let (_, status) = engine
        .run_artifact(
            registry::get("fig3").unwrap(),
            &RunOpts {
                trials: Some(1),
                seed: 1234,
            },
            None,
            &CancelToken::new(),
        )
        .unwrap();
    assert_eq!(status.from_cache, status.cells, "warm cells not served");
    assert_eq!(status.computed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_never_cross_serves_when_seed_or_trials_differ() {
    let dir = tmp_dir("keys");
    let engine = Engine::new().with_cache(ResultCache::open(&dir).unwrap());
    // fig3 consumes the trial override (histogram sample count), so
    // a `--trials` flip really changes the canonical scenario.
    let artifact = registry::get("fig3").unwrap();
    let token = CancelToken::new();
    let o1 = RunOpts {
        trials: Some(1),
        seed: 1,
    };
    let (r1, s1) = engine.run_artifact(artifact, &o1, None, &token).unwrap();
    assert_eq!(s1.from_cache, 0);
    assert_eq!(s1.computed, s1.cells);

    // Different seed: every cell is a miss, and the output differs.
    let o2 = RunOpts {
        trials: Some(1),
        seed: 2,
    };
    let (r2, s2) = engine.run_artifact(artifact, &o2, None, &token).unwrap();
    assert_eq!(s2.from_cache, 0, "a seed flip must invalidate the key");
    assert_ne!(r1.metrics.to_string(), r2.metrics.to_string());

    // Different trial count: every cell is a miss again.
    let o3 = RunOpts {
        trials: Some(2),
        seed: 1,
    };
    let (_, s3) = engine.run_artifact(artifact, &o3, None, &token).unwrap();
    assert_eq!(s3.from_cache, 0, "a trial flip must invalidate the key");

    // The identical request is served entirely from the cache,
    // byte-identically.
    let (r4, s4) = engine.run_artifact(artifact, &o1, None, &token).unwrap();
    assert_eq!(s4.from_cache, s4.cells);
    assert_eq!(r4.text, r1.text);
    assert_eq!(r4.metrics.to_string(), r1.metrics.to_string());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_are_recomputed_not_trusted() {
    let dir = tmp_dir("corrupt");
    let engine = Engine::new().with_cache(ResultCache::open(&dir).unwrap());
    let artifact = registry::get("fig5").unwrap();
    let opts = opts();
    let token = CancelToken::new();
    let (r1, _) = engine.run_artifact(artifact, &opts, None, &token).unwrap();

    // Trash every entry the run published.
    let cache = ResultCache::open(&dir).unwrap();
    for sc in &Job::from_artifact(artifact, &opts).grid {
        cache.corrupt_entry(sc).unwrap();
    }
    let (r2, s2) = engine.run_artifact(artifact, &opts, None, &token).unwrap();
    assert_eq!(s2.from_cache, 0, "corrupt entries must read as misses");
    assert_eq!(r2.text, r1.text);
    assert_eq!(r2.metrics.to_string(), r1.metrics.to_string());

    // The recompute repaired the entries in place.
    let (_, s3) = engine.run_artifact(artifact, &opts, None, &token).unwrap();
    assert_eq!(s3.from_cache, s3.cells);

    // The corruption fault point exercises the same path end to end:
    // every write is trashed immediately, so a follow-up run must
    // recompute — and still match.
    let dir2 = tmp_dir("corrupt-writes");
    let faulty = Engine::new()
        .with_cache(ResultCache::open(&dir2).unwrap())
        .with_fault_plan(FaultPlan::seeded(7).corrupt_cache_writes());
    let (f1, _) = faulty.run_artifact(artifact, &opts, None, &token).unwrap();
    let (f2, fs2) = faulty.run_artifact(artifact, &opts, None, &token).unwrap();
    assert_eq!(fs2.from_cache, 0);
    assert_eq!(f1.text, r1.text);
    assert_eq!(f2.text, r1.text);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

// ---- satellite: exit codes through the CLI ----

#[test]
fn engine_failure_through_the_cli_exits_1() {
    let plan = FaultPlan::seeded(7).panic_at(&[0], u32::MAX);
    let err = run_cli_faulted(&args(&["run", "fig5", "--trials", "1"]), &quiet, plan).unwrap_err();
    assert_eq!(err.code, 1);
    assert!(
        err.message.contains("panicked"),
        "message should carry the cause: {}",
        err.message
    );
    assert!(err.stdout.is_none());
}

#[test]
fn partial_run_all_failure_exits_3_with_completed_output() {
    let opts = RunOpts {
        trials: Some(1),
        seed: 1234,
    };
    // Arm a persistent panic at a cell index only the large grids
    // reach — small artifacts complete, large ones fail.
    const FAULT_CELL: usize = 100;
    let plan = FaultPlan::seeded(7).panic_at(&[FAULT_CELL], u32::MAX);
    let expected_failed: Vec<&str> = registry::ids()
        .into_iter()
        .filter(|id| registry::get(id).unwrap().scenarios(&opts).len() > FAULT_CELL)
        .collect();
    assert!(
        !expected_failed.is_empty(),
        "the fault cell must hit at least one artifact"
    );
    assert!(
        expected_failed.len() < registry::ids().len(),
        "the fault cell must spare at least one artifact"
    );

    let err = run_cli_faulted(
        &args(&["run-all", "--json", "--trials", "1", "--seed", "1234"]),
        &quiet,
        plan,
    )
    .unwrap_err();
    assert_eq!(err.code, 3, "partial batch failure must exit 3");
    assert!(err.message.contains("artifacts failed"));

    // The completed artifacts' output is still there, with the
    // failures reported by id, status and cause.
    let out = err.stdout.expect("partial output must be printed");
    let v = Value::parse(out.trim()).unwrap();
    assert_eq!(
        v.get("failed_count").and_then(Value::as_u64),
        Some(expected_failed.len() as u64)
    );
    let failures = v.get("failures").and_then(Value::as_arr).unwrap();
    let failed_ids: Vec<&str> = failures
        .iter()
        .map(|f| f.get("id").and_then(Value::as_str).unwrap())
        .collect();
    assert_eq!(failed_ids, expected_failed);
    for f in failures {
        assert_eq!(f.get("status").and_then(Value::as_str), Some("panicked"));
        assert!(f
            .get("cause")
            .and_then(Value::as_str)
            .is_some_and(|c| c.contains("injected fault")));
    }
    let completed = v.get("artifacts").and_then(Value::as_arr).unwrap();
    assert_eq!(
        completed.len(),
        registry::ids().len() - expected_failed.len()
    );
}

// ---- axis 5: lockstep batching composes with the resilience machinery ----

#[test]
fn lockstep_cells_recover_byte_identically_from_an_injected_panic() {
    use lru_leak::scenario::LockstepMode;

    let opts = opts();
    // Every artifact whose grid routes through the lockstep batch
    // path under the engine's default Auto mode.
    let eligible: Vec<&str> = registry::ids()
        .into_iter()
        .filter(|id| {
            registry::get(id)
                .unwrap()
                .scenarios(&opts)
                .iter()
                .any(|s| s.lockstep_spec().is_ok())
        })
        .collect();
    assert!(
        !eligible.is_empty(),
        "registry must have eligible artifacts"
    );
    for id in eligible {
        let artifact = registry::get(id).unwrap();
        let (reference, _) = Engine::new()
            .with_lockstep(LockstepMode::Off)
            .run_artifact(artifact, &opts, None, &CancelToken::new())
            .unwrap();
        // Cell 0 panics once mid-batch; the chunk containing it is
        // retried deterministically — with its lockstep batches
        // re-run — and the report must not change a byte.
        let engine = Engine::new()
            .with_lockstep(LockstepMode::Force)
            .with_fault_plan(FaultPlan::seeded(7).panic_at(&[0], 1));
        let (faulted, status) = engine
            .run_artifact(artifact, &opts, None, &CancelToken::new())
            .unwrap_or_else(|e| panic!("{id}: faulted lockstep run did not recover: {e}"));
        assert_eq!(
            faulted.text, reference.text,
            "{id}: faulted-then-retried lockstep text differs from the scalar run"
        );
        assert_eq!(
            faulted.metrics.to_string(),
            reference.metrics.to_string(),
            "{id}: faulted-then-retried lockstep metrics differ from the scalar run"
        );
        assert!(
            status.retried_chunks >= 1,
            "{id}: the injected fault never fired"
        );
    }
}

#[test]
fn lockstep_runs_honour_cancellation_at_batch_boundaries() {
    use lru_leak::scenario::aggregate::CollectMetrics;
    use lru_leak::scenario::engine::{FoldError, RunCtrl};
    use lru_leak::scenario::spec::Scenario;
    use lru_leak::scenario::LockstepMode;

    // A multi-trial eligible sweep, cancelled before it starts: the
    // lockstep driver polls the token at every batch boundary, so
    // nothing runs and the error is structured.
    let scenario = Scenario::builder().trials(16).seed(9).build().unwrap();
    assert!(scenario.lockstep_spec().is_ok());
    let token = CancelToken::new();
    token.cancel();
    let ctrl = RunCtrl::with_cancel(token);
    let err = scenario
        .run_reduced_ctrl_mode(&CollectMetrics, None, &ctrl, LockstepMode::Force)
        .unwrap_err();
    assert!(matches!(err, FoldError::Cancelled), "got {err:?}");

    // And through the engine: a per-job deadline fires while lockstep
    // batches are in flight; the overrun surfaces as a timeout, same
    // as the scalar path.
    let artifact = registry::get("fig5").unwrap();
    let engine = Engine::new()
        .with_lockstep(LockstepMode::Auto)
        .with_timeout(Duration::from_millis(5))
        .with_fault_plan(FaultPlan::seeded(7).delay_every(1, Duration::from_millis(40)));
    let err = engine
        .run_artifact(artifact, &opts(), None, &CancelToken::new())
        .unwrap_err();
    assert!(
        matches!(err, EngineError::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {err:?}"
    );
}
