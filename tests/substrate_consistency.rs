//! Cross-crate consistency: the substrates agree with each other and
//! with the paper's configuration tables.

use lru_leak::cache_sim::hierarchy::HitLevel;
use lru_leak::cache_sim::profiles::MicroArch;
use lru_leak::cache_sim::replacement::{PolicyKind, SetReplacement};
use lru_leak::exec_sim::machine::Machine;
use lru_leak::exec_sim::measure::{rdtscp_single, LatencyProbe};
use lru_leak::exec_sim::tsc::TscModel;
use lru_leak::lru_channel::params::Platform;
use lru_leak::lru_channel::plru_study::{eviction_curve, InitCond, SequenceKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn platform_thresholds_separate_real_probe_readouts() {
    // The threshold computed from the model must separate actual
    // hit/miss measurements on every fine-grained platform.
    for platform in [Platform::e5_2690(), Platform::e3_1245v5()] {
        let mut m = Machine::new(platform.arch, PolicyKind::TreePlru, 50);
        let pid = m.create_process();
        let mut rng = SmallRng::seed_from_u64(50);
        let probe = LatencyProbe::new(&mut m, pid, platform.tsc, 63);
        let target = m.alloc_pages(pid, 1);
        m.access(pid, target);
        let hit = probe.measure(&mut m, pid, target, &mut rng);
        assert_eq!(hit.level, HitLevel::L1);
        assert!(hit.measured <= platform.hit_threshold());

        for _ in 0..8 {
            let page = m.alloc_pages(pid, 1);
            m.access(pid, page);
        }
        probe.warm(&mut m, pid);
        let miss = probe.measure(&mut m, pid, target, &mut rng);
        assert_eq!(miss.level, HitLevel::L2);
        assert!(miss.measured > platform.hit_threshold());
    }
}

#[test]
fn rdtscp_single_is_useless_but_pointer_chase_works() {
    // Appendix A vs §IV-D, run through the whole machine stack.
    let platform = Platform::e5_2690();
    let mut m = Machine::new(platform.arch, PolicyKind::TreePlru, 51);
    let pid = m.create_process();
    let mut rng = SmallRng::seed_from_u64(51);
    let tsc = TscModel::from_arch(&platform.arch);

    let mut single_gap = 0.0;
    let mut chase_gap = 0.0;
    let probe = LatencyProbe::new(&mut m, pid, tsc, 63);
    for _ in 0..50 {
        let target = m.alloc_pages(pid, 1);
        m.access(pid, target);
        let h_single = rdtscp_single(&mut m, pid, target, &tsc, &mut rng).measured as f64;
        m.access(pid, target);
        let h_chase = probe.measure(&mut m, pid, target, &mut rng).measured as f64;
        for _ in 0..8 {
            let page = m.alloc_pages(pid, 1);
            m.access(pid, page);
        }
        let m_single = rdtscp_single(&mut m, pid, target, &tsc, &mut rng).measured as f64;
        for _ in 0..8 {
            let page = m.alloc_pages(pid, 1);
            m.access(pid, page);
        }
        probe.warm(&mut m, pid);
        let m_chase = probe.measure(&mut m, pid, target, &mut rng).measured as f64;
        single_gap += m_single - h_single;
        chase_gap += m_chase - h_chase;
    }
    single_gap /= 50.0;
    chase_gap /= 50.0;
    assert!(
        single_gap.abs() < 3.0,
        "rdtscp must not separate L1 from L2 (gap {single_gap:.2})"
    );
    assert!(
        chase_gap > 5.0,
        "pointer chase must separate them (gap {chase_gap:.2})"
    );
}

#[test]
fn table1_predicts_channel_noise_ordering() {
    // The Table I study and the live channel agree: Seq1 (Alg.1
    // decode pattern) is more reliable than Seq2 (Alg.2 pattern)
    // under Tree-PLRU.
    let seq1 = eviction_curve(
        PolicyKind::TreePlru,
        SequenceKind::Seq1,
        InitCond::Sequential,
        10,
        2_000,
        52,
    );
    let seq2 = eviction_curve(
        PolicyKind::TreePlru,
        SequenceKind::Seq2,
        InitCond::Sequential,
        10,
        2_000,
        52,
    );
    assert!(seq1.steady_state() > seq2.steady_state() + 0.2);
}

#[test]
fn all_policies_drive_a_full_hierarchy() {
    // Smoke: every policy kind works as the L1D policy of every
    // platform profile.
    for arch in MicroArch::all_hardware() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::TreePlru,
            PolicyKind::BitPlru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::PartitionedTreePlru,
        ] {
            let mut m = Machine::new(arch, kind, 53);
            let pid = m.create_process();
            let base = m.alloc_pages(pid, 16);
            for i in 0..2_000u64 {
                m.access(pid, base.add((i * 64) % (16 * 4096)));
            }
            assert!(m.counters(pid).l1d_accesses == 2_000);
        }
    }
}

#[test]
fn replacement_trait_objects_are_usable() {
    // The SetReplacement trait stays object-safe (C-OBJECT).
    let mut policies: Vec<Box<dyn SetReplacement>> = vec![
        Box::new(lru_leak::cache_sim::replacement::Lru::new(8)),
        Box::new(lru_leak::cache_sim::replacement::TreePlru::new(8)),
        Box::new(lru_leak::cache_sim::replacement::BitPlru::new(8)),
        Box::new(lru_leak::cache_sim::replacement::Fifo::new(8)),
    ];
    for p in &mut policies {
        p.on_access(3, lru_leak::cache_sim::replacement::Domain::PRIMARY);
        let v = p.victim_among(
            lru_leak::cache_sim::replacement::WayMask::all(8),
            lru_leak::cache_sim::replacement::Domain::PRIMARY,
        );
        assert!(v < 8);
    }
}

#[test]
fn shared_pages_have_one_physical_identity_across_the_stack() {
    let mut m = Machine::new(MicroArch::sandy_bridge_e5_2690(), PolicyKind::TreePlru, 54);
    let a = m.create_process();
    let b = m.create_process();
    let (va_a, va_b) = m.map_shared_page(a, b);
    // ASLR stand-in: the two processes see different linear
    // addresses...
    assert_ne!(va_a, va_b);
    // ...for one physical page.
    assert_eq!(m.translate(a, va_a).unwrap(), m.translate(b, va_b).unwrap());
    // Cache state is shared: A's load, B's hit.
    m.access(a, va_a.add(0x80));
    assert_eq!(m.access(b, va_b.add(0x80)).level, HitLevel::L1);
}

#[test]
fn l1_hits_never_touch_lower_level_replacement_state() {
    // §III footnote: "the sender's accesses to L1 or L2 caches will
    // not change the replacement state in the LLC" — in this model,
    // an access served by the L1 leaves the L2 (and LLC) completely
    // untouched, which is why the paper focuses the channel on L1.
    let mut m = Machine::new(MicroArch::sandy_bridge_e5_2690(), PolicyKind::TreePlru, 70);
    let pid = m.create_process();
    let va = m.alloc_pages(pid, 1);
    m.access(pid, va); // miss: reaches L2/LLC once
    let l2_before = m.hierarchy().l2().stats();
    for _ in 0..100 {
        let out = m.access(pid, va);
        assert_eq!(out.level, HitLevel::L1);
    }
    let l2_after = m.hierarchy().l2().stats();
    assert_eq!(
        l2_before, l2_after,
        "100 L1 hits must leave the L2 untouched"
    );
}

#[test]
fn side_channel_recovers_secret_through_full_stack() {
    use lru_leak::attacks::side_channel::{recover_table_index, SetMonitor, TableLookupVictim};
    let mut m = Machine::new(MicroArch::sandy_bridge_e5_2690(), PolicyKind::TreePlru, 71);
    let victim = TableLookupVictim::new(&mut m, 42);
    let monitor = SetMonitor::new(&mut m, Platform::e5_2690());
    assert_eq!(recover_table_index(&mut m, &victim, &monitor, 5, 71), 42);
}

#[test]
fn channel_generalizes_to_a_16_way_cache() {
    // The protocols are parameterized by associativity, not
    // hard-coded to the paper's 8-way parts: build a hypothetical
    // 16-way/32-set L1D and run Algorithm 1 end to end.
    use lru_leak::cache_sim::geometry::CacheGeometry;
    use lru_leak::lru_channel::covert::{CovertConfig, Sharing, Variant};
    use lru_leak::lru_channel::decode::{self, BitConvention};
    use lru_leak::lru_channel::params::ChannelParams;

    let mut arch = MicroArch::sandy_bridge_e5_2690();
    arch.l1d = CacheGeometry::new(64, 32, 16).unwrap();
    let platform = lru_leak::lru_channel::params::Platform {
        arch,
        tsc: TscModel::from_arch(&arch),
    };
    let params = ChannelParams {
        d: 16,
        target_set: 0,
        ts: 9_000,
        tr: 900,
    };
    let message = vec![true, false, false, true, true, false];
    let mut machine = Machine::new(arch, PolicyKind::TreePlru, 80);
    let run = CovertConfig {
        platform,
        params,
        variant: Variant::SharedMemory,
        sharing: Sharing::HyperThreaded,
        message: message.clone(),
        seed: 80,
    }
    .run_on(&mut machine)
    .unwrap();
    let bits = decode::bits_by_window(
        &run.samples,
        params.ts,
        run.hit_threshold,
        BitConvention::HitIsOne,
    );
    assert_eq!(&bits[..message.len()], &message[..]);
}
