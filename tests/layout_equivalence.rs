//! Backend-conformance harness: every cache model behind the
//! [`Backend`] trait — the flat SoA [`Cache`], the AoS oracle
//! [`RefCache`], both [`PlCache`] designs, and the three two-level
//! [`HierarchyBackend`] inclusion models — is run through one generic
//! suite as a policy × backend matrix:
//!
//! * **Oracle equivalence** — a backend whose observable level must
//!   match the AoS reference (hit/miss, chosen way, evicted line,
//!   statistics, final state) replays long mixed operation streams
//!   against it, failing with the exact step number on divergence.
//!   The SoA-vs-AoS golden traces this suite originally pinned are
//!   one instance; unlocked PL caches and the quiet (inclusive /
//!   non-inclusive) hierarchies are the new ones.
//! * **Determinism** — two instances of any backend built with the
//!   same parameters and fed the same stream must produce identical
//!   outcome streams and identical final state. This is the contract
//!   the trait documents and every experiment relies on.
//! * **Structural invariants** — resident-after-access, flush
//!   removal, demand-stats accounting, per-set capacity, and a clean
//!   slate after `clear()`, checked on every backend including the
//!   back-invalidating hierarchy (which has no single-level oracle).
//!
//! Plugging in a new backend means adding one factory line to
//! [`conformance_backends`]; the matrix does the rest.

use lru_leak::cache_sim::addr::PhysAddr;
use lru_leak::cache_sim::backend::{Backend, HierarchyBackend};
use lru_leak::cache_sim::cache::{AccessOutcome, Cache};
use lru_leak::cache_sim::geometry::CacheGeometry;
use lru_leak::cache_sim::hierarchy::Inclusion;
use lru_leak::cache_sim::line::LineMeta;
use lru_leak::cache_sim::plcache::{PlCache, PlDesign};
use lru_leak::cache_sim::reference::RefCache;
use lru_leak::cache_sim::replacement::{Domain, PolicyKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One operation of a conformance stream.
#[derive(Debug, Clone, Copy)]
enum Op {
    Access(PhysAddr, Domain),
    Prefetch(PhysAddr),
    Flush(PhysAddr),
    Probe(PhysAddr),
}

/// What applying an [`Op`] produced — totally ordered so streams
/// from two backends can be compared step by step.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Observed {
    Access(AccessOutcome),
    Prefetch(Option<PhysAddr>),
    Flush(bool),
    Probe(bool, Option<usize>),
}

fn apply(b: &mut dyn Backend, op: Op) -> Observed {
    match op {
        Op::Access(pa, d) => Observed::Access(b.access_in_domain(pa, d)),
        Op::Prefetch(pa) => Observed::Prefetch(b.prefetch_fill(pa)),
        Op::Flush(pa) => Observed::Flush(b.flush_line(pa)),
        Op::Probe(pa) => Observed::Probe(b.probe(pa), b.way_of(pa)),
    }
}

/// A deterministic mixed stream: demand accesses dominate (as in the
/// experiments), spiced with prefetch fills, flushes and read-only
/// probes. The address universe is ~4× the observable capacity so
/// streams mix hits, misses and evictions.
fn stream(geom: CacheGeometry, kind: PolicyKind, seed: u64, steps: usize) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1ace);
    let universe = geom.size_bytes() * 4;
    (0..steps)
        .map(|_| {
            let pa = PhysAddr::new(rng.gen_range(0..universe) & !(geom.line_size() - 1));
            match rng.gen_range(0..10u32) {
                0..=6 => {
                    let domain = if kind == PolicyKind::PartitionedTreePlru && rng.gen_bool(0.5) {
                        Domain::SECONDARY
                    } else {
                        Domain::PRIMARY
                    };
                    Op::Access(pa, domain)
                }
                7 => Op::Prefetch(pa),
                8 => Op::Flush(pa),
                _ => Op::Probe(pa),
            }
        })
        .collect()
}

/// The observable level's full final state: every set × way line plus
/// the packed replacement words (when the layout exposes them) and
/// the statistics counters.
type Snapshot = (Vec<Option<LineMeta>>, Vec<Option<Vec<u64>>>, String);

fn snapshot(b: &dyn Backend) -> Snapshot {
    let geom = b.geometry();
    let mut lines = Vec::new();
    let mut words = Vec::new();
    for s in 0..geom.num_sets() as usize {
        for w in 0..geom.ways() {
            lines.push(b.line(s, w));
        }
        words.push(b.repl_words(s));
    }
    (lines, words, format!("{:?}", b.stats()))
}

/// Replays one stream through `candidate` and `oracle`, comparing
/// every outcome, the running statistics, and the final state. The
/// replacement words are compared only when both layouts expose them.
fn replay_against_oracle(
    candidate: &mut dyn Backend,
    oracle: &mut dyn Backend,
    ops: &[Op],
    kind: PolicyKind,
) {
    let label = candidate.label();
    for (step, &op) in ops.iter().enumerate() {
        let a = apply(candidate, op);
        let b = apply(oracle, op);
        assert_eq!(a, b, "{label}/{kind}: diverged at step {step} ({op:?})");
        assert_eq!(
            candidate.stats(),
            oracle.stats(),
            "{label}/{kind}: stats diverged at step {step}"
        );
    }
    let geom = candidate.geometry();
    for s in 0..geom.num_sets() as usize {
        for w in 0..geom.ways() {
            assert_eq!(
                candidate.line(s, w),
                oracle.line(s, w),
                "{label}/{kind}: set {s} way {w} differs after replay"
            );
        }
        if let (Some(a), Some(b)) = (candidate.repl_words(s), oracle.repl_words(s)) {
            assert_eq!(a, b, "{label}/{kind}: repl words of set {s} differ");
        }
    }
}

/// Factory type for the conformance matrix: given geometry, policy
/// and seed, build a fresh backend instance.
type Factory = fn(CacheGeometry, PolicyKind, u64) -> Box<dyn Backend>;

/// Every registered backend. A new backend joins the whole matrix by
/// adding one line here.
fn conformance_backends() -> Vec<Factory> {
    vec![
        |g, k, s| Box::new(Cache::new(g, k, s)),
        |g, k, s| Box::new(RefCache::new(g, k, s)),
        |g, k, s| Box::new(PlCache::new(g, k, PlDesign::Original, s)),
        |g, k, s| Box::new(PlCache::new(g, k, PlDesign::Fixed, s)),
        |g, k, s| Box::new(HierarchyBackend::new(g, k, Inclusion::Inclusive, s)),
        |g, k, s| Box::new(HierarchyBackend::new(g, k, Inclusion::NonInclusive, s)),
        |g, k, s| Box::new(HierarchyBackend::new(g, k, Inclusion::BackInvalidate, s)),
    ]
}

/// Backends that must be observationally identical to the AoS oracle
/// at their observable level: the SoA layout (the original golden
/// trace), unlocked PL caches (no lock requests ⇒ base policy), and
/// the quiet hierarchies (their L1 sees exactly the same operations;
/// inclusive L2 evictions are silent and the non-inclusive L2 only
/// absorbs L1 victims).
fn oracle_matched_backends() -> Vec<Factory> {
    vec![
        |g, k, s| Box::new(Cache::new(g, k, s)),
        |g, k, s| Box::new(PlCache::new(g, k, PlDesign::Original, s)),
        |g, k, s| Box::new(PlCache::new(g, k, PlDesign::Fixed, s)),
        |g, k, s| Box::new(HierarchyBackend::new(g, k, Inclusion::Inclusive, s)),
        |g, k, s| Box::new(HierarchyBackend::new(g, k, Inclusion::NonInclusive, s)),
    ]
}

#[test]
fn oracle_equivalence_matrix_on_the_paper_l1() {
    for factory in oracle_matched_backends() {
        for kind in PolicyKind::ALL {
            let geom = CacheGeometry::l1d_paper();
            let ops = stream(geom, kind, 0xdead_beef, 20_000);
            let mut candidate = factory(geom, kind, 0xdead_beef);
            let mut oracle = RefCache::new(geom, kind, 0xdead_beef);
            replay_against_oracle(candidate.as_mut(), &mut oracle, &ops, kind);
        }
    }
}

#[test]
fn oracle_equivalence_matrix_on_small_and_wide_geometries() {
    // 2-way and 16-way stress the tree walks and mask edges.
    for (sets, ways) in [(4u64, 2usize), (16, 16), (8, 4)] {
        let geom = CacheGeometry::new(64, sets, ways).unwrap();
        for factory in oracle_matched_backends() {
            for kind in PolicyKind::ALL {
                let seed = 0xc0de ^ sets ^ ways as u64;
                let ops = stream(geom, kind, seed, 6_000);
                let mut candidate = factory(geom, kind, seed);
                let mut oracle = RefCache::new(geom, kind, seed);
                replay_against_oracle(candidate.as_mut(), &mut oracle, &ops, kind);
            }
        }
    }
}

#[test]
fn random_policy_streams_are_bit_identical_across_seeds() {
    // The Random policy is the only seed-consuming one: pin the
    // per-set seed derivation across several master seeds, for every
    // oracle-matched backend.
    for seed in [0u64, 1, 42, u64::MAX] {
        let geom = CacheGeometry::l1d_paper();
        let ops = stream(geom, PolicyKind::Random, seed, 8_000);
        for factory in oracle_matched_backends() {
            let mut candidate = factory(geom, PolicyKind::Random, seed);
            let mut oracle = RefCache::new(geom, PolicyKind::Random, seed);
            replay_against_oracle(candidate.as_mut(), &mut oracle, &ops, PolicyKind::Random);
        }
    }
}

#[test]
fn every_backend_is_deterministic() {
    // The trait's core contract: same parameters + same stream ⇒
    // identical outcomes and identical final state. This is the only
    // equivalence statement available to the back-invalidating
    // hierarchy, which deliberately has no single-level oracle.
    let geom = CacheGeometry::l1d_paper();
    for factory in conformance_backends() {
        for kind in PolicyKind::ALL {
            let ops = stream(geom, kind, 0xf00d, 6_000);
            let mut one = factory(geom, kind, 0xf00d);
            let mut two = factory(geom, kind, 0xf00d);
            let label = one.label();
            for (step, &op) in ops.iter().enumerate() {
                let a = apply(one.as_mut(), op);
                let b = apply(two.as_mut(), op);
                assert_eq!(a, b, "{label}/{kind}: nondeterministic at step {step}");
            }
            assert_eq!(
                snapshot(one.as_ref()),
                snapshot(two.as_ref()),
                "{label}/{kind}: final state differs between identical replays"
            );
        }
    }
}

#[test]
fn every_backend_upholds_structural_invariants() {
    let geom = CacheGeometry::l1d_paper();
    for factory in conformance_backends() {
        for kind in PolicyKind::ALL {
            let ops = stream(geom, kind, 0xbead, 4_000);
            let mut b = factory(geom, kind, 0xbead);
            let label = b.label();
            assert_eq!(b.geometry(), geom, "{label}: geometry passthrough");
            assert_eq!(b.policy_kind(), kind, "{label}: policy passthrough");
            let (mut demanded, mut missed) = (0u64, 0u64);
            for (step, &op) in ops.iter().enumerate() {
                match op {
                    Op::Access(pa, d) => {
                        let out = b.access_in_domain(pa, d);
                        demanded += 1;
                        missed += u64::from(!out.hit);
                        // Resident-after-access: the line is present,
                        // in the reported way, with the right tag.
                        assert!(b.probe(pa), "{label}/{kind}: absent after access {step}");
                        assert_eq!(
                            b.way_of(pa),
                            Some(out.way),
                            "{label}/{kind}: way mismatch at step {step}"
                        );
                        let meta = b
                            .line(out.set, out.way)
                            .unwrap_or_else(|| panic!("{label}/{kind}: no line meta at {step}"));
                        assert_eq!(
                            meta.tag,
                            geom.tag(pa.raw()),
                            "{label}/{kind}: wrong tag at step {step}"
                        );
                    }
                    Op::Prefetch(pa) => {
                        b.prefetch_fill(pa);
                        assert!(b.probe(pa), "{label}/{kind}: absent after prefetch {step}");
                    }
                    Op::Flush(pa) => {
                        b.flush_line(pa);
                        assert!(!b.probe(pa), "{label}/{kind}: present after flush {step}");
                        assert_eq!(b.way_of(pa), None, "{label}/{kind}: way after flush");
                    }
                    Op::Probe(pa) => {
                        // Read-only: probing twice must agree.
                        assert_eq!(b.probe(pa), b.probe(pa), "{label}/{kind}: unstable probe");
                    }
                }
            }
            // Demand-stats accounting: the observable level counts
            // exactly the demand accesses the stream issued.
            let stats = b.stats();
            assert_eq!(stats.accesses, demanded, "{label}/{kind}: access count");
            assert_eq!(stats.misses, missed, "{label}/{kind}: miss count");
            // Capacity: line() is total over set × way and nothing
            // else — walking it must not panic and each valid line's
            // tag round-trips into a unique address per set.
            for s in 0..geom.num_sets() as usize {
                let valid: Vec<LineMeta> = (0..geom.ways()).filter_map(|w| b.line(s, w)).collect();
                assert!(
                    valid.len() <= geom.ways(),
                    "{label}/{kind}: overfull set {s}"
                );
                let mut tags: Vec<u64> = valid.iter().map(|l| l.tag).collect();
                tags.sort_unstable();
                tags.dedup();
                assert_eq!(
                    tags.len(),
                    valid.len(),
                    "{label}/{kind}: duplicate tags in set {s}"
                );
            }
            // A cleared backend is empty with zeroed stats.
            b.clear();
            for s in 0..geom.num_sets() as usize {
                for w in 0..geom.ways() {
                    assert_eq!(b.line(s, w), None, "{label}/{kind}: line after clear");
                }
            }
            assert_eq!(b.stats().accesses, 0, "{label}/{kind}: stats after clear");
        }
    }
}

#[test]
fn capability_bit_is_exclusive_to_back_invalidation() {
    let geom = CacheGeometry::l1d_paper();
    for factory in conformance_backends() {
        let b = factory(geom, PolicyKind::Lru, 1);
        let expected = b.label() != "hierarchy-back-invalidate";
        assert_eq!(
            b.quantum_ff_safe(),
            expected,
            "{}: wrong quantum_ff_safe capability bit",
            b.label()
        );
    }
}

#[test]
fn clear_preserves_equivalence() {
    let geom = CacheGeometry::l1d_paper();
    let mut soa = Cache::new(geom, PolicyKind::TreePlru, 7);
    let mut aos = RefCache::new(geom, PolicyKind::TreePlru, 7);
    for i in 0..500u64 {
        let pa = PhysAddr::new(i * 64 * 3);
        assert_eq!(Backend::access(&mut soa, pa), Backend::access(&mut aos, pa));
    }
    Backend::clear(&mut soa);
    Backend::clear(&mut aos);
    for i in 0..500u64 {
        let pa = PhysAddr::new(i * 64 * 5);
        assert_eq!(
            Backend::access(&mut soa, pa),
            Backend::access(&mut aos, pa),
            "diverged after clear"
        );
    }
}
