//! Golden-trace equivalence: the flat structure-of-arrays cache
//! ([`cache_sim::Cache`]) must be observationally identical to the
//! original array-of-structs layout ([`cache_sim::RefCache`]) —
//! hit/miss, chosen way, evicted line, statistics — for long random
//! access streams under all six replacement policies, mixed with
//! prefetch fills, flushes and read-only probes.
//!
//! This suite is what makes the hot-path refactor behaviour-
//! preserving by construction: any divergence in tag search, victim
//! selection, fill bookkeeping or the Random policy's per-set seed
//! derivation fails here with the exact step number.

use lru_leak::cache_sim::addr::PhysAddr;
use lru_leak::cache_sim::cache::Cache;
use lru_leak::cache_sim::geometry::CacheGeometry;
use lru_leak::cache_sim::reference::RefCache;
use lru_leak::cache_sim::replacement::{Domain, PolicyKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Replays `steps` mixed operations through both layouts, comparing
/// every outcome.
fn replay(geom: CacheGeometry, kind: PolicyKind, seed: u64, steps: usize) {
    let mut soa = Cache::new(geom, kind, seed);
    let mut aos = RefCache::new(geom, kind, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1ace);
    // Address universe: ~4× the cache capacity so streams mix hits,
    // misses and evictions.
    let universe = geom.size_bytes() * 4;

    for step in 0..steps {
        let pa = PhysAddr::new(rng.gen_range(0..universe) & !(geom.line_size() - 1));
        match rng.gen_range(0..10u32) {
            // Demand accesses dominate, as in the experiments.
            0..=6 => {
                let domain = if kind == PolicyKind::PartitionedTreePlru && rng.gen_bool(0.5) {
                    Domain::SECONDARY
                } else {
                    Domain::PRIMARY
                };
                let a = soa.access_in_domain(pa, domain);
                let b = aos.access_in_domain(pa, domain);
                assert_eq!(a, b, "{kind}: access diverged at step {step} ({pa})");
            }
            7 => {
                let a = soa.prefetch_fill(pa);
                let b = aos.prefetch_fill(pa);
                assert_eq!(a, b, "{kind}: prefetch diverged at step {step} ({pa})");
            }
            8 => {
                let a = soa.flush_line(pa);
                let b = aos.flush_line(pa);
                assert_eq!(a, b, "{kind}: flush diverged at step {step} ({pa})");
            }
            _ => {
                assert_eq!(
                    soa.probe(pa),
                    aos.probe(pa),
                    "{kind}: probe diverged at step {step} ({pa})"
                );
                assert_eq!(
                    soa.way_of(pa),
                    aos.way_of(pa),
                    "{kind}: way_of diverged at step {step} ({pa})"
                );
            }
        }
        assert_eq!(
            soa.stats(),
            aos.stats(),
            "{kind}: stats diverged at step {step}"
        );
    }

    // Final state: every set holds the same lines in the same ways.
    for s in 0..geom.num_sets() as usize {
        for w in 0..geom.ways() {
            let a = soa.set(s).line(w);
            let b = aos.set(s).line(w).copied();
            assert_eq!(a, b, "{kind}: set {s} way {w} differs after replay");
        }
    }
}

#[test]
fn all_policies_match_on_the_paper_l1() {
    for kind in PolicyKind::ALL {
        replay(CacheGeometry::l1d_paper(), kind, 0xdead_beef, 20_000);
    }
}

#[test]
fn all_policies_match_on_an_l2_geometry() {
    let geom = CacheGeometry::new(64, 512, 8).unwrap();
    for kind in PolicyKind::ALL {
        replay(geom, kind, 0x5eed, 20_000);
    }
}

#[test]
fn policies_match_on_small_and_wide_geometries() {
    // 2-way and 16-way stress the tree walks and mask edges.
    for (sets, ways) in [(4u64, 2usize), (16, 16), (8, 4)] {
        let geom = CacheGeometry::new(64, sets, ways).unwrap();
        for kind in PolicyKind::ALL {
            replay(geom, kind, 0xc0de ^ sets ^ ways as u64, 8_000);
        }
    }
}

#[test]
fn random_policy_streams_are_bit_identical_across_seeds() {
    // The Random policy is the only seed-consuming one: pin the
    // per-set seed derivation across several master seeds.
    for seed in [0u64, 1, 42, u64::MAX] {
        replay(CacheGeometry::l1d_paper(), PolicyKind::Random, seed, 10_000);
    }
}

#[test]
fn clear_preserves_equivalence() {
    let geom = CacheGeometry::l1d_paper();
    let mut soa = Cache::new(geom, PolicyKind::TreePlru, 7);
    let mut aos = RefCache::new(geom, PolicyKind::TreePlru, 7);
    for i in 0..500u64 {
        let pa = PhysAddr::new(i * 64 * 3);
        assert_eq!(soa.access(pa), aos.access(pa));
    }
    soa.clear();
    aos.clear();
    for i in 0..500u64 {
        let pa = PhysAddr::new(i * 64 * 5);
        assert_eq!(soa.access(pa), aos.access(pa), "diverged after clear");
    }
}
